"""SARIF 2.1.0 output and the fingerprint/baseline workflow."""

import json
import re
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.statan import check_paths, render_sarif
from repro.statan.sarif import (
    FINGERPRINT_KEY,
    compute_fingerprint,
    load_baseline,
    render_baseline,
    split_by_baseline,
)

DIRTY = "import time\nt = time.time()\n"


def _findings(tmp_path, source=DIRTY, name="mod.py"):
    module = tmp_path / name
    module.write_text(source)
    return check_paths([str(module)]).findings


# -- SARIF shape -----------------------------------------------------------

class TestSarif:
    def test_sarif_210_shape(self, tmp_path):
        log = json.loads(render_sarif(_findings(tmp_path)))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "statan"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "DET001" in rule_ids
        for rule in driver["rules"]:
            assert set(rule) >= {
                "id", "name", "shortDescription", "defaultConfiguration"}
        result = run["results"][0]
        assert set(result) >= {
            "ruleId", "ruleIndex", "level", "message", "locations",
            "partialFingerprints"}
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("mod.py")
        assert location["region"]["startLine"] == 2
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        assert driver["rules"][result["ruleIndex"]]["id"] == "DET001"

    def test_severity_maps_to_sarif_levels(self, tmp_path):
        source = textwrap.dedent("""
            import time

            def worker(env):
                t = time.time()
                yield env.timeout(1.0)
                return 42
        """)
        log = json.loads(render_sarif(_findings(tmp_path, source)))
        levels = {r["ruleId"]: r["level"]
                  for r in log["runs"][0]["results"]}
        assert levels["DET001"] == "error"
        assert levels["PROC003"] == "warning"

    def test_fingerprint_key_is_versioned(self, tmp_path):
        log = json.loads(render_sarif(_findings(tmp_path)))
        prints = log["runs"][0]["results"][0]["partialFingerprints"]
        assert FINGERPRINT_KEY in prints
        assert re.fullmatch(r"[0-9a-f]{40}", prints[FINGERPRINT_KEY])

    def test_empty_run_is_valid(self):
        log = json.loads(render_sarif([]))
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []


# -- fingerprints ----------------------------------------------------------

class TestFingerprints:
    def test_stable_across_unrelated_line_shifts(self, tmp_path):
        before = _findings(tmp_path, DIRTY, "a.py")
        shifted = "# a comment\n\nVALUE = 1\n" + DIRTY
        after = _findings(tmp_path, shifted, "a.py")
        assert [f.code for f in before] == [f.code for f in after]
        assert [f.fingerprint for f in before] == \
            [f.fingerprint for f in after]
        assert before[0].line != after[0].line

    def test_checkout_prefix_independent(self):
        assert compute_fingerprint(
            "DET001", "/ci/checkout/src/repro/x.py", "t = time.time()", 0
        ) == compute_fingerprint(
            "DET001", "src/repro/x.py", "t = time.time()", 0)

    def test_identical_lines_disambiguated_by_occurrence(self, tmp_path):
        source = "import time\nt = time.time()\nu = 0\nt = time.time()\n"
        findings = _findings(tmp_path, source)
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_split_by_baseline(self, tmp_path):
        findings = _findings(tmp_path)
        fresh, known = split_by_baseline(
            findings, {findings[0].fingerprint})
        assert known == [findings[0]]
        assert findings[0] not in fresh


# -- baseline workflow through the CLI --------------------------------------

class TestBaselineCli:
    def test_write_then_gate(self, tmp_path, capsys):
        module = tmp_path / "mod.py"
        module.write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        assert cli_main(["statan", str(module),
                         "--write-baseline", str(baseline)]) == 1
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert {e["code"] for e in payload["findings"]} == {"DET001"}

        # Gated on the baseline the same tree is green...
        assert cli_main(["statan", str(module),
                         "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # ...and a new finding still fails the run.
        module.write_text(DIRTY + "u = time.monotonic()\n")
        assert cli_main(["statan", str(module),
                         "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "monotonic" in out
        assert "1 baselined" in out

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        module = tmp_path / "mod.py"
        module.write_text("VALUE = 1\n")
        bad = tmp_path / "bad.json"
        bad.write_text("{\"nope\": []}")
        assert cli_main(["statan", str(module),
                         "--baseline", str(bad)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        module = tmp_path / "mod.py"
        module.write_text("VALUE = 1\n")
        assert cli_main(["statan", str(module),
                         "--baseline", str(tmp_path / "none.json")]) == 2
        capsys.readouterr()

    def test_sarif_format_flag(self, tmp_path, capsys):
        module = tmp_path / "mod.py"
        module.write_text(DIRTY)
        assert cli_main(["statan", str(module),
                         "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_repo_baseline_matches_shipped_tree(self, tmp_path, capsys):
        # The committed baseline must exactly cover the tree: gated run
        # green, and every recorded fingerprint still occurs (no stale
        # entries hiding future findings).
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        recorded = load_baseline(str(root / "statan-baseline.json"))
        result = check_paths([str(root / "src/repro")])
        current = {f.fingerprint for f in result.findings}
        assert current == recorded
        capsys.readouterr()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
