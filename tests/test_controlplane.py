"""The control plane: autoscaling, admission, leveling, bulkheads.

Four layers of coverage:

* **unit** — each mechanism in isolation on a bare environment: token
  bucket arithmetic and modes, leveling offer/overflow/drain under
  both policies, bulkhead partitioning, autoscaler scale decisions
  with warm-up and cooldown;
* **spec** — the declarative surface: JSON round-trips, eager
  validation of unknown keys and nonpositive rates, placement rules
  (admission is frontend-only, autoscalers never on frontends or
  inline boundaries);
* **zero-cost-when-off** — an all-``None`` :class:`ControlPlaneConfig`
  leaves the event trace byte-identical to the seed system;
* **acceptance** — the headline chaos cells: the fastest plausible
  reactive autoscaler cannot catch a sub-second millibottleneck,
  while admission + leveling cut %VLRT below 1% on the same cell
  without touching the balancer policy.
"""

import hashlib
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.cluster.scenarios import fault_specs
from repro.cluster.spec import BoundarySpec, TierSpec, TopologySpec
from repro.cluster.topology import (
    build_from_spec,
    replica_factory_for,
    retire_replica,
)
from repro.controlplane import (
    CONTROLPLANE_BUNDLES,
    AdmissionConfig,
    AutoscalerConfig,
    Bulkhead,
    BulkheadConfig,
    ControlPlaneConfig,
    LevelingConfig,
    LevelingQueue,
    TokenBucketAdmission,
    get_controlplane,
)
from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.workload.interactions import INTERACTIONS
from repro.workload.request import Request


def make_request(env, request_id=1, write=False):
    name = next(name for name, inter in INTERACTIONS.items()
                if inter.is_write == write)
    return Request(env, request_id, INTERACTIONS[name], client_id=0)


def drive(env, generator):
    """Run a process generator to completion, returning its value."""
    outcome = {}

    def runner():
        outcome["value"] = yield from generator
    env.process(runner())
    env.run()
    return outcome["value"]


# -- config validation ------------------------------------------------------

class TestConfigValidation:
    def test_admission_rejects_nonpositive_rates(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(capacity=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(refill_rate=-1.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(lease=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(lease=30.0, capacity=20.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(mode="drop")
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_wait=0.0)

    def test_leveling_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            LevelingConfig(capacity=0)
        with pytest.raises(ConfigurationError):
            LevelingConfig(drain_concurrency=0)
        with pytest.raises(ConfigurationError):
            LevelingConfig(overflow="explode")

    def test_bulkhead_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            BulkheadConfig(read_slots=0)
        with pytest.raises(ConfigurationError):
            BulkheadConfig(write_slots=0)
        with pytest.raises(ConfigurationError):
            BulkheadConfig(mode="queue")

    def test_autoscaler_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(interval=0.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(warmup=-1.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(high_watermark=0.5, low_watermark=1.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(metric="vibes")

    def test_bundles_registry(self):
        for key, bundle in CONTROLPLANE_BUNDLES.items():
            assert bundle.enabled, key
            assert get_controlplane(key) is bundle
        with pytest.raises(ConfigurationError) as err:
            get_controlplane("gremlins")
        assert "autoscale" in str(err.value)
        assert not ControlPlaneConfig().enabled


# -- token-bucket admission -------------------------------------------------

class TestTokenBucketAdmission:
    def test_shed_mode_admits_until_empty_then_sheds(self):
        env = Environment()
        bucket = TokenBucketAdmission(
            env, AdmissionConfig(capacity=2.0, refill_rate=1.0))
        outcomes = [drive(env, bucket.admit(make_request(env, i)))
                    for i in range(4)]
        assert outcomes == [True, True, False, False]
        assert bucket.admitted == 2 and bucket.shed == 2
        assert [r.outcome for r in bucket.records] == [
            "admitted", "admitted", "shed", "shed"]

    def test_refill_is_lazy_and_capped(self):
        env = Environment()
        bucket = TokenBucketAdmission(
            env, AdmissionConfig(capacity=2.0, refill_rate=4.0))
        drive(env, bucket.admit(make_request(env, 1)))
        drive(env, bucket.admit(make_request(env, 2)))
        assert bucket.tokens == 0.0
        env.run(until=env.now + 0.25)
        assert bucket.tokens == pytest.approx(1.0)
        env.run(until=env.now + 100.0)
        assert bucket.tokens == pytest.approx(2.0)  # capped at capacity

    def test_shed_mode_schedules_zero_events(self):
        env = Environment()
        events = []
        env.trace = lambda when, event: events.append(event)
        bucket = TokenBucketAdmission(
            env, AdmissionConfig(capacity=1.0, refill_rate=1.0))
        for i in range(3):
            gen = bucket.admit(make_request(env, i))
            with pytest.raises(StopIteration):
                next(gen)
        assert events == []

    def test_queue_mode_waits_out_the_deficit(self):
        env = Environment()
        bucket = TokenBucketAdmission(
            env, AdmissionConfig(capacity=1.0, refill_rate=2.0,
                                 mode="queue", max_wait=1.0))
        assert drive(env, bucket.admit(make_request(env, 1))) is True
        start = env.now
        assert drive(env, bucket.admit(make_request(env, 2))) is True
        assert env.now - start == pytest.approx(0.5)  # 1 token @ 2/s
        assert bucket.queued == 1

    def test_queue_mode_sheds_past_max_wait(self):
        env = Environment()
        bucket = TokenBucketAdmission(
            env, AdmissionConfig(capacity=1.0, refill_rate=1.0,
                                 mode="queue", max_wait=0.25))
        drive(env, bucket.admit(make_request(env, 1)))
        assert drive(env, bucket.admit(make_request(env, 2))) is False
        assert bucket.shed == 1

    def test_record_limit_caps_the_audit_log(self):
        env = Environment()
        bucket = TokenBucketAdmission(
            env, AdmissionConfig(capacity=100.0, refill_rate=1.0,
                                 record_limit=3))
        for i in range(10):
            drive(env, bucket.admit(make_request(env, i)))
        assert len(bucket.records) == 3
        assert bucket.admitted == 10


# -- leveling queue ---------------------------------------------------------

class TestLevelingQueue:
    def _queue(self, env, capacity=2, overflow="reject", drain_time=1.0):
        drained, sheds = [], []

        def drain(request):
            yield env.timeout(drain_time)
            drained.append(request)

        queue = LevelingQueue(
            env, LevelingConfig(capacity=capacity,
                                drain_concurrency=1,
                                overflow=overflow),
            drain=drain, on_shed=sheds.append)
        return queue, drained, sheds

    def test_offer_accepts_up_to_capacity_then_rejects(self):
        env = Environment()
        queue, drained, sheds = self._queue(env, capacity=2)
        requests = [make_request(env, i) for i in range(4)]
        # The drain process has not started yet (the env has not run),
        # so every offer parks in the FIFO: two fit, the rest bounce.
        assert [queue.offer(r) for r in requests] == [
            True, True, False, False]
        assert queue.rejected == 2 and queue.peak_length == 2
        env.run()
        assert [r.request_id for r in drained] == [0, 1]
        assert queue.drained == 2 and sheds == []

    def test_drop_oldest_evicts_the_head(self):
        env = Environment()
        queue, drained, sheds = self._queue(env, capacity=2,
                                            overflow="drop_oldest")
        requests = [make_request(env, i) for i in range(4)]
        assert all(queue.offer(r) for r in requests)
        assert queue.evicted == 2
        assert [r.request_id for r in sheds] == [0, 1]
        env.run()
        assert [r.request_id for r in drained] == [2, 3]
        assert queue.sheds == 2

    def test_drain_concurrency_paces_the_queue(self):
        env = Environment()
        queue, drained, _ = self._queue(env, capacity=8, drain_time=1.0)
        for i in range(3):
            assert queue.offer(make_request(env, i))
        env.run(until=1.5)
        assert len(drained) == 1  # one drain process, 1 s per request
        env.run()
        assert len(drained) == 3

    def test_idle_queue_costs_one_initialize_per_drain(self):
        env = Environment()
        events = []
        env.trace = lambda when, event: events.append(event)
        self._queue(env, capacity=2)
        env.run()
        # Booting the single drain process costs exactly one Initialize;
        # after that the parked getter never triggers without an offer.
        assert [type(e).__name__ for e in events] == ["Initialize"]


# -- bulkhead ---------------------------------------------------------------

class TestBulkhead:
    def test_partitions_by_interaction_class(self):
        env = Environment()
        bulkhead = Bulkhead(env, BulkheadConfig(read_slots=1,
                                                write_slots=1))
        read = drive(env, bulkhead.acquire(make_request(env, 1)))
        write = drive(env, bulkhead.acquire(make_request(env, 2,
                                                         write=True)))
        assert read is not None and write is not None
        assert bulkhead.admitted == {"read": 1, "write": 1}

    def test_shed_mode_isolates_the_partitions(self):
        env = Environment()
        bulkhead = Bulkhead(env, BulkheadConfig(read_slots=1,
                                                write_slots=1))
        held = drive(env, bulkhead.acquire(make_request(env, 1)))
        assert drive(env, bulkhead.acquire(make_request(env, 2))) is None
        # A full read partition must not shed writes.
        assert drive(env, bulkhead.acquire(
            make_request(env, 3, write=True))) is not None
        assert bulkhead.shed == {"read": 1, "write": 0}
        held.cancel_or_release()
        assert drive(env, bulkhead.acquire(make_request(env, 4))) \
            is not None

    def test_wait_mode_queues_for_a_slot(self):
        env = Environment()
        bulkhead = Bulkhead(env, BulkheadConfig(read_slots=1,
                                                write_slots=1,
                                                mode="wait"))
        held = drive(env, bulkhead.acquire(make_request(env, 1)))

        def releaser():
            yield env.timeout(1.0)
            held.cancel_or_release()
        env.process(releaser())
        start = env.now
        slot = drive(env, bulkhead.acquire(make_request(env, 2)))
        assert slot is not None
        assert env.now - start == pytest.approx(1.0)


# -- declarative spec surface ----------------------------------------------

def controlplane_spec():
    spec = TopologySpec.classic()
    tiers = list(spec.tiers)
    tiers[0] = replace(tiers[0], admission=AdmissionConfig())
    tiers[1] = replace(tiers[1], autoscaler=AutoscalerConfig(
        min_replicas=1, max_replicas=8))
    tiers[2] = replace(tiers[2], bulkhead=BulkheadConfig())
    boundaries = list(spec.boundaries)
    boundaries[0] = replace(boundaries[0], leveling=LevelingConfig())
    return replace(spec, tiers=tuple(tiers),
                   boundaries=tuple(boundaries))


class TestSpecSurface:
    def test_json_round_trip(self):
        spec = controlplane_spec()
        assert TopologySpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_omits_unconfigured_mechanisms(self):
        data = TopologySpec.classic().to_dict()
        for tier in data["tiers"]:
            assert "admission" not in tier
            assert "autoscaler" not in tier
            assert "bulkhead" not in tier
        for boundary in data["boundaries"]:
            assert "leveling" not in boundary

    def test_unknown_mechanism_keys_rejected_eagerly(self):
        data = controlplane_spec().to_dict()
        data["tiers"][0]["admission"]["burstiness"] = 2.0
        with pytest.raises(ConfigurationError) as err:
            TopologySpec.from_dict(data)
        assert "burstiness" in str(err.value)

    def test_nonpositive_rates_rejected_eagerly(self):
        data = controlplane_spec().to_dict()
        data["tiers"][0]["admission"]["refill_rate"] = -5.0
        with pytest.raises(ConfigurationError):
            TopologySpec.from_dict(data)

    def test_admission_is_frontend_only(self):
        with pytest.raises(ConfigurationError):
            TierSpec(name="tomcat", service="worker", replicas=2,
                     capacity=8, admission=AdmissionConfig())

    def test_autoscaler_rejected_on_frontends(self):
        with pytest.raises(ConfigurationError):
            TierSpec(name="apache", service="frontend", replicas=2,
                     capacity=8, autoscaler=AutoscalerConfig())

    def test_autoscaler_bounds_must_cover_initial_replicas(self):
        with pytest.raises(ConfigurationError):
            TierSpec(name="tomcat", service="worker", replicas=9,
                     capacity=8, autoscaler=AutoscalerConfig(
                         min_replicas=1, max_replicas=8))

    def test_inline_boundary_takes_no_leveling(self):
        with pytest.raises(ConfigurationError):
            BoundarySpec(mode="inline", leveling=LevelingConfig())

    def test_describe_names_the_mechanisms(self):
        text = controlplane_spec().describe()
        assert "admission" in text
        assert "autoscale[1..8]" in text
        assert "bulkhead" in text
        assert "leveling" in text


# -- replica churn and the autoscaler --------------------------------------

def build_scaled_system(env, autoscaler=None, replicas=2):
    spec = TopologySpec.classic()
    tiers = list(spec.tiers)
    tiers[1] = replace(tiers[1], replicas=replicas,
                       autoscaler=autoscaler)
    spec = replace(spec, tiers=tuple(tiers))
    from repro.core.remedies import get_bundle
    return build_from_spec(env, spec, ScaleProfile.smoke(),
                           default_bundle=get_bundle("current_load"),
                           rng=np.random.default_rng(7))


class TestReplicaChurn:
    def test_factory_grows_the_tier_and_joins_balancers(self):
        env = Environment()
        system = build_scaled_system(env)
        factory = replica_factory_for(system, "tomcat")
        before = len(system.tiers["tomcat"])
        new = factory(before)
        assert len(system.tiers["tomcat"]) == before + 1
        for balancer in system.balancers:
            names = [m.server.name for m in balancer.members]
            assert new.name in names

    def test_retire_removes_from_tier_and_balancers(self):
        env = Environment()
        system = build_scaled_system(env)
        victim = system.tiers["tomcat"][-1]
        retire_replica(system, "tomcat", victim)
        assert victim not in system.tiers["tomcat"]
        assert victim in system.retired["tomcat"]
        for balancer in system.balancers:
            assert victim.name not in [m.server.name
                                       for m in balancer.members]
            assert victim.name in [m.server.name
                                   for m in balancer.retired_members]

    def test_last_replica_cannot_retire(self):
        env = Environment()
        system = build_scaled_system(env, replicas=1)
        with pytest.raises(ConfigurationError):
            retire_replica(system, "tomcat",
                           system.tiers["tomcat"][0])

    def test_frontends_cannot_scale(self):
        env = Environment()
        system = build_scaled_system(env)
        with pytest.raises(ConfigurationError):
            replica_factory_for(system, "apache")


class TestAutoscaler:
    def _run_with_autoscaler(self, config, duration=8.0, faults=(),
                             clients=None):
        profile = ScaleProfile.smoke()
        if clients is not None:
            profile = replace(profile, clients=clients)
        experiment = ExperimentConfig(
            profile=profile, duration=duration, seed=11,
            trace_lb_values=False, trace_dispatches=False,
            faults=faults,
            controlplane=ControlPlaneConfig(autoscaler=config))
        return ExperimentRunner(experiment).run()

    def test_scales_up_under_sustained_overload(self):
        result = self._run_with_autoscaler(
            AutoscalerConfig(interval=0.25, warmup=0.5, cooldown=0.25,
                             high_watermark=0.4, low_watermark=0.01,
                             min_replicas=2, max_replicas=6),
            clients=400)
        scaler = result.system.autoscalers[0]
        assert scaler.scale_ups > 0
        assert len(result.system.tiers["tomcat"]) > 2
        # Warm-up lag: the i-th completion follows the i-th start by at
        # least the warm-up (provisions complete in FIFO order).
        starts = [e.at for e in scaler.events if e.action == "scale_up"]
        completes = [e.at for e in scaler.events
                     if e.action == "up_complete"]
        assert completes
        for start, complete in zip(starts, completes):
            assert complete >= start + 0.5 - 1e-9

    def test_scales_down_when_idle(self):
        result = self._run_with_autoscaler(
            AutoscalerConfig(interval=0.5, warmup=0.5, cooldown=0.5,
                             low_watermark=10.0, high_watermark=50.0,
                             min_replicas=1),
            clients=10)
        scaler = result.system.autoscalers[0]
        assert scaler.scale_downs > 0
        assert len(result.system.tiers["tomcat"]) \
            + len(result.system.retired.get("tomcat", [])) > \
            len(result.system.tiers["tomcat"])

    def test_cooldown_spaces_scale_actions(self):
        result = self._run_with_autoscaler(
            AutoscalerConfig(interval=0.25, warmup=0.25, cooldown=2.0,
                             high_watermark=0.4, low_watermark=0.01,
                             max_replicas=8),
            clients=400)
        actions = [e.at for e in result.system.autoscalers[0].events
                   if e.action in ("scale_up", "scale_down")]
        assert len(actions) > 1
        gaps = np.diff(actions)
        assert (gaps >= 2.0 - 1e-9).all()

    def test_scale_up_during_active_crash_window(self):
        """A replica provisioned while another is crashed joins cold
        and the run still conserves every request."""
        from repro.cluster.faults import CrashFault
        result = self._run_with_autoscaler(
            AutoscalerConfig(interval=0.5, warmup=0.5, cooldown=0.5,
                             high_watermark=0.4, low_watermark=0.01,
                             min_replicas=2, max_replicas=6),
            duration=8.0, clients=300,
            faults=(CrashFault("tomcat1", at=2.0, duration=3.0),))
        scaler = result.system.autoscalers[0]
        crash_ups = [e for e in scaler.events
                     if e.action == "up_complete" and 2.0 <= e.at <= 5.0]
        assert crash_ups, "no replica landed inside the crash window"
        assert_dynamic_conservation(result)

    def test_scale_down_races_in_flight_requests(self):
        """Retiring a replica mid-run must not lose or duplicate the
        requests it still carries."""
        result = self._run_with_autoscaler(
            AutoscalerConfig(interval=0.25, warmup=0.25, cooldown=0.25,
                             low_watermark=10.0, high_watermark=50.0,
                             min_replicas=1),
            duration=8.0, clients=120)
        scaler = result.system.autoscalers[0]
        assert scaler.scale_downs > 0
        assert_dynamic_conservation(result)


def assert_dynamic_conservation(result):
    """The invariant identities, extended over retired replicas."""
    system = result.system
    for balancer in system.balancers:
        members = list(balancer.members) + list(balancer.retired_members)
        for member in members:
            assert member.inflight >= 0, member.name
            assert member.dispatched == member.completed \
                + member.inflight, member.name
    population = result.population
    in_flight = (population.attempts_issued
                 - population.requests_completed
                 - population.requests_abandoned)
    assert 0 <= in_flight <= len(population)


# -- zero-cost-when-off -----------------------------------------------------

def traced_run(seed, controlplane=None):
    env = Environment()
    records = []
    env.trace = lambda when, event: records.append(
        (when, type(event).__name__))
    profile = replace(ScaleProfile.smoke(), clients=120,
                      flush_threshold_bytes=32e3)
    config = ExperimentConfig(
        bundle_key="current_load", profile=profile, duration=4.0,
        seed=seed, trace_lb_values=False, trace_dispatches=False,
        controlplane=controlplane)
    ExperimentRunner(config).run(env=env)
    payload = "\n".join("{!r} {}".format(when, name)
                        for when, name in records)
    return hashlib.sha256(payload.encode()).hexdigest()


class TestZeroCostWhenOff:
    @pytest.mark.parametrize("seed", [99, 20170601])
    def test_all_none_config_is_byte_identical(self, seed):
        assert traced_run(seed) \
            == traced_run(seed, controlplane=ControlPlaneConfig())

    @pytest.mark.parametrize("seed", [99])
    def test_enabled_config_changes_the_trace(self, seed):
        assert traced_run(seed) != traced_run(
            seed, controlplane=CONTROLPLANE_BUNDLES["admission+leveling"])


# -- acceptance: the headline chaos cells ----------------------------------

class TestAcceptance:
    @pytest.fixture(scope="class")
    def headline(self):
        """One millibottleneck-heavy packet-loss cell, three remedies."""
        from repro.parallel import run_experiments

        profile = replace(ScaleProfile(), tomcat_disk_bandwidth=4e6)
        base = dict(bundle_key="original_total_request",
                    profile=profile, duration=12.0, seed=42,
                    trace_lb_values=False, trace_dispatches=False,
                    faults=fault_specs("packet_loss", 12.0))
        configs = [
            ExperimentConfig(**base),
            ExperimentConfig(
                controlplane=CONTROLPLANE_BUNDLES["autoscale_fast"],
                **base),
            ExperimentConfig(
                controlplane=CONTROLPLANE_BUNDLES["admission+leveling"],
                **base),
        ]
        none, autoscaled, leveled = run_experiments(configs, workers=3)
        return none, autoscaled, leveled

    def test_baseline_suffers_vlrts(self, headline):
        none, _, _ = headline
        assert 100.0 * none.stats().vlrt_fraction > 5.0
        assert none.dropped_packets() > 0

    def test_fastest_autoscaler_misses_the_millibottleneck(self, headline):
        """250 ms sampling + 500 ms boot is far faster than any real
        provisioning loop, and it still cannot catch a sub-second
        flush stall: %VLRT stays well above the 1% bar."""
        _, autoscaled, _ = headline
        assert 100.0 * autoscaled.stats().vlrt_fraction > 1.0
        assert autoscaled.dropped_packets() > 0

    def test_admission_plus_leveling_tames_vlrts(self, headline):
        """The same cell with a token bucket and a bounded leveling
        queue: workers return to the accept loop during the stall, the
        accept queue never overflows, and the retransmission-driven
        VLRT tail disappears."""
        none, _, leveled = headline
        assert 100.0 * leveled.stats().vlrt_fraction < 1.0
        assert leveled.dropped_packets() == 0
        assert leveled.sheds() > 0
        # The remedy must not buy its tail by collapsing throughput.
        assert leveled.goodput() > none.goodput()
