"""System-level determinism: identical seeds give identical traces."""

import pytest

from repro.cluster import ExperimentRunner
from repro.cluster.scenarios import policy_run


def run(seed):
    return ExperimentRunner(
        policy_run("original_total_request", duration=5.0,
                   seed=seed)).run()


class TestTraceDeterminism:
    def test_dispatch_traces_are_bit_identical(self):
        first, second = run(3), run(3)
        for lb_a, lb_b in zip(first.system.balancers,
                              second.system.balancers):
            assert lb_a.dispatch_trace.records == lb_b.dispatch_trace.records
            assert lb_a.pick_trace.records == lb_b.pick_trace.records

    def test_lb_value_traces_are_bit_identical(self):
        first, second = run(4), run(4)
        for lb_a, lb_b in zip(first.system.balancers,
                              second.system.balancers):
            for member_a, member_b in zip(lb_a.members, lb_b.members):
                assert member_a.lb_trace.times == member_b.lb_trace.times
                assert member_a.lb_trace.values == member_b.lb_trace.values

    def test_millibottleneck_schedule_is_identical(self):
        first, second = run(5), run(5)
        records_a = [(r.host, r.started_at, r.ended_at, r.bytes_flushed)
                     for r in first.system.millibottleneck_records()]
        records_b = [(r.host, r.started_at, r.ended_at, r.bytes_flushed)
                     for r in second.system.millibottleneck_records()]
        assert records_a == records_b

    def test_request_log_is_identical(self):
        first, second = run(6), run(6)
        log_a = [(r.request_id, r.started_at, r.finished_at, r.served_by)
                 for r in first.recorder.requests]
        log_b = [(r.request_id, r.started_at, r.finished_at, r.served_by)
                 for r in second.recorder.requests]
        assert log_a == log_b


class TestDistributionWindows:
    def test_windows_cover_all_dispatches(self):
        result = run(7)
        balancer = result.system.balancers[0]
        windows = balancer.distribution_windows(until=5.0)
        assert set(windows) == {"tomcat1", "tomcat2", "tomcat3", "tomcat4"}
        total = sum(sum(series.values) for series in windows.values())
        assert total == len(balancer.dispatch_trace)

    def test_windows_reflect_stall_dip_and_recovery(self):
        """The stalled member's per-window dispatch series dips to
        ~zero mid-stall (workers stuck, nothing dispatched) and
        rebounds at recovery to at least the normal level."""
        result = run(8)
        records = [r for r in result.system.millibottleneck_records()
                   if r.started_at > 2.0]
        record = records[0]
        balancer = result.system.balancers[0]
        windows = balancer.distribution_windows(window=0.05, until=5.0)
        stalled = windows[record.host]
        normal = stalled.slice(1.0, record.started_at - 0.5).mean()
        mid_stall = stalled.slice(record.started_at + 0.05,
                                  record.ended_at - 0.02)
        recovery = stalled.slice(record.ended_at,
                                 record.ended_at + 0.3)
        assert mid_stall.min() <= normal / 2
        assert recovery.max() >= normal
