"""Acceptance cells for the modern-policy rematch (PR-8 style).

One millibottleneck-heavy cell — disk-starved Tomcats plus the
packet-loss chaos fault — run under the baseline policy and three
modern challengers.  The headline claims pinned here:

* Prequal's probe pool sees the stall through backend-reported RIF and
  routes around it: %VLRT well under the baseline's, at a measured,
  non-zero probe-message cost.
* JIQ's idle queue is even stronger in this regime: a stalled member
  never drains to idle, so it simply vanishes from the queue.
* Sticky affinity pays for its session promise under millibottlenecks:
  it beats the cumulative baseline only via its current_load fallback,
  and the broken-promise count (violations) is reported, non-zero.

Runs are seeded and the simulation is deterministic, so the thresholds
are tight for this cell rather than statistical.
"""

from dataclasses import replace

import pytest

from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig
from repro.cluster.scenarios import fault_specs
from repro.parallel import run_experiments


class TestRematchAcceptance:
    @pytest.fixture(scope="class")
    def cell(self):
        """Disk-starved + packet-loss: baseline vs the modern zoo."""
        profile = replace(ScaleProfile(), tomcat_disk_bandwidth=4e6)
        base = dict(profile=profile, duration=12.0, seed=42,
                    trace_lb_values=False, trace_dispatches=False,
                    faults=fault_specs("packet_loss", 12.0))
        keys = ["original_total_request", "prequal", "jiq", "sticky"]
        configs = [ExperimentConfig(bundle_key=key, **base)
                   for key in keys]
        results = run_experiments(configs, workers=4)
        return dict(zip(keys, results))

    def test_baseline_funnels_into_the_millibottleneck(self, cell):
        baseline = cell["original_total_request"]
        assert 100.0 * baseline.stats().vlrt_fraction > 5.0
        assert baseline.dropped_packets() > 0

    def test_prequal_beats_the_baseline_on_vlrt(self, cell):
        """Probed-RIF ranking dodges most of the funnel — and the probe
        overhead it pays for that is measured, not hidden."""
        baseline = cell["original_total_request"]
        prequal = cell["prequal"]
        base_vlrt = 100.0 * baseline.stats().vlrt_fraction
        prequal_vlrt = 100.0 * prequal.stats().vlrt_fraction
        assert prequal_vlrt < 0.7 * base_vlrt
        assert prequal.probe_messages() > 0
        assert prequal.goodput() > baseline.goodput()

    def test_jiq_beats_the_baseline_on_vlrt(self, cell):
        """A stalled member never drains to idle, so JIQ stops feeding
        it the moment the stall begins — no drops, sub-1% VLRT."""
        baseline = cell["original_total_request"]
        jiq = cell["jiq"]
        assert 100.0 * jiq.stats().vlrt_fraction < 1.0
        assert jiq.dropped_packets() == 0
        assert jiq.goodput() > baseline.goodput()
        assert jiq.probe_messages() == 0  # the idle queue costs no traffic

    def test_sticky_reports_its_broken_promises(self, cell):
        """Affinity under millibottlenecks: the 3-state machine forces
        failovers, and every one is counted — never silently absorbed."""
        baseline = cell["original_total_request"]
        sticky = cell["sticky"]
        assert sticky.sticky_violations() > 0
        # The current_load fallback still beats the cumulative baseline,
        # but affinity gives back part of that win.
        assert (100.0 * sticky.stats().vlrt_fraction
                < 100.0 * baseline.stats().vlrt_fraction)
        assert baseline.sticky_violations() == 0
