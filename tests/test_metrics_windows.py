"""Unit tests for WindowedCounter and BusyTracker."""

import pytest

from repro.errors import AnalysisError
from repro.metrics import PAPER_WINDOW, BusyTracker, WindowedCounter


class TestWindowedCounter:
    def test_default_window_is_50ms(self):
        assert WindowedCounter().window == PAPER_WINDOW == 0.050

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter(window=0)
        counter = WindowedCounter()
        with pytest.raises(AnalysisError):
            counter.record(-0.1)

    def test_counts_land_in_right_window(self):
        counter = WindowedCounter(window=0.05)
        counter.record(0.01)
        counter.record(0.049)
        counter.record(0.05)
        counter.record(0.23, count=3)
        assert counter.count_in_window(0) == 2
        assert counter.count_in_window(1) == 1
        assert counter.count_in_window(4) == 3
        assert counter.total == 6

    def test_series_is_dense_with_zeros(self):
        counter = WindowedCounter(window=0.1)
        counter.record(0.05)
        counter.record(0.35)
        series = counter.series()
        assert series.times == pytest.approx([0.0, 0.1, 0.2, 0.3])
        assert series.values == [1, 0, 0, 1]

    def test_series_until_extends_with_zeros(self):
        counter = WindowedCounter(window=0.1)
        counter.record(0.05)
        series = counter.series(until=0.5)
        assert len(series) == 5
        assert series.values == [1, 0, 0, 0, 0]

    def test_empty_series(self):
        assert len(WindowedCounter().series()) == 0

    def test_peak(self):
        counter = WindowedCounter(window=0.1)
        counter.record(0.05)
        counter.record(0.25, count=4)
        time, count = counter.peak()
        assert time == pytest.approx(0.2)
        assert count == 4

    def test_peak_empty_raises(self):
        with pytest.raises(AnalysisError):
            WindowedCounter().peak()


class TestBusyTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            BusyTracker(slots=0)

    def test_single_slot_utilisation(self):
        cpu = BusyTracker(slots=1)
        cpu.acquire(1.0)
        cpu.release(3.0)
        assert cpu.utilization(0.0, 4.0) == pytest.approx(0.5)
        assert cpu.utilization(1.0, 3.0) == pytest.approx(1.0)
        assert cpu.utilization(3.0, 4.0) == pytest.approx(0.0)

    def test_multi_slot_utilisation(self):
        cpu = BusyTracker(slots=4)
        cpu.acquire(0.0, count=2)
        cpu.release(1.0, count=1)
        cpu.release(2.0, count=1)
        # 2 busy for 1s + 1 busy for 1s = 3 slot-seconds of 8 available.
        assert cpu.utilization(0.0, 2.0) == pytest.approx(3 / 8)

    def test_busy_seconds_running_total(self):
        cpu = BusyTracker(slots=2)
        cpu.acquire(0.0)
        assert cpu.busy_seconds(2.0) == pytest.approx(2.0)
        cpu.acquire(2.0)
        assert cpu.busy_seconds(3.0) == pytest.approx(4.0)

    def test_over_acquire_raises(self):
        cpu = BusyTracker(slots=1)
        cpu.acquire(0.0)
        with pytest.raises(AnalysisError):
            cpu.acquire(0.5)

    def test_over_release_raises(self):
        cpu = BusyTracker(slots=1)
        with pytest.raises(AnalysisError):
            cpu.release(0.0)

    def test_time_reversal_raises(self):
        cpu = BusyTracker(slots=1)
        cpu.acquire(5.0)
        with pytest.raises(AnalysisError):
            cpu.release(4.0)

    def test_empty_interval_raises(self):
        cpu = BusyTracker(slots=1)
        with pytest.raises(AnalysisError):
            cpu.utilization(1.0, 1.0)

    def test_utilisation_of_past_interval_after_more_activity(self):
        """Historical windows stay queryable after later acquire/release."""
        cpu = BusyTracker(slots=1)
        cpu.acquire(0.0)
        cpu.release(1.0)
        cpu.acquire(5.0)
        cpu.release(6.0)
        assert cpu.utilization(0.0, 2.0) == pytest.approx(0.5)
        assert cpu.utilization(0.5, 1.5) == pytest.approx(0.5)
        assert cpu.utilization(2.0, 4.0) == pytest.approx(0.0)
        assert cpu.utilization(4.5, 6.5) == pytest.approx(0.5)

    def test_utilization_series_matches_manual_windows(self):
        cpu = BusyTracker(slots=1)
        cpu.acquire(0.05)
        cpu.release(0.10)
        series = cpu.utilization_series(window=0.05, until=0.20)
        assert series.times == pytest.approx([0.0, 0.05, 0.10, 0.15])
        assert series.values == pytest.approx([0.0, 1.0, 0.0, 0.0])

    def test_utilization_series_bad_window(self):
        cpu = BusyTracker(slots=1)
        with pytest.raises(AnalysisError):
            cpu.utilization_series(window=0, until=1)

    def test_busy_slots_property(self):
        cpu = BusyTracker(slots=3)
        cpu.acquire(0.0, count=2)
        assert cpu.busy_slots == 2
        cpu.release(1.0)
        assert cpu.busy_slots == 1
