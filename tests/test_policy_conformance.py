"""Policy conformance suite: every registry entry honours the contract.

Each test here is parametrized over **every** ``POLICIES`` entry, so a
new policy is automatically held to the same contract the day it is
registered:

* ``select()`` only ever returns one of the offered (eligible) members;
* selection is deterministic under a fixed rng and identical history;
* member counters (``lb_value``, ``inflight``) stay non-negative
  through arbitrary pick/abandon/complete cycles;
* an unconfigured policy schedules **zero** simulation events — the
  property that keeps the golden traces byte-identical while the
  modern zoo sits in the registry unselected.
"""

import numpy as np
import pytest

from repro.core import (
    LoadBalancer,
    ModifiedGetEndpoint,
)
from repro.core.member import BalancerMember
from repro.core.policies import POLICIES, PrequalPolicy, make_policy
from repro.osmodel import Host
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer
from repro.workload import Request, get_interaction

POLICY_ITEMS = sorted(POLICIES.items())
POLICY_IDS = [name for name, _ in POLICY_ITEMS]


def build_members(count=4, threads=2):
    env = Environment()
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    members = []
    for i in range(count):
        name = "tomcat{}".format(i + 1)
        tomcat = TomcatServer(env, name, Host(env, name), mysql,
                              max_threads=threads)
        members.append(BalancerMember(env, tomcat, index=i,
                                      trace_lb_values=False))
    return env, members


def build_balancer(env, policy, count=3):
    mysql = MySqlServer(env, "bal-mysql", Host(env, "bal-mysql"))
    backends = [
        TomcatServer(env, "bal-tomcat{}".format(i + 1),
                     Host(env, "bal-tomcat{}".format(i + 1)), mysql,
                     max_threads=2)
        for i in range(count)
    ]
    return LoadBalancer(env, "conformance.lb", backends, policy=policy,
                        mechanism=ModifiedGetEndpoint(),
                        rng=np.random.default_rng(0))


def make_request(env, serial, client=0):
    return Request(env, serial, get_interaction("ViewStory"), client)


def drive(policy, env, members, rng, steps=36):
    """A fixed pick/dispatch/complete/abandon script; returns picks."""
    picks = []
    outstanding = []
    serial = 0
    for step in range(steps):
        member = policy.select(members, rng,
                               request=make_request(env, serial,
                                                    client=serial % 3))
        picks.append(member.index)
        request = make_request(env, serial, client=serial % 3)
        request.dispatched_at = 0.0
        serial += 1
        policy.on_pick(member, request)
        if step % 7 == 3:  # endpoint acquisition failed
            policy.on_pick_abandoned(member, request)
            continue
        policy.on_dispatch(member, request)
        member.inflight += 1
        outstanding.append((member, request))
        if step % 3 == 2 and outstanding:
            done_member, done_request = outstanding.pop(0)
            done_member.inflight -= 1
            policy.on_complete(done_member, done_request)
    return picks


@pytest.mark.parametrize("name,cls", POLICY_ITEMS, ids=POLICY_IDS)
class TestConformance:
    def test_select_returns_an_eligible_member(self, name, cls):
        """Whatever subset the 3-state machine offers, the pick is
        inside it — a policy never resurrects a filtered-out member."""
        env, members = build_members()
        policy = cls()
        rng = np.random.default_rng(5)
        subsets = [members, members[:1], members[1:3], [members[2]],
                   members[::2], list(reversed(members))]
        serial = 0
        for round_no in range(4):
            for eligible in subsets:
                member = policy.select(eligible, rng,
                                       request=make_request(env, serial,
                                                            client=serial))
                serial += 1
                assert member in eligible
                request = make_request(env, serial, client=serial)
                request.dispatched_at = 0.0
                policy.on_pick(member, request)
                policy.on_dispatch(member, request)
                member.inflight += 1
                member.inflight -= 1
                policy.on_complete(member, request)

    def test_deterministic_under_fixed_rng(self, name, cls):
        """Two instances fed identical histories and same-seeded rngs
        produce identical pick sequences."""
        env_a, members_a = build_members()
        env_b, members_b = build_members()
        picks_a = drive(cls(), env_a, members_a, np.random.default_rng(17))
        picks_b = drive(cls(), env_b, members_b, np.random.default_rng(17))
        assert picks_a == picks_b

    def test_counters_stay_nonnegative(self, name, cls):
        """lb_value and inflight never go below zero through arbitrary
        pick/abandon/complete interleavings."""
        env, members = build_members()
        policy = cls()
        rng = np.random.default_rng(23)
        outstanding = []
        serial = 0
        for step in range(60):
            op = step % 5
            if op in (0, 1, 2):
                member = policy.select(members, rng,
                                       request=make_request(env, serial,
                                                            client=serial))
                request = make_request(env, serial, client=serial)
                request.dispatched_at = 0.0
                serial += 1
                policy.on_pick(member, request)
                policy.on_dispatch(member, request)
                member.inflight += 1
                outstanding.append((member, request))
            elif op == 3 and outstanding:
                member, request = outstanding.pop(0)
                member.inflight -= 1
                policy.on_complete(member, request)
            elif op == 4 and outstanding:
                member, request = outstanding.pop()
                member.inflight -= 1
                policy.on_pick_abandoned(member, request)
            assert all(m.lb_value >= 0 for m in members)
            assert all(m.inflight >= 0 for m in members)

    def test_unattached_policy_schedules_no_events(self, name, cls):
        """Constructing and exercising a policy outside a balancer must
        not touch the event heap — selection is pure ranking."""
        env, members = build_members()
        before = len(env)
        policy = cls()
        rng = np.random.default_rng(2)
        drive(policy, env, members, rng, steps=12)
        policy.on_member_state(members[0])
        policy.on_member_added(members[0])
        policy.on_member_removed(members[0])
        assert len(env) == before

    def test_attach_is_zero_event_unless_probing(self, name, cls):
        """attach() may start processes only for probing policies; every
        other policy leaves the balancer's event count exactly where a
        classic policy does (the golden-trace neutrality guarantee)."""
        env = Environment()
        before = len(env)
        build_balancer(env, make_policy("total_request"))
        baseline = len(env) - before

        env2 = Environment()
        before2 = len(env2)
        build_balancer(env2, cls())
        scheduled = len(env2) - before2
        if isinstance(cls(), PrequalPolicy):
            assert scheduled == baseline + 1  # exactly the probe pool
        else:
            assert scheduled == baseline

    def test_registry_name_round_trips(self, name, cls):
        policy = make_policy(name)
        assert isinstance(policy, cls)
        assert policy.name == name
        assert POLICIES[policy.name] is cls
