"""The span-tree tracer, critical-path decomposer and VLRT explainer.

Unit tests drive the tracer by hand through a bare kernel; the
acceptance tests reproduce the paper's headline claim from trace data
alone: on a millibottleneck run, (nearly) every VLRT request is
dominated by retransmission backoff or queue wait, and the
retransmission-dominated ones cluster at 1 s / 2 s / 3 s — the
multiples of the TCP minimum RTO (Fig. 4).
"""

import json

import pytest

from repro.cluster.runner import ExperimentRunner
from repro.cluster.scenarios import policy_run
from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.tracing import (
    BUCKET_OF_SPAN,
    SpanTracer,
    VLRT_CAUSE_BUCKETS,
    chrome_trace,
    decompose,
    explain_vlrt,
    trace_report,
    trace_to_dict,
)

from dataclasses import replace


def drive(env, generator):
    env.process(generator)
    env.run()


class TestSpanTracer:
    def test_begin_end_lifecycle(self):
        env = Environment()
        tracer = SpanTracer(env)

        def script():
            tracer.begin(1, interaction="Home")
            yield env.timeout(2.5)
            tracer.end(1, status="ok", served_by="tomcat1")

        drive(env, script())
        trace = tracer.get(1)
        assert trace.completed
        assert trace.status == "ok"
        assert trace.duration == pytest.approx(2.5)
        assert trace.root.meta["interaction"] == "Home"
        assert len(tracer) == 1

    def test_nesting_follows_open_order(self):
        env = Environment()
        tracer = SpanTracer(env)

        def script():
            tracer.begin(1)
            outer = tracer.start(1, "apache.service")
            yield env.timeout(1.0)
            inner = tracer.start(1, "tomcat.service")
            yield env.timeout(1.0)
            tracer.finish(inner)
            tracer.finish(outer)
            tracer.end(1)

        drive(env, script())
        trace = tracer.get(1)
        assert trace.signature() == (
            "request(apache.service(tomcat.service))")
        (outer,) = trace.spans_named("apache.service")
        (inner,) = trace.spans_named("tomcat.service")
        assert inner.parent is outer
        assert outer.parent is trace.root
        assert inner.depth == 2

    def test_finish_is_idempotent_and_none_safe(self):
        env = Environment()
        tracer = SpanTracer(env)

        def script():
            tracer.begin(1)
            span = tracer.start(1, "apache.service")
            yield env.timeout(1.0)
            tracer.finish(span)
            first_end = span.end
            yield env.timeout(1.0)
            tracer.finish(span)  # double close: no-op
            assert span.end == first_end
            tracer.finish(None)  # None: no-op

        drive(env, script())

    def test_out_of_order_finish_unwinds_the_stack(self):
        """A fault can close an outer span while a child is open."""
        env = Environment()
        tracer = SpanTracer(env)

        def script():
            tracer.begin(1)
            outer = tracer.start(1, "balancer.dispatch")
            inner = tracer.start(1, "balancer.endpoint_wait")
            yield env.timeout(1.0)
            tracer.finish(outer)  # out of order
            # The next span must not become a child of the closed outer.
            late = tracer.start(1, "tcp.retransmit_wait")
            tracer.finish(late)
            tracer.finish(inner)
            tracer.end(1)

        drive(env, script())
        trace = tracer.get(1)
        (late,) = trace.spans_named("tcp.retransmit_wait")
        assert late.parent.name == "balancer.endpoint_wait"

    def test_named_spans_cross_components(self):
        env = Environment()
        tracer = SpanTracer(env)

        def producer():
            tracer.begin(1)
            tracer.start_named(1, "apache.queue_wait", socket="apache1")
            tracer.start_named(1, "apache.queue_wait")  # dup: ignored
            yield env.timeout(3.0)

        def consumer():
            yield env.timeout(2.0)
            tracer.finish_named(1, "apache.queue_wait")
            tracer.finish_named(1, "apache.queue_wait")  # again: no-op
            tracer.finish_named(1, "never.opened")       # unknown: no-op
            tracer.end(1)

        env.process(producer())
        env.process(consumer())
        env.run()
        trace = tracer.get(1)
        (wait,) = trace.spans_named("apache.queue_wait")
        assert wait.duration == pytest.approx(2.0)
        assert wait.meta["socket"] == "apache1"

    def test_untraced_request_ids_are_noops(self):
        env = Environment()
        tracer = SpanTracer(env)
        assert tracer.start(99, "apache.service") is None
        tracer.end(99)
        tracer.instant(99, "apache.error_503")
        tracer.start_named(99, "tomcat.queue_wait")
        tracer.finish_named(99, "tomcat.queue_wait")
        assert len(tracer) == 0

    def test_instant_spans_have_zero_duration(self):
        env = Environment()
        tracer = SpanTracer(env)
        tracer.begin(1)
        tracer.instant(1, "hedge.issued", clone=-11)
        (span,) = tracer.get(1).spans_named("hedge.issued")
        assert span.duration == 0.0
        assert span.meta["clone"] == -11

    def test_finalize_closes_stragglers(self):
        env = Environment()
        tracer = SpanTracer(env)

        def script():
            tracer.begin(1)
            tracer.start(1, "apache.service")
            tracer.begin(2)
            yield env.timeout(4.0)
            tracer.end(2)

        drive(env, script())
        tracer.finalize()
        straggler = tracer.get(1)
        assert straggler.root.end == pytest.approx(4.0)
        assert straggler.status == "unfinished"
        assert not straggler.completed
        (span,) = straggler.spans_named("apache.service")
        assert span.meta["unfinished"] is True
        # The normally-ended trace keeps its status.
        assert tracer.get(2).completed
        assert tracer.completed_traces() == [tracer.get(2)]


class TestCriticalPath:
    def build(self, script_factory):
        env = Environment()
        tracer = SpanTracer(env)
        drive(env, script_factory(env, tracer))
        tracer.finalize()
        return tracer.get(1)

    def test_buckets_reconstruct_duration_by_self_time(self):
        def script(env, tracer):
            tracer.begin(1)
            retrans = tracer.start(1, "tcp.retransmit_wait")
            yield env.timeout(1.0)
            tracer.finish(retrans)
            service = tracer.start(1, "apache.service")
            yield env.timeout(0.010)
            inner = tracer.start(1, "tomcat.service")
            yield env.timeout(0.020)
            tracer.finish(inner)
            tracer.finish(service)
            tracer.end(1)

        path = decompose(self.build(script))
        assert sum(path.buckets.values()) == pytest.approx(
            path.total, abs=1e-12)
        assert path.buckets["retransmission"] == pytest.approx(1.0)
        assert path.buckets["service.apache"] == pytest.approx(0.010)
        assert path.buckets["service.tomcat"] == pytest.approx(0.020)
        assert path.dominant == "retransmission"
        assert path.fraction("retransmission") == pytest.approx(
            1.0 / 1.030)

    def test_children_are_clipped_to_parent_interval(self):
        """Ghost work outliving the root is not charged to the client."""
        def script(env, tracer):
            tracer.begin(1)
            span = tracer.start(1, "tomcat.service")
            yield env.timeout(0.5)
            tracer.end(1)          # client is done at 0.5 s
            yield env.timeout(1.5)
            tracer.finish(span)    # ghost service ends at 2.0 s

        path = decompose(self.build(script))
        assert path.total == pytest.approx(0.5)
        assert sum(path.buckets.values()) == pytest.approx(0.5)
        assert path.buckets["service.tomcat"] == pytest.approx(0.5)

    def test_every_instrumented_span_name_has_a_bucket(self):
        instrumented = [
            "request", "tcp.retransmit_wait", "apache.queue_wait",
            "apache.service", "balancer.dispatch",
            "balancer.endpoint_wait", "balancer.retry_pause",
            "balancer.breaker_pause", "balancer.send",
            "tomcat.queue_wait", "tomcat.service", "mysql.pool_wait",
            "mysql.service", "hedge.issued", "hedge.win",
        ]
        for name in instrumented:
            assert name in BUCKET_OF_SPAN, name

    def test_queue_wait_buckets_count_as_vlrt_causes(self):
        assert "retransmission" in VLRT_CAUSE_BUCKETS
        assert "queue_wait.apache" in VLRT_CAUSE_BUCKETS
        assert "endpoint_wait" in VLRT_CAUSE_BUCKETS
        assert "service.tomcat" not in VLRT_CAUSE_BUCKETS


class TestExplainVlrt:
    def synthetic_trace(self, env, tracer, request_id, retrans_periods,
                        service=0.005):
        def script():
            tracer.begin(request_id)
            for _ in range(retrans_periods):
                span = tracer.start(request_id, "tcp.retransmit_wait")
                yield env.timeout(1.0)
                tracer.finish(span)
            span = tracer.start(request_id, "tomcat.service")
            yield env.timeout(service)
            tracer.finish(span)
            tracer.end(request_id)

        return script()

    def test_clusters_count_rto_multiples(self):
        env = Environment()
        tracer = SpanTracer(env)
        plan = {1: 1, 2: 1, 3: 2, 4: 3, 5: 0}
        for request_id, periods in plan.items():
            env.process(self.synthetic_trace(env, tracer, request_id,
                                             periods))
        env.run()
        explanation = explain_vlrt(tracer.traces.values(), rto=1.0)
        assert explanation.total_requests == 5
        assert explanation.vlrt_count == 4   # the 0-period one is fast
        assert explanation.clusters == {1: 2, 2: 1, 3: 1}
        assert explanation.by_cause == {"retransmission": 4}
        assert explanation.explained_fraction == 1.0
        # Paths come back slowest first.
        totals = [path.total for path in explanation.paths]
        assert totals == sorted(totals, reverse=True)

    def test_no_vlrt_requests_renders_cleanly(self):
        env = Environment()
        tracer = SpanTracer(env)
        env.process(self.synthetic_trace(env, tracer, 1, 0))
        env.run()
        explanation = explain_vlrt(tracer.traces.values())
        assert explanation.vlrt_count == 0
        assert explanation.explained_fraction == 1.0
        assert "nothing to explain" in explanation.render()

    def test_to_dict_round_trips_through_json(self):
        env = Environment()
        tracer = SpanTracer(env)
        env.process(self.synthetic_trace(env, tracer, 1, 2))
        env.run()
        payload = json.loads(json.dumps(
            explain_vlrt(tracer.traces.values()).to_dict()))
        assert payload["vlrt_count"] == 1
        assert payload["clusters"] == {"2": 1}
        assert payload["paths"][0]["dominant"] == "retransmission"


# -- acceptance: the paper's claim, from traces alone ----------------------

DURATION = 12.0
SEED = 20170601


@pytest.fixture(scope="module")
def traced_original():
    """The Fig. 3-5 instability run, with request tracing on."""
    config = replace(
        policy_run("original_total_request", duration=DURATION, seed=SEED),
        trace_requests=True)
    return ExperimentRunner(config).run()


class TestVlrtAcceptance:
    def test_vlrt_requests_occurred(self, traced_original):
        assert traced_original.stats().vlrt_count > 50

    def test_trace_counts_agree_with_the_recorder(self, traced_original):
        """Trace-derived VLRTs == recorder-derived VLRTs, per request."""
        explanation = traced_original.explain_vlrt()
        assert explanation.vlrt_count == traced_original.stats().vlrt_count
        recorded = {request.request_id for request
                    in traced_original.recorder.vlrt_requests()}
        traced = {path.request_id for path in explanation.paths}
        assert traced == recorded

    def test_vlrts_attributed_to_the_papers_mechanisms(
            self, traced_original):
        """>= 90% of VLRT requests are dominated by retransmission
        backoff or queue wait (the acceptance bar; observed: 100%)."""
        explanation = traced_original.explain_vlrt()
        assert explanation.explained_fraction >= 0.9

    def test_retransmission_clustering_reproduced_from_traces(
            self, traced_original):
        """Fig. 4: clusters at 1 s, 2 s and 3 s — RTO multiples."""
        clusters = traced_original.explain_vlrt().clusters
        assert clusters.get(1, 0) > 0
        assert clusters.get(2, 0) > 0
        assert clusters.get(3, 0) > 0
        # The 1 s cluster is the largest, as in the paper.
        assert clusters[1] == max(clusters.values())

    def test_bucket_sums_reconstruct_every_completed_request(
            self, traced_original):
        for trace in traced_original.traces():
            if not trace.completed:
                continue
            path = decompose(trace)
            assert sum(path.buckets.values()) == pytest.approx(
                trace.duration, abs=1e-9)

    def test_slowest_traces_are_sorted_and_reportable(
            self, traced_original):
        slowest = traced_original.slowest_traces(3)
        durations = [trace.duration for trace in slowest]
        assert durations == sorted(durations, reverse=True)
        report = trace_report(slowest[0])
        assert "critical path" in report
        assert "request #" in report

    def test_chrome_export_is_well_formed(self, traced_original):
        document = chrome_trace(traced_original.slowest_traces(2))
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete, "no complete events exported"
        for event in complete:
            assert event["dur"] >= 0.0
            assert isinstance(event["ts"], float)
        assert any(e["ph"] == "M" for e in events)

    def test_trace_to_dict_nests_like_the_tree(self, traced_original):
        trace = traced_original.slowest_traces(1)[0]
        payload = trace_to_dict(trace)
        assert payload["request_id"] == trace.request_id
        assert payload["root"]["name"] == "request"

        def count(node):
            return 1 + sum(count(child)
                           for child in node.get("children", ()))

        assert count(payload["root"]) == trace.span_count()

    def test_untraced_result_raises_a_configuration_error(self):
        config = policy_run("original_total_request", duration=0.5)
        result = ExperimentRunner(config).run()
        with pytest.raises(ConfigurationError):
            result.traces()
