"""Unit tests for ResponseTimeRecorder, stats, and distribution."""

import pytest

from repro.errors import AnalysisError
from repro.metrics import (
    NORMAL_THRESHOLD,
    VLRT_THRESHOLD,
    CompletedRequest,
    ResponseTimeDistribution,
    ResponseTimeRecorder,
    ResponseTimeStats,
    percentile,
)


def make_request(request_id, start, end, served_by=None, retransmissions=0):
    return CompletedRequest(
        request_id=request_id,
        interaction="ViewStory",
        started_at=start,
        finished_at=end,
        served_by=served_by,
        retransmissions=retransmissions,
    )


class TestCompletedRequest:
    def test_response_time(self):
        assert make_request(1, 1.0, 1.5).response_time == pytest.approx(0.5)

    def test_vlrt_classification(self):
        assert not make_request(1, 0.0, 1.0).is_vlrt  # exactly 1s is not VLRT
        assert make_request(2, 0.0, 1.001).is_vlrt


class TestResponseTimeStats:
    def test_table1_row_shape(self):
        samples = [0.005] * 90 + [1.5] * 5 + [0.2] * 5
        stats = ResponseTimeStats.from_samples(samples)
        row = stats.row()
        assert row["total_requests"] == 100
        assert row["vlrt_pct"] == pytest.approx(5.0)
        assert row["normal_pct"] == pytest.approx(90.0)
        assert row["avg_response_time_ms"] == pytest.approx(
            stats.mean * 1000, abs=0.01)

    def test_fractions(self):
        stats = ResponseTimeStats.from_samples([0.001, 2.0])
        assert stats.vlrt_fraction == pytest.approx(0.5)
        assert stats.normal_fraction == pytest.approx(0.5)

    def test_percentiles_ordering(self):
        stats = ResponseTimeStats.from_samples(
            [i / 1000 for i in range(1, 1001)])
        assert stats.median <= stats.p95 <= stats.p99 <= stats.p999 <= stats.max

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            ResponseTimeStats.from_samples([])

    def test_thresholds_match_paper(self):
        assert VLRT_THRESHOLD == 1.0
        assert NORMAL_THRESHOLD == 0.010


class TestPercentile:
    def test_against_known_values(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_validation(self):
        with pytest.raises(AnalysisError):
            percentile([], 50)
        with pytest.raises(AnalysisError):
            percentile([1], 101)


class TestResponseTimeRecorder:
    def test_record_and_stats(self):
        recorder = ResponseTimeRecorder("run")
        recorder.record(make_request(1, 0.0, 0.005))
        recorder.record(make_request(2, 0.0, 2.0))
        assert len(recorder) == 2
        stats = recorder.stats()
        assert stats.vlrt_count == 1
        assert stats.normal_count == 1

    def test_point_in_time_keeps_window_max(self):
        recorder = ResponseTimeRecorder()
        recorder.record(make_request(1, 0.0, 0.010))   # rt 10ms
        recorder.record(make_request(2, 0.0, 0.012))   # rt 12ms, same window
        recorder.record(make_request(3, 0.05, 0.060))  # rt 10ms, next window
        series = recorder.point_in_time(window=0.05)
        assert series.times == pytest.approx([0.0, 0.05])
        assert series.values == pytest.approx([0.012, 0.010])

    def test_point_in_time_sorts_by_completion(self):
        recorder = ResponseTimeRecorder()
        recorder.record(make_request(1, 0.0, 0.30))
        recorder.record(make_request(2, 0.0, 0.10))
        series = recorder.point_in_time(window=0.05)
        assert series.times == pytest.approx([0.10, 0.30])

    def test_vlrt_windows(self):
        recorder = ResponseTimeRecorder()
        recorder.record(make_request(1, 0.0, 1.51))  # VLRT ending at 1.51
        recorder.record(make_request(2, 0.4, 1.52))  # VLRT same window
        recorder.record(make_request(3, 1.0, 1.01))  # fast
        series = recorder.vlrt_windows(window=0.05)
        assert series.value_at(1.50) == 2
        assert sum(series.values) == 2

    def test_vlrt_requests_filter(self):
        recorder = ResponseTimeRecorder()
        recorder.record(make_request(1, 0.0, 3.0))
        recorder.record(make_request(2, 0.0, 0.1))
        assert [r.request_id for r in recorder.vlrt_requests()] == [1]

    def test_served_by_counts_with_time_filter(self):
        recorder = ResponseTimeRecorder()
        recorder.record(make_request(1, 0.0, 0.5, served_by="tomcat1"))
        recorder.record(make_request(2, 0.0, 1.5, served_by="tomcat1"))
        recorder.record(make_request(3, 0.0, 1.6, served_by="tomcat2"))
        recorder.record(make_request(4, 0.0, 1.7))  # dropped-by metadata
        counts = recorder.served_by_counts(1.0, 2.0)
        assert counts == {"tomcat1": 1, "tomcat2": 1}
        assert recorder.served_by_counts() == {"tomcat1": 2, "tomcat2": 1}

    def test_retransmitted_filter(self):
        recorder = ResponseTimeRecorder()
        recorder.record(make_request(1, 0.0, 1.2, retransmissions=1))
        recorder.record(make_request(2, 0.0, 0.2))
        assert len(recorder.retransmitted()) == 1


class TestResponseTimeDistribution:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            ResponseTimeDistribution(low=0)
        with pytest.raises(AnalysisError):
            ResponseTimeDistribution(low=1, high=0.5)
        with pytest.raises(AnalysisError):
            ResponseTimeDistribution(buckets_per_decade=0)

    def test_counts_and_total(self):
        dist = ResponseTimeDistribution()
        dist.add_all([0.005, 0.005, 1.0, 2.0])
        assert dist.total == 4

    def test_out_of_range_clamped(self):
        dist = ResponseTimeDistribution(low=0.01, high=1.0)
        dist.add(0.0001)
        dist.add(50.0)
        assert dist.total == 2
        assert dist.counts[0] == 1
        assert dist.counts[-1] == 1

    def test_mass_between(self):
        dist = ResponseTimeDistribution()
        dist.add_all([0.005] * 10 + [1.0] * 3)
        assert dist.mass_between(0.001, 0.01) == 10
        assert dist.mass_between(0.5, 2.0) == 3

    def test_bimodal_detection_via_modes(self):
        dist = ResponseTimeDistribution()
        dist.add_all([0.004] * 100 + [1.0] * 20)
        mode_centers = [center for center, _ in dist.modes(min_count=10)]
        assert any(center < 0.01 for center in mode_centers)
        assert any(0.5 < center < 2.0 for center in mode_centers)

    def test_vlrt_clusters(self):
        dist = ResponseTimeDistribution()
        dist.add_all([1.05] * 5 + [2.1] * 3 + [3.05] * 2 + [0.005] * 50)
        clusters = dist.vlrt_clusters()
        assert clusters[1.0] == 5
        assert clusters[2.0] == 3
        assert clusters[3.0] == 2

    def test_rows_cover_all_counts(self):
        dist = ResponseTimeDistribution()
        dist.add_all([0.01, 0.1, 1.0])
        rows = dist.rows()
        assert sum(count for _, _, count in rows) == 3
        for low, high, _ in rows:
            assert low < high
