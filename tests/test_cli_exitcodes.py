"""End-to-end CLI exit codes: ``main()`` driven as a subprocess would.

The contract the CI and any wrapping scripts rely on: 0 success,
1 findings (statan), 2 configuration/user error — asserted through
``repro.cli.main`` itself, not the subcommand helpers, so argument
parsing, dispatch and error handling are all on the hook.
"""

import json

import pytest

from repro.cli import main


class TestTraceCommand:
    def test_trace_succeeds_and_reports(self, capsys):
        code = main(["trace", "run/current_load", "--duration", "2",
                     "--seed", "3", "--slowest", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VLRT explainer:" in out
        assert "request #" in out
        assert "critical path" in out

    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        code = main(["trace", "run/current_load", "--duration", "2",
                     "--slowest", "1", "--chrome", str(target)])
        assert code == 0
        document = json.loads(target.read_text())
        assert document["traceEvents"]
        assert any(event["ph"] == "X"
                   for event in document["traceEvents"])

    def test_trace_json_flag_dumps_explanation(self, capsys):
        code = main(["trace", "run/current_load", "--duration", "2",
                     "--slowest", "0", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        start = out.index("{")
        end = out.rindex("}") + 1
        payload = json.loads(out[start:end])
        assert "vlrt_count" in payload
        assert "explained_fraction" in payload

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(["trace", "no/such_scenario"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown scenario" in err


class TestChaosCommand:
    def test_chaos_grid_succeeds(self, capsys):
        code = main(["chaos", "--faults", "none", "--remedies", "none",
                     "--bundles", "current_load_modified",
                     "--duration", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "current_load_modified" in out

    def test_chaos_unknown_fault_exits_2(self, capsys):
        code = main(["chaos", "--faults", "not_a_fault",
                     "--duration", "2"])
        assert code == 2
        assert "fault" in capsys.readouterr().err

    def test_chaos_unknown_remedy_exits_2_and_lists_all_keys(self, capsys):
        code = main(["chaos", "--remedies", "not_a_remedy",
                     "--duration", "2"])
        err = capsys.readouterr().err
        assert code == 2
        # The message advertises the full remedy namespace: resilience
        # bundles and control-plane bundles alike.
        for key in ("breaker", "full", "admission+leveling",
                    "autoscale_fast", "bulkhead"):
            assert key in err

    def test_chaos_accepts_controlplane_remedy(self, capsys):
        code = main(["chaos", "--faults", "none",
                     "--remedies", "admission+leveling",
                     "--bundles", "current_load_modified",
                     "--duration", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "admission+leveling" in out


class TestControlplaneCommand:
    def test_controlplane_succeeds_and_reports_mechanisms(self, capsys):
        code = main(["controlplane", "--duration", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "admission" in out
        assert "leveling" in out

    def test_controlplane_unknown_remedy_exits_2(self, capsys):
        code = main(["controlplane", "--remedy", "not_a_remedy",
                     "--duration", "2"])
        err = capsys.readouterr().err
        assert code == 2
        assert "admission+leveling" in err


class TestStatanCommand:
    def test_clean_file_exits_0(self, tmp_path):
        module = tmp_path / "clean.py"
        module.write_text("VALUE = 1\n")
        assert main(["statan", str(module)]) == 0

    def test_findings_exit_1(self, tmp_path, capsys):
        module = tmp_path / "dirty.py"
        module.write_text("import time\nNOW = time.time()\n")
        code = main(["statan", str(module)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET001" in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        code = main(["statan", str(tmp_path / "absent.py")])
        assert code == 2
        assert "statan" in capsys.readouterr().err

    def test_repo_source_tree_is_clean_at_warning(self):
        """The CI gate, end to end: src/repro lints clean.

        The committed baseline covers the accepted SEED003 trio (the
        shared seed-0 fallbacks whose fix would break golden traces);
        anything *new* still fails this test, exactly like CI.
        """
        assert main(["statan", "src/repro",
                     "--baseline", "statan-baseline.json",
                     "--min-severity", "warning"]) == 0


class TestOtherCommands:
    def test_list_exits_0_and_names_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "run/current_load" in out
        assert "fig1/baseline" in out

    def test_run_exits_0(self, capsys):
        code = main(["run", "fig1/baseline", "--duration", "2"])
        assert code == 0
        assert "requests" in capsys.readouterr().out

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_missing_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
