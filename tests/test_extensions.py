"""Tests for the extension modules: bursty workload, throughput
metrics, lag correlation, CSV export, and sweeps."""

import numpy as np
import pytest

from repro.analysis import (
    best_lag,
    export_result,
    lagged_pearson,
    pearson,
    series_from_csv,
    series_to_csv,
    shift,
)
from repro.cluster import Sweep
from repro.cluster.scenarios import policy_run
from repro.errors import AnalysisError, ConfigurationError
from repro.metrics import (
    CompletedRequest,
    ResponseTimeRecorder,
    TimeSeries,
    goodput_ratio,
    goodput_series,
    interval_throughput,
    throughput_series,
)
from repro.netmodel import ListenSocket
from repro.sim import Environment
from repro.workload import BurstProfile, OpenLoopGenerator, read_write_mix


class TestBurstProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstProfile(base_rate=0, burst_rate=10)
        with pytest.raises(ConfigurationError):
            BurstProfile(base_rate=10, burst_rate=5)
        with pytest.raises(ConfigurationError):
            BurstProfile(base_rate=1, burst_rate=2, burst_duration=0)

    def test_burstiness(self):
        steady = BurstProfile.steady(100.0)
        assert steady.burstiness == pytest.approx(1.0)
        bursty = BurstProfile(base_rate=10, burst_rate=1000,
                              burst_duration=0.1, quiet_duration=0.9)
        assert bursty.burstiness > 5


class EchoBackend:
    """Completes requests from a socket after a tiny delay."""

    def __init__(self, env, socket, delay=0.001):
        self.env = env
        self.socket = socket
        self.delay = delay
        env.process(self._run())

    def _run(self):
        while True:
            request = yield self.socket.accept()
            yield self.env.timeout(self.delay)
            request.served_by = "echo"
            request.completion.succeed(request)


class TestOpenLoopGenerator:
    def test_steady_rate_generates_poisson_arrivals(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1000)
        EchoBackend(env, socket)
        generator = OpenLoopGenerator(
            env, socket, read_write_mix(), BurstProfile.steady(100.0),
            np.random.default_rng(0))
        env.run(until=10.0)
        # ~1000 requests expected; allow wide tolerance.
        assert 800 < generator.requests_sent < 1200
        assert len(generator.recorder) > 700
        assert not generator.bursting

    def test_bursts_modulate_the_rate(self):
        env = Environment()
        socket = ListenSocket(env, backlog=10000)
        EchoBackend(env, socket, delay=0.0001)
        profile = BurstProfile(base_rate=20, burst_rate=2000,
                               burst_duration=0.2, quiet_duration=1.0)
        generator = OpenLoopGenerator(
            env, socket, read_write_mix(), profile,
            np.random.default_rng(1))
        env.run(until=10.0)
        rate = throughput_series(generator.recorder, window=0.1)
        # Peak window rate far above the base rate: bursts happened.
        assert rate.max() > 10 * 20
        assert generator.requests_sent > 500

    def test_open_loop_does_not_backpressure(self):
        """Unlike the closed loop, a slow backend does not slow the
        arrival process."""
        env = Environment()
        socket = ListenSocket(env, backlog=100000)
        EchoBackend(env, socket, delay=1.0)  # extremely slow
        generator = OpenLoopGenerator(
            env, socket, read_write_mix(), BurstProfile.steady(100.0),
            np.random.default_rng(2))
        env.run(until=5.0)
        assert generator.requests_sent > 350

    def test_drops_are_retransmitted_and_counted(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1)  # everything overflows
        generator = OpenLoopGenerator(
            env, socket, read_write_mix(), BurstProfile.steady(50.0),
            np.random.default_rng(3))
        env.run(until=5.0)
        assert generator.sender.packets_dropped > 0


def make_recorder(completions):
    """completions: list of (start, end) pairs."""
    recorder = ResponseTimeRecorder("t")
    for i, (start, end) in enumerate(completions):
        recorder.record(CompletedRequest(i, "ViewStory", start, end))
    return recorder


class TestThroughputMetrics:
    def test_throughput_series_counts_per_second(self):
        recorder = make_recorder([(0, 0.1), (0, 0.2), (0, 1.5)])
        series = throughput_series(recorder, window=1.0)
        assert series.values == [2.0, 1.0]

    def test_throughput_rate_scales_with_window(self):
        recorder = make_recorder([(0, 0.1), (0, 0.2)])
        series = throughput_series(recorder, window=0.5)
        assert series.values == [4.0]  # 2 completions / 0.5 s

    def test_goodput_excludes_slow_requests(self):
        recorder = make_recorder([(0, 0.01), (0, 0.02), (0, 2.0)])
        good = goodput_series(recorder, window=10.0, threshold=0.1)
        assert sum(good.values) * 10.0 == 2

    def test_goodput_ratio(self):
        recorder = make_recorder([(0, 0.01), (0, 0.05), (0, 5.0), (0, 6.0)])
        assert goodput_ratio(recorder, threshold=0.1) == pytest.approx(0.5)
        with pytest.raises(AnalysisError):
            goodput_ratio(ResponseTimeRecorder())

    def test_interval_throughput(self):
        recorder = make_recorder([(0, 0.5), (0, 1.5), (0, 2.5)])
        assert interval_throughput(recorder, 0.0, 2.0) == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            interval_throughput(recorder, 2.0, 2.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            throughput_series(make_recorder([(0, 1)]), window=0)


class TestLagCorrelation:
    def make_pair(self, lag):
        """cause pulses at t=2,5,8; effect follows `lag` later."""
        grid = [round(0.1 * i, 5) for i in range(120)]
        cause = TimeSeries("cause")
        effect = TimeSeries("effect")
        pulses = {2.0, 5.0, 8.0}
        for t in grid:
            cause.append(t, 1.0 if round(t, 5) in pulses else 0.0)
            effect.append(
                t, 1.0 if round(t - lag, 5) in pulses else 0.0)
        return cause, effect

    def test_shift(self):
        series = TimeSeries("x", [(1.0, 5.0), (2.0, 6.0)])
        shifted = shift(series, -1.5)
        assert shifted.times == [0.5]
        assert shifted.values == [6.0]

    def test_lagged_pearson_recovers_relationship(self):
        cause, effect = self.make_pair(lag=1.0)
        assert pearson(cause, effect) < 0.5       # invisible at lag 0
        assert lagged_pearson(cause, effect, 1.0) > 0.9

    def test_best_lag_finds_the_timer(self):
        cause, effect = self.make_pair(lag=1.0)
        lag, r = best_lag(cause, effect, max_lag=2.0, step=0.1)
        assert lag == pytest.approx(1.0)
        assert r > 0.9

    def test_validation(self):
        series = TimeSeries("x", [(0, 1), (1, 2)])
        with pytest.raises(AnalysisError):
            lagged_pearson(series, series, -1)
        with pytest.raises(AnalysisError):
            best_lag(series, series, max_lag=-1, step=0.1)


class TestCsvExport:
    def test_series_roundtrip(self, tmp_path):
        series = TimeSeries("queue", [(0.0, 1.0), (0.05, 3.5)])
        path = tmp_path / "series.csv"
        series_to_csv(series, path)
        loaded = series_from_csv(path)
        assert loaded.name == "queue"
        assert list(loaded) == list(series)

    def test_bad_csv_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(AnalysisError):
            series_from_csv(path)

    def test_export_result_writes_everything(self, tmp_path):
        from repro.cluster import ExperimentRunner
        result = ExperimentRunner(
            policy_run("current_load", duration=2.0, seed=1,
                       trace=False)).run()
        out = export_result(result, tmp_path / "run")
        names = {p.name for p in out.iterdir()}
        assert "summary.json" in names
        assert "rt.csv" in names
        assert "vlrt.csv" in names
        assert "queue_tomcat1.csv" in names
        assert "cpu_apache1.csv" in names
        assert "iowait_mysql1.csv" in names
        import json
        summary = json.loads((out / "summary.json").read_text())
        assert summary["bundle"] == "current_load"
        assert summary["table1_row"]["total_requests"] > 0


class TestSweep:
    def base(self):
        return policy_run("current_load", duration=1.5, seed=1,
                          trace=False)

    def test_grid_size_and_overrides(self):
        sweep = Sweep(self.base())
        sweep.over("seed", [1, 2]).over("profile.clients", [100, 200, 300])
        assert len(sweep) == 6
        combos = [overrides for overrides, _ in sweep.configs()]
        assert {"seed": 2, "profile.clients": 300} in combos
        configs = [config for _, config in sweep.configs()]
        assert {config.profile.clients for config in configs} == {
            100, 200, 300}

    def test_empty_sweep_runs_base_once(self):
        rows = Sweep(self.base()).run()
        assert len(rows) == 1
        assert rows[0]["requests"] > 0

    def test_run_collects_rows(self):
        sweep = Sweep(self.base()).over("seed", [1, 2])
        rows = sweep.run()
        assert len(rows) == 2
        assert rows[0]["seed"] == 1
        assert all("avg_rt_ms" in row for row in rows)

    def test_custom_summarizer(self):
        sweep = Sweep(self.base()).over("seed", [3])
        rows = sweep.run(summarize=lambda result: {
            "drops": result.dropped_packets()})
        assert rows == [{"seed": 3, "drops": 0}]

    def test_validation(self):
        sweep = Sweep(self.base())
        with pytest.raises(ConfigurationError):
            sweep.over("seed", [])
        with pytest.raises(ConfigurationError):
            sweep.over("nonsense", [1])
        with pytest.raises(ConfigurationError):
            sweep.over("profile.nonsense", [1])
        with pytest.raises(ConfigurationError):
            sweep.over("profile.clients.deep", [1])
