"""Parallel fan-out: pool/serial equivalence, ordering, picklability."""

import pickle
from dataclasses import replace

import pytest

from repro.analysis.report import improvement_factors, table1
from repro.cluster.runner import (
    ExperimentConfig,
    ExperimentRunner,
    compare_policies,
)
from repro.cluster.scenarios import policy_run
from repro.cluster.sweeps import Sweep
from repro.errors import ConfigurationError
from repro.parallel import (
    ExperimentSummary,
    replicate,
    run_experiments,
    summarize,
)


def small_config(seed=11, bundle_key="original_total_request"):
    config = policy_run(bundle_key, duration=2.0, seed=seed, trace=False)
    return replace(config, profile=config.profile.scaled(0.5))


class TestSummarize:
    def test_summary_matches_full_result(self):
        config = small_config()
        result = ExperimentRunner(config).run()
        summary = summarize(result)
        assert summary.response_stats == result.stats()
        assert summary.dropped == result.dropped_packets()
        assert summary.table1_row() == result.table1_row()
        assert summary.summary() == result.summary()
        assert summary.config == config

    def test_summary_is_picklable(self):
        summary = summarize(ExperimentRunner(small_config()).run())
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.response_stats == summary.response_stats
        assert clone.queue_series.keys() == summary.queue_series.keys()

    def test_full_result_is_not_picklable(self):
        """The reason the pool ships summaries, not results."""
        result = ExperimentRunner(small_config()).run()
        with pytest.raises(Exception):
            pickle.dumps(result)


class TestRunExperiments:
    def test_serial_and_parallel_stats_are_identical(self):
        config = small_config(seed=21)
        serial, = run_experiments([config], workers=1)
        parallel = run_experiments([config, small_config(seed=22)],
                                   workers=2)
        assert serial.response_stats == parallel[0].response_stats
        assert serial.dropped == parallel[0].dropped

    def test_results_come_back_in_submission_order(self):
        seeds = [31, 32, 33]
        summaries = run_experiments(
            [small_config(seed=seed) for seed in seeds], workers=2)
        assert [s.config.seed for s in summaries] == seeds

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiments([small_config()], workers=0)

    def test_custom_postprocess_runs_in_worker(self):
        rows = run_experiments([small_config(seed=41),
                                small_config(seed=42)],
                               workers=2, postprocess=_request_count)
        assert all(isinstance(count, int) and count > 0 for count in rows)


def _request_count(result):
    return result.stats().count


class TestReplicate:
    def test_keyed_by_seed_in_order(self):
        rep = replicate(small_config(), seeds=[3, 1, 2], workers=2)
        assert rep.seeds == (3, 1, 2)
        assert set(rep.by_seed()) == {1, 2, 3}
        for seed, summary in rep.by_seed().items():
            assert summary.config.seed == seed

    def test_replications_match_direct_runs(self):
        rep = replicate(small_config(), seeds=[5, 6], workers=2)
        direct = summarize(
            ExperimentRunner(replace(small_config(), seed=6)).run())
        assert rep.by_seed()[6].response_stats == direct.response_stats

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(small_config(), seeds=[1, 1])

    def test_aggregate_shape(self):
        aggregate = replicate(small_config(), seeds=[7, 8]).aggregate()
        assert aggregate["runs"] == 2.0
        assert aggregate["avg_rt_ms_mean"] > 0
        assert "vlrt_pct_std" in aggregate


class TestComparePoliciesWorkers:
    KEYS = ["original_total_request", "current_load"]

    def test_parallel_matches_serial(self):
        profile = small_config().profile
        serial = compare_policies(self.KEYS, profile=profile,
                                  duration=2.0, seed=51)
        parallel = compare_policies(self.KEYS, profile=profile,
                                    duration=2.0, seed=51, workers=2)
        for full, summary in zip(serial, parallel):
            assert isinstance(summary, ExperimentSummary)
            assert full.stats() == summary.stats()
            assert full.config.bundle_key == summary.config.bundle_key

    def test_summaries_feed_reports(self):
        profile = small_config().profile
        results = compare_policies(self.KEYS, profile=profile,
                                   duration=2.0, seed=52, workers=2)
        rendered = table1(results)
        assert "Policy" in rendered
        factors = improvement_factors(results)
        assert set(factors) == set(self.KEYS)


class TestSweepWorkers:
    def test_parallel_rows_match_serial(self):
        def sweep():
            return Sweep(small_config()).over("seed", [61, 62, 63])

        assert sweep().run(workers=2) == sweep().run(workers=1)
