"""Property-based tests for the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DropQueue, Environment, Resource, Store

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)


@given(delays)
def test_clock_is_monotone_and_visits_every_delay(delay_list):
    """Processes wake exactly at their scheduled times, in sorted order."""
    env = Environment()
    wakeups = []

    def sleeper(env, delay):
        yield env.timeout(delay)
        wakeups.append(env.now)

    for delay in delay_list:
        env.process(sleeper(env, delay))
    env.run()
    assert wakeups == sorted(delay_list)
    assert env.now == max(delay_list)


@given(delays)
def test_equal_timestamps_preserve_creation_order(delay_list):
    """Ties at one timestamp are broken by scheduling order (stable)."""
    env = Environment()
    order = []

    def sleeper(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag, _ in enumerate(delay_list):
        env.process(sleeper(env, tag))
    env.run()
    assert order == list(range(len(delay_list)))


@given(st.integers(min_value=1, max_value=8),
       st.lists(st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
                min_size=1, max_size=30))
@settings(max_examples=50)
def test_resource_conservation(capacity, hold_times):
    """At no instant do more than ``capacity`` processes hold the resource,
    and every process is eventually served exactly once."""
    env = Environment()
    resource = Resource(env, capacity=capacity)
    active = {"count": 0, "peak": 0}
    served = []

    def worker(env, tag, hold):
        with resource.request() as req:
            yield req
            active["count"] += 1
            active["peak"] = max(active["peak"], active["count"])
            yield env.timeout(hold)
            active["count"] -= 1
        served.append(tag)

    for tag, hold in enumerate(hold_times):
        env.process(worker(env, tag, hold))
    env.run()
    assert active["peak"] <= capacity
    assert sorted(served) == list(range(len(hold_times)))
    assert resource.count == 0
    assert resource.queue_length == 0


@given(st.lists(st.integers(), min_size=0, max_size=50))
def test_store_preserves_fifo_order(items):
    """Everything put into a Store comes out once, in order."""
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(st.integers(min_value=1, max_value=10),
       st.lists(st.integers(), min_size=0, max_size=60))
def test_drop_queue_loss_accounting(capacity, items):
    """offered == accepted + dropped, and accepted items survive in order."""
    env = Environment()
    dropped_items = []
    queue = DropQueue(env, capacity=capacity, on_drop=dropped_items.append)
    accepted_items = [item for item in items if queue.offer(item)]
    assert queue.offered == len(items)
    assert queue.accepted == len(accepted_items)
    assert queue.dropped == len(dropped_items)
    assert queue.accepted + queue.dropped == queue.offered
    # With no consumer, exactly the first `capacity` items are accepted.
    assert accepted_items == items[:capacity]
    assert dropped_items == items[capacity:]


@given(st.lists(st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
                min_size=1, max_size=20))
@settings(max_examples=50)
def test_process_results_are_deterministic(delay_list):
    """Two identical runs produce identical event traces."""

    def run_once():
        env = Environment()
        trace = []

        def sleeper(env, tag, delay):
            yield env.timeout(delay)
            trace.append((tag, env.now))

        for tag, delay in enumerate(delay_list):
            env.process(sleeper(env, tag, delay))
        env.run()
        return trace

    assert run_once() == run_once()
