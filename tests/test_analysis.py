"""Unit tests for the analysis package."""

import pytest

from repro.analysis import (
    DetectedMillibottleneck,
    Phases,
    QueuePeak,
    adaptive_threshold,
    align,
    coinciding_peaks,
    detect,
    drops_of,
    evenness,
    find_peaks,
    histogram,
    match_ground_truth,
    pearson,
    saturated_windows,
    segment,
    sparkline,
    table,
    tier_series,
    timeline,
)
from repro.errors import AnalysisError
from repro.metrics import TimeSeries
from repro.osmodel.pdflush import MillibottleneckRecord


def series(points, name="s"):
    return TimeSeries(name, points)


class TestFindPeaks:
    def test_single_peak(self):
        data = series([(0, 1), (1, 2), (2, 50), (3, 60), (4, 2), (5, 1)])
        peaks = find_peaks(data, threshold=10, server="apache1")
        assert len(peaks) == 1
        peak = peaks[0]
        assert peak.server == "apache1"
        assert peak.started_at == 2
        assert peak.ended_at == 4
        assert peak.peak_value == 60
        assert peak.peak_at == 3
        assert peak.duration == 2

    def test_multiple_peaks(self):
        data = series([(0, 0), (1, 20), (2, 0), (3, 30), (4, 0)])
        assert len(find_peaks(data, threshold=10)) == 2

    def test_peak_running_to_series_end(self):
        data = series([(0, 0), (1, 20), (2, 25)])
        peaks = find_peaks(data, threshold=10)
        assert len(peaks) == 1
        assert peaks[0].ended_at == 2

    def test_no_peaks(self):
        assert find_peaks(series([(0, 1), (1, 2)]), threshold=10) == []

    def test_validation(self):
        with pytest.raises(AnalysisError):
            find_peaks(series([(0, 1)]), threshold=-1)

    def test_overlap(self):
        a = QueuePeak("x", 1.0, 2.0, 10, 1.5)
        b = QueuePeak("y", 1.9, 3.0, 10, 2.0)
        c = QueuePeak("z", 2.5, 3.0, 10, 2.7)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert a.overlaps(c, slack=0.6)


class TestAdaptiveThreshold:
    def test_uses_multiple_of_mean(self):
        data = series([(i, 2) for i in range(100)])
        assert adaptive_threshold(data, multiplier=4.0) == 8.0

    def test_floor_applies(self):
        data = series([(0, 0.1), (1, 0.1)])
        assert adaptive_threshold(data, floor=5.0) == 5.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            adaptive_threshold(TimeSeries())


class TestTierSeries:
    def test_sums_matching_servers(self):
        queues = {
            "tomcat1": series([(0, 1), (1, 2)]),
            "tomcat2": series([(0, 3), (1, 4)]),
            "apache1": series([(0, 100), (1, 100)]),
        }
        tier = tier_series(queues, "tomcat")
        assert tier.values == [4, 6]

    def test_missing_prefix_raises(self):
        with pytest.raises(AnalysisError):
            tier_series({"apache1": series([(0, 1)])}, "tomcat")


class TestCoincidingPeaks:
    def test_pairs_overlapping(self):
        up = [QueuePeak("apache1", 1.0, 1.5, 50, 1.2)]
        down = [QueuePeak("tomcat1", 1.4, 1.8, 80, 1.5),
                QueuePeak("tomcat1", 5.0, 5.2, 60, 5.1)]
        pairs = coinciding_peaks(up, down)
        assert len(pairs) == 1
        assert pairs[0][1].started_at == 1.4


class TestSaturationDetection:
    def test_saturated_windows_merge(self):
        util = series([(0.00, 0.2), (0.05, 1.0), (0.10, 1.0),
                       (0.15, 0.3), (0.20, 0.96), (0.25, 0.1)])
        spans = saturated_windows(util, window=0.05)
        assert spans == [(0.05, pytest.approx(0.15)),
                         (0.20, pytest.approx(0.25))]

    def test_level_validation(self):
        with pytest.raises(AnalysisError):
            saturated_windows(series([(0, 1)]), window=0.05, level=0)

    def test_detect_full_chain(self):
        window = 0.05
        cpu = series([(0.00, 0.3), (0.05, 1.0), (0.10, 1.0), (0.15, 0.2)])
        iowait = series([(0.00, 0.0), (0.05, 1.0), (0.10, 1.0), (0.15, 0.0)])
        dirty = series([(0.00, 5e6), (0.05, 5e6), (0.10, 0.0), (0.15, 0.0)])
        found = detect("tomcat1", cpu, window, iowait=iowait, dirty=dirty)
        assert len(found) == 1
        detection = found[0]
        assert detection.io_induced
        assert detection.flush_induced
        assert detection.duration == pytest.approx(0.10)

    def test_detect_filters_sustained_saturation(self):
        cpu = series([(i * 0.05, 1.0) for i in range(100)])
        assert detect("x", cpu, 0.05, max_duration=1.0) == []

    def test_match_ground_truth(self):
        detected = [
            DetectedMillibottleneck("t1", 1.00, 1.15),
            DetectedMillibottleneck("t1", 7.00, 7.10),  # false positive
        ]
        records = [
            MillibottleneckRecord("t1", 1.02, 1.14, 1e6),
            MillibottleneckRecord("t1", 4.00, 4.10, 1e6),  # missed
        ]
        tp, fp, fn = match_ground_truth(detected, records)
        assert (tp, fp, fn) == (1, 1, 1)


class TestCorrelation:
    def test_pearson_perfect(self):
        a = series([(i * 0.05, i) for i in range(20)])
        b = series([(i * 0.05, 2 * i + 1) for i in range(20)])
        assert pearson(a, b) == pytest.approx(1.0)

    def test_pearson_constant_is_zero(self):
        a = series([(i * 0.05, 1.0) for i in range(20)])
        b = series([(i * 0.05, i) for i in range(20)])
        assert pearson(a, b) == 0.0

    def test_align_trims_to_overlap(self):
        a = series([(0.0, 1), (0.05, 2), (0.10, 3)])
        b = series([(0.05, 9), (0.10, 8), (0.15, 7)])
        x, y = align(a, b)
        assert list(x) == [2, 3]
        assert list(y) == [9, 8]

    def test_align_validation(self):
        with pytest.raises(AnalysisError):
            align(TimeSeries(), series([(0, 1)]))
        with pytest.raises(AnalysisError):
            align(series([(0, 1)]), series([(5, 1)]))

    def test_drops_of(self):
        dirty = series([(0, 10), (1, 12), (2, 4), (3, 4)])
        drops = drops_of(dirty)
        assert drops.values == [0.0, 8.0, 0.0]


class TestPhases:
    def make_record(self):
        return MillibottleneckRecord("tomcat1", 5.0, 5.2, 1e6)

    def test_segment_windows(self):
        phases = segment(self.make_record(), lead=0.3, recovery=0.2,
                         tail=0.1)
        assert phases.normal_before == (4.7, 5.0)
        assert phases.millibottleneck == (5.0, 5.2)
        assert phases.recovery == (5.2, pytest.approx(5.4))
        assert phases.normal_after == (pytest.approx(5.4),
                                       pytest.approx(5.5))
        assert set(phases.as_dict()) == {
            "normal_before", "millibottleneck", "recovery", "normal_after"}

    def test_segment_clamps_at_zero(self):
        record = MillibottleneckRecord("t", 0.1, 0.2, 1e6)
        phases = segment(record, lead=0.5)
        assert phases.normal_before[0] == 0.0

    def test_segment_validation(self):
        with pytest.raises(AnalysisError):
            segment(self.make_record(), lead=0)

    def test_evenness(self):
        assert evenness({"a": 10, "b": 10}) == 1.0
        assert evenness({"a": 30, "b": 10}) == pytest.approx(1.5)
        with pytest.raises(AnalysisError):
            evenness({})
        with pytest.raises(AnalysisError):
            evenness({"a": 0})


class TestAsciiPlot:
    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "█"

    def test_sparkline_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == "  "

    def test_timeline_contains_label_and_max(self):
        data = series([(i * 0.1, i) for i in range(200)], name="queue")
        text = timeline(data, width=40, label="tomcat1")
        assert "tomcat1" in text
        assert "max=199" in text

    def test_timeline_empty(self):
        assert "(empty)" in timeline(TimeSeries("x"))

    def test_timeline_validation(self):
        with pytest.raises(AnalysisError):
            timeline(series([(0, 1)]), width=2)

    def test_histogram(self):
        text = histogram([(0.001, 0.01, 50), (0.01, 0.1, 0),
                          (1.0, 2.0, 5)])
        assert "50" in text
        assert text.count("\n") == 1  # zero bucket skipped

    def test_table_alignment_and_validation(self):
        text = table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        with pytest.raises(AnalysisError):
            table(["a"], [[1, 2]])
