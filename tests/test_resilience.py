"""Tests for the remedy layer: retry, hedging, breakers, probes.

Unit tests pin each remedy's state machine; the integration tests wire
them through :func:`build_system` / :class:`ExperimentRunner` and check
they actually change outcomes under injected faults.
"""

import numpy as np
import pytest

from repro.cluster import ScaleProfile, SlowFault, build_system
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.core import MemberState, get_bundle
from repro.errors import ConfigurationError
from repro.resilience import (
    RESILIENCE_BUNDLES,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HedgePolicy,
    HedgingDispatcher,
    ProbeConfig,
    ResilienceConfig,
    RetryPolicy,
    get_resilience,
)
from repro.sim import Environment
from repro.workload import Request, get_interaction


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(request_timeout=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff=0.2, backoff_cap=0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0,
                             backoff_cap=0.35, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.backoff_before(1, rng) == pytest.approx(0.1)
        assert policy.backoff_before(2, rng) == pytest.approx(0.2)
        assert policy.backoff_before(3, rng) == pytest.approx(0.35)
        assert policy.backoff_before(9, rng) == pytest.approx(0.35)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=1.0,
                             backoff_cap=0.1, jitter=0.5)
        rng = np.random.default_rng(1)
        draws = [policy.backoff_before(1, rng) for _ in range(200)]
        assert all(0.05 <= b <= 0.15 for b in draws)
        assert max(draws) > 0.12 and min(draws) < 0.08

    def test_retry_index_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_before(0, np.random.default_rng(0))


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(open_duration=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(half_open_trials=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(close_after=3, half_open_trials=2)


class TestCircuitBreaker:
    def make(self, env, **kwargs):
        defaults = dict(failure_threshold=3, open_duration=0.5,
                        half_open_trials=2, close_after=1)
        defaults.update(kwargs)
        return CircuitBreaker(env, BreakerConfig(**defaults))

    def test_trips_after_consecutive_failures(self):
        env = Environment()
        breaker = self.make(env)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1

    def test_success_resets_failure_streak(self):
        env = Environment()
        breaker = self.make(env)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_rejects_then_cools_down(self):
        env = Environment()
        breaker = self.make(env)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.rejections == 1
        assert not breaker.admits(env.now)
        env.run(until=0.6)
        # admits() is side-effect-free: still OPEN, but pickable.
        assert breaker.admits(env.now)
        assert breaker.state is BreakerState.OPEN
        # allow() does the transition and meters the trial.
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_trials_are_metered(self):
        env = Environment()
        breaker = self.make(env, half_open_trials=2)
        for _ in range(3):
            breaker.record_failure()
        env.run(until=0.6)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # batch exhausted, outcomes pending
        assert breaker.rejections == 1

    def test_half_open_success_closes(self):
        env = Environment()
        breaker = self.make(env, close_after=1)
        for _ in range(3):
            breaker.record_failure()
        env.run(until=0.6)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.closes == 1
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        env = Environment()
        breaker = self.make(env)
        for _ in range(3):
            breaker.record_failure()
        env.run(until=0.6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()

    def test_lost_trial_outcomes_admit_fresh_batch(self):
        env = Environment()
        breaker = self.make(env, half_open_trials=1)
        for _ in range(3):
            breaker.record_failure()
        env.run(until=0.6)
        assert breaker.allow()  # the trial whose outcome gets lost
        assert not breaker.allow()
        env.run(until=1.2)  # another open_duration with no verdict
        assert breaker.admits(env.now)
        assert breaker.allow()

    def test_stale_success_while_open_is_ignored(self):
        env = Environment()
        breaker = self.make(env)
        for _ in range(3):
            breaker.record_failure()
        breaker.record_success()
        assert breaker.state is BreakerState.OPEN


class FakeBalancer:
    """Inner dispatcher double for hedging: scripted per-call delays.

    Mirrors ``LoadBalancer.dispatch``'s contract: a process generator
    that annotates ``served_by``/``dispatched_at``, returns the request,
    and honours cooperative cancellation between scheduling rounds.
    """

    name = "lb"

    def __init__(self, env, delays):
        self.env = env
        self.delays = list(delays)
        self.calls = 0

    def dispatch(self, request):
        self.calls += 1
        backend = "tomcat{}".format(self.calls)
        remaining = self.delays[self.calls - 1]
        while remaining > 0:
            if request.cancelled:
                return request
            step = min(0.01, remaining)
            yield self.env.timeout(step)
            remaining -= step
        request.served_by = backend
        request.dispatched_at = self.env.now
        return request


class TestHedgingDispatcher:
    def make_request(self, env, request_id=1):
        return Request(env, request_id, get_interaction("ViewStory"), 0)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(delay=0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(max_hedges=0)

    def test_fast_primary_never_hedges(self):
        env = Environment()
        inner = FakeBalancer(env, delays=[0.05])
        hedger = HedgingDispatcher(env, inner, HedgePolicy(delay=0.2))
        request = self.make_request(env)
        process = env.process(hedger.dispatch(request))
        env.run()
        assert process.value is request
        assert hedger.hedges_issued == 0
        assert inner.calls == 1
        assert request.served_by == "tomcat1"

    def test_hedge_wins_and_loser_is_cancelled(self):
        env = Environment()
        inner = FakeBalancer(env, delays=[1.0, 0.05])
        hedger = HedgingDispatcher(env, inner, HedgePolicy(delay=0.2))
        request = self.make_request(env, request_id=7)
        process = env.process(hedger.dispatch(request))
        env.run()
        assert process.value is request
        assert hedger.hedges_issued == 1
        assert hedger.hedge_wins == 1
        assert hedger.cancellations == 1
        # The winning clone's annotations were copied back.
        assert request.served_by == "tomcat2"
        assert request.dispatched_at == pytest.approx(0.25, abs=0.02)
        # The primary was told to stop and obeyed.
        assert request.cancelled is False or request.served_by == "tomcat2"
        assert inner.calls == 2

    def test_primary_win_after_hedge_issued(self):
        env = Environment()
        inner = FakeBalancer(env, delays=[0.3, 5.0])
        hedger = HedgingDispatcher(env, inner, HedgePolicy(delay=0.2))
        request = self.make_request(env)
        env.process(hedger.dispatch(request))
        env.run(until=2.0)
        assert hedger.hedges_issued == 1
        assert hedger.hedge_wins == 0
        assert hedger.cancellations == 1
        assert request.served_by == "tomcat1"

    def test_max_hedges_bounds_copies(self):
        env = Environment()
        inner = FakeBalancer(env, delays=[0.5, 0.5, 0.5, 0.5])
        hedger = HedgingDispatcher(env, inner,
                                   HedgePolicy(delay=0.1, max_hedges=2))
        request = self.make_request(env)
        env.process(hedger.dispatch(request))
        env.run(until=3.0)
        assert hedger.hedges_issued == 2
        assert inner.calls == 3


class TestProbeConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProbeConfig(interval=0)
        with pytest.raises(ConfigurationError):
            ProbeConfig(timeout=0)
        with pytest.raises(ConfigurationError):
            ProbeConfig(fail_threshold=0)
        with pytest.raises(ConfigurationError):
            ProbeConfig(jitter=-0.1)


class TestHealthProberIntegration:
    def build(self, env, resilience):
        return build_system(
            env, ScaleProfile.smoke(),
            bundle=get_bundle("current_load_modified"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=False,
            resilience=resilience)

    def test_probes_eject_crashed_member_without_traffic(self):
        env = Environment()
        system = self.build(env, ResilienceConfig(probes=ProbeConfig(
            interval=0.2, timeout=0.1, fail_threshold=3)))
        assert len(system.probers) == len(system.balancers)
        system.tomcats[0].crash()
        env.run(until=2.0)
        # No client traffic at all: probes alone marked it Error.
        for balancer in system.balancers:
            assert balancer.members[0].state is MemberState.ERROR
        assert all(p.ejections >= 1 for p in system.probers)

    def test_probe_recovery_beats_error_recovery_timer(self):
        env = Environment()
        system = self.build(env, ResilienceConfig(probes=ProbeConfig(
            interval=0.2, timeout=0.1, fail_threshold=2)))
        system.tomcats[0].crash()
        env.run(until=2.0)
        for balancer in system.balancers:
            assert balancer.members[0].state is MemberState.ERROR
        system.tomcats[0].recover()
        # Default error_recovery is 10 s; the next successful probe
        # restores the member long before that.
        env.run(until=3.0)
        for balancer in system.balancers:
            assert balancer.members[0].state is MemberState.AVAILABLE
        assert all(p.recoveries >= 1 for p in system.probers)

    def test_probes_feed_member_breakers(self):
        env = Environment()
        system = self.build(env, ResilienceConfig(
            breaker=BreakerConfig(failure_threshold=2),
            probes=ProbeConfig(interval=0.2, timeout=0.1,
                               fail_threshold=100)))
        system.tomcats[0].crash()
        env.run(until=2.0)
        for balancer in system.balancers:
            breaker = balancer.members[0].breaker
            assert breaker is not None
            assert breaker.opens >= 1


class TestWiring:
    def test_get_resilience_and_bundles(self):
        assert not get_resilience("none").enabled
        assert get_resilience("full").enabled
        assert set(RESILIENCE_BUNDLES) >= {
            "none", "retry", "hedge", "breaker", "probes",
            "breaker+probes", "full"}
        with pytest.raises(ConfigurationError):
            get_resilience("bogus")

    def test_full_wiring_installs_every_remedy(self):
        env = Environment()
        system = build_system(
            env, ScaleProfile.smoke(),
            bundle=get_bundle("original_total_request"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=False,
            resilience=get_resilience("full"))
        assert len(system.hedgers) == len(system.balancers)
        assert len(system.probers) == len(system.balancers)
        for apache, hedger in zip(system.apaches, system.hedgers):
            assert apache.dispatcher is hedger
        for balancer in system.balancers:
            assert balancer.mechanism.name.endswith("+breaker")
            assert all(m.breaker is not None for m in balancer.members)

    def test_no_resilience_leaves_system_untouched(self):
        env = Environment()
        system = build_system(
            env, ScaleProfile.smoke(),
            bundle=get_bundle("original_total_request"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=False,
            resilience=None)
        assert system.hedgers == [] and system.probers == []
        for apache, balancer in zip(system.apaches, system.balancers):
            assert apache.dispatcher is balancer
            assert all(m.breaker is None for m in balancer.members)

    def test_breaker_count_must_match_members(self):
        env = Environment()
        system = build_system(
            env, ScaleProfile.smoke(),
            bundle=get_bundle("original_total_request"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=False)
        with pytest.raises(ConfigurationError):
            system.balancers[0].install_breakers([CircuitBreaker(env)])


def run_cell(resilience, faults=(), duration=6.0):
    config = ExperimentConfig(
        bundle_key="original_total_request",
        profile=ScaleProfile.smoke(),
        duration=duration, seed=42,
        trace_lb_values=False, trace_dispatches=False,
        faults=tuple(faults), resilience=resilience)
    return ExperimentRunner(config).run()


SLOW = SlowFault("tomcat1", at=1.5, duration=2.5, factor=60.0)


class TestRemediesEndToEnd:
    def test_client_retry_fires_under_fail_slow(self):
        result = run_cell(ResilienceConfig(retry=RetryPolicy(
            request_timeout=0.3, max_attempts=3)), faults=[SLOW])
        assert result.population.retries_issued > 0
        assert result.retry_amplification() > 1.05
        baseline = run_cell(None, faults=[SLOW])
        # Retrying abandons stuck attempts: far fewer VLRT responses.
        assert (result.stats().vlrt_fraction
                < baseline.stats().vlrt_fraction)

    def test_hedging_fires_and_reduces_tail(self):
        result = run_cell(ResilienceConfig(hedge=HedgePolicy(delay=0.2)),
                          faults=[SLOW])
        assert result.hedges_issued() > 0
        hedger_wins = sum(h.hedge_wins for h in result.system.hedgers)
        assert hedger_wins > 0
        baseline = run_cell(None, faults=[SLOW])
        assert (result.stats().vlrt_fraction
                < baseline.stats().vlrt_fraction)

    def test_retry_amplification_is_one_without_remedies(self):
        result = run_cell(None)
        assert result.retry_amplification() == pytest.approx(1.0,
                                                             abs=0.02)
        assert result.availability() == pytest.approx(1.0)

    def test_summary_mirrors_result_metrics(self):
        from repro.parallel import summarize

        result = run_cell(ResilienceConfig(retry=RetryPolicy(
            request_timeout=0.3)), faults=[SLOW])
        summary = summarize(result)
        assert summary.availability() == pytest.approx(
            result.availability())
        assert summary.retry_amplification() == pytest.approx(
            result.retry_amplification())
        assert summary.goodput() == pytest.approx(result.goodput())
        assert summary.error_responses() == result.error_responses()
        assert summary.fault_count == 1
