"""Declarative topologies: spec validation, builder equivalence, end-to-end.

Three layers of protection for the spec-driven builder:

* **golden equivalence** — :meth:`TopologySpec.classic` built through
  :func:`build_from_spec` reproduces the committed full-stack golden
  trace (seed 99) *and* matches the hand-coded ``build_system`` path
  event-for-event at the paper seed, so "the classic topology is now
  data" costs nothing in determinism;
* **eager validation** — malformed specs (zero replicas, unknown policy
  bundles, empty tier lists, mis-ordered service models, inline
  fan-out) fail at construction with ``ConfigurationError``\\ s that
  name the offending field, never at build or run time;
* **new shapes actually run** — the replicated-DB and 4-tier built-ins
  run end-to-end through :class:`ExperimentRunner` with the full
  conservation/accounting invariant suite holding, millibottlenecks
  firing, and every replica of every tier taking traffic.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.cluster.spec import (
    BUILTIN_TOPOLOGIES,
    BoundarySpec,
    FlushSpec,
    TierSpec,
    TopologySpec,
    WorkloadSpec,
    get_topology,
)
from repro.cluster.topology import build_from_spec, build_system
from repro.core.remedies import get_bundle
from repro.errors import ConfigurationError
from repro.sim.core import Environment

from tests.test_golden_trace import SCENARIO_EVENTS, SCENARIO_SHA256, trace_hash
from tests.test_invariants import assert_all_invariants


def traced_run(config):
    """Run one experiment with the kernel trace hook installed."""
    env = Environment()
    records = []
    env.trace = lambda when, event: records.append(
        (when, type(event).__name__))
    ExperimentRunner(config).run(env=env)
    return records


def frontend(name="web", **kwargs):
    return TierSpec(name=name, service="frontend", **kwargs)


def worker(name="app", **kwargs):
    return TierSpec(name=name, service="worker", **kwargs)


def pooled(name="db", **kwargs):
    return TierSpec(name=name, service="pooled", **kwargs)


# -- golden equivalence -----------------------------------------------------

class TestClassicEquivalence:
    def test_spec_path_reproduces_committed_golden_trace(self):
        """The seed-99 full-stack golden trace, built from the spec."""
        profile = replace(ScaleProfile.smoke(), clients=120,
                          flush_threshold_bytes=32e3)
        records = traced_run(ExperimentConfig(
            bundle_key="current_load", profile=profile,
            topology=TopologySpec.classic(profile),
            duration=6.0, seed=99,
            trace_lb_values=False, trace_dispatches=False))
        assert len(records) == SCENARIO_EVENTS
        assert trace_hash(records) == SCENARIO_SHA256

    def test_spec_path_matches_classic_path_event_for_event(self):
        """Same seed, both builders: identical full event schedules."""
        profile = ScaleProfile.smoke()
        base = dict(bundle_key="current_load", profile=profile,
                    duration=4.0, seed=20170601,
                    trace_lb_values=False, trace_dispatches=False)
        hand_coded = traced_run(ExperimentConfig(**base))
        from_spec = traced_run(ExperimentConfig(
            topology=TopologySpec.classic(profile), **base))
        assert hand_coded == from_spec

    def test_spec_builder_wires_the_fig14_topology(self):
        env = Environment()
        system = build_from_spec(
            env, TopologySpec.classic(),
            default_bundle=get_bundle("current_load"),
            rng=np.random.default_rng(0))
        assert system.tier_names == ("apache", "tomcat", "mysql")
        assert [s.name for s in system.tiers["apache"]] == [
            "apache1", "apache2", "apache3", "apache4"]
        assert system.apaches == system.tiers["apache"]
        assert system.tomcats == system.tiers["tomcat"]
        assert system.mysql is system.tiers["mysql"][0]
        assert len(system.balancers) == 4
        assert system.spec is not None
        assert system.spec.name == "classic"

    def test_structurally_equivalent_to_build_system(self):
        spec_system = build_from_spec(
            Environment(), TopologySpec.classic(),
            default_bundle=get_bundle("current_load"),
            rng=np.random.default_rng(0))
        classic_system = build_system(
            Environment(), ScaleProfile(),
            bundle=get_bundle("current_load"),
            rng=np.random.default_rng(0))
        assert ([s.name for s in spec_system.servers]
                == [s.name for s in classic_system.servers])
        assert ([h.name for h in spec_system.hosts]
                == [h.name for h in classic_system.hosts])
        assert (spec_system.tomcats[0].max_threads
                == classic_system.tomcats[0].max_threads)
        assert (spec_system.mysql.connections.capacity
                == classic_system.mysql.connections.capacity)

    def test_balanced_boundary_without_bundle_needs_a_default(self):
        with pytest.raises(ConfigurationError):
            build_from_spec(Environment(), TopologySpec.classic(),
                            rng=np.random.default_rng(0))


# -- spec validation --------------------------------------------------------

class TestTierSpecValidation:
    def test_zero_replicas(self):
        with pytest.raises(ConfigurationError):
            worker(replicas=0)

    def test_unknown_service_model(self):
        with pytest.raises(ConfigurationError):
            TierSpec(name="x", service="mainframe")

    def test_capacity_cores_backlog_bounds(self):
        for kwargs in ({"capacity": 0}, {"cores": 0}, {"backlog": 0},
                       {"disk_bandwidth": -1.0}):
            with pytest.raises(ConfigurationError):
                worker(**kwargs)

    def test_empty_name(self):
        with pytest.raises(ConfigurationError):
            TierSpec(name="", service="worker")

    def test_default_cpu_source_follows_service_model(self):
        assert frontend().effective_cpu_source == "apache_cpu"
        assert worker().effective_cpu_source == "tomcat_cpu"
        assert pooled().effective_cpu_source == "mysql_cpu"
        assert worker(cpu_source="mysql_cpu").effective_cpu_source == \
            "mysql_cpu"

    def test_flush_spec_bounds(self):
        for kwargs in ({"interval": 0}, {"threshold_bytes": 0},
                       {"stagger": -1}, {"phase": -0.5}):
            with pytest.raises(ConfigurationError):
                FlushSpec(**kwargs)

    def test_flush_profile_staggers_replicas(self):
        flush = FlushSpec(interval=4.0, stagger=1.0, phase=0.5)
        assert [flush.profile(i).phase for i in range(3)] == [0.5, 1.5, 2.5]


class TestBoundarySpecValidation:
    def test_unknown_policy_bundle_name(self):
        with pytest.raises(ConfigurationError):
            BoundarySpec(bundle="nope")

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            BoundarySpec(mode="teleport")

    def test_unknown_resilience_bundle(self):
        with pytest.raises(ConfigurationError):
            BoundarySpec(resilience="nope")

    def test_non_balanced_modes_take_no_bundles(self):
        with pytest.raises(ConfigurationError):
            BoundarySpec(mode="direct", bundle="current_load")
        with pytest.raises(ConfigurationError):
            BoundarySpec(mode="inline", resilience="paper_remedies")

    def test_pool_size_bound(self):
        with pytest.raises(ConfigurationError):
            BoundarySpec(pool_size=0)


class TestTopologySpecValidation:
    def test_empty_tier_list(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(name="x", tiers=(), boundaries=())

    def test_single_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(name="x", tiers=(frontend(),), boundaries=())

    def test_duplicate_tier_names(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(name="x",
                         tiers=(frontend("web"), worker("web")),
                         boundaries=(BoundarySpec(),))

    def test_boundary_count_must_match(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(name="x", tiers=(frontend(), worker()),
                         boundaries=())

    def test_first_tier_must_be_frontend(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(name="x", tiers=(worker(), pooled()),
                         boundaries=(BoundarySpec(),))

    def test_frontend_only_first(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(name="x",
                         tiers=(frontend("a"), frontend("b")),
                         boundaries=(BoundarySpec(),))

    def test_pooled_must_be_last(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(
                name="x",
                tiers=(frontend(), pooled("cache"), worker()),
                boundaries=(BoundarySpec(), BoundarySpec()))

    def test_inline_boundary_cannot_fan_out(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(
                name="x",
                tiers=(frontend(), worker(), pooled(replicas=2)),
                boundaries=(BoundarySpec(),
                            BoundarySpec(mode="inline")))

    def test_inline_needs_worker_upstream(self):
        with pytest.raises(ConfigurationError):
            TopologySpec(
                name="x", tiers=(frontend(), pooled()),
                boundaries=(BoundarySpec(mode="inline"),))

    def test_workload_bounds(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(clients=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(think_time=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(ramp_up=-1)


class TestSerialisation:
    @pytest.mark.parametrize("key", sorted(BUILTIN_TOPOLOGIES))
    def test_round_trip_through_dict_and_json(self, key):
        spec = get_topology(key)
        assert TopologySpec.from_dict(spec.to_dict()) == spec
        assert TopologySpec.from_json(spec.to_json()) == spec

    def test_unknown_topology_field_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec.from_dict({"name": "x", "tiers": [], "shape": "Y"})

    def test_unknown_tier_field_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec.from_dict({
                "name": "x",
                "tiers": [{"name": "web", "service": "frontend",
                           "max_clients": 8}]})

    def test_unknown_boundary_field_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec.from_dict({
                "name": "x",
                "tiers": [{"name": "web", "service": "frontend"},
                          {"name": "app", "service": "worker"}],
                "boundaries": [{"policy": "current_load"}]})

    def test_missing_boundaries_default_to_balanced(self):
        spec = TopologySpec.from_dict({
            "name": "x",
            "tiers": [{"name": "web", "service": "frontend"},
                      {"name": "app", "service": "worker"}]})
        assert spec.boundaries == (BoundarySpec(mode="balanced"),)

    def test_invalid_json_named(self):
        with pytest.raises(ConfigurationError):
            TopologySpec.from_json("{not json")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(get_topology("replicated_db").to_json())
        assert TopologySpec.load(path) == get_topology("replicated_db")

    def test_get_topology_unknown(self):
        with pytest.raises(ConfigurationError):
            get_topology("nope")

    def test_tier_named(self):
        spec = get_topology("four_tier")
        assert spec.tier_named("backend").flush is not None
        with pytest.raises(ConfigurationError):
            spec.tier_named("nope")


# -- new shapes run end-to-end ---------------------------------------------

def run_topology(key, duration=4.0, seed=7):
    spec = get_topology(key)
    config = ExperimentConfig(
        profile=spec.scale_profile(), topology=spec,
        duration=duration, seed=seed,
        trace_lb_values=False, trace_dispatches=False)
    return ExperimentRunner(config).run()


class TestReplicatedDbTopology:
    def test_runs_with_invariants_and_balanced_db_traffic(self):
        result = run_topology("replicated_db")
        assert_all_invariants(result)
        assert result.stats().count > 0
        # Both balancing layers exist: one LB per Apache *and* per Tomcat.
        assert len(result.system.balancers) == 4
        names = {balancer.name for balancer in result.system.balancers}
        assert {"apache1.lb", "apache2.lb",
                "tomcat1.lb", "tomcat2.lb"} == names
        # Every MySQL replica took traffic through its own balancer.
        for replica in result.system.tiers["mysql"]:
            assert replica.requests_completed > 0, replica.name

    def test_app_tier_millibottlenecks_recorded(self):
        # 6 s horizon: the first flush stall lands after ~4 s.
        result = run_topology("replicated_db", duration=6.0)
        stalled = {record.host for record in
                   result.system.millibottleneck_records()}
        assert any(host.startswith("tomcat") for host in stalled)


class TestFourTierTopology:
    def test_runs_with_invariants_across_four_tiers(self):
        result = run_topology("four_tier")
        assert_all_invariants(result)
        assert result.stats().count > 0
        assert result.system.tier_names == ("web", "service", "backend", "db")
        # Traffic reaches every replica of every tier.
        for tier_name in result.system.tier_names:
            for server in result.system.tiers[tier_name]:
                assert server.requests_completed > 0, server.name

    def test_mid_tier_stall_cascades_to_clients(self):
        result = run_topology("four_tier", duration=6.0)
        stalled = {record.host for record in
                   result.system.millibottleneck_records()}
        assert stalled and all(host.startswith("backend")
                               for host in stalled)


# -- CLI --------------------------------------------------------------------

class TestTopologyCli:
    def test_validate_builtin_and_file(self, tmp_path, capsys):
        path = tmp_path / "custom.json"
        path.write_text(get_topology("replicated_db").to_json())
        assert main(["topology", "validate", "four_tier", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK four_tier (4 tiers, 3 boundaries)" in out
        assert "OK replicated_db (3 tiers, 2 boundaries)" in out

    def test_validate_bad_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "name": "bad",
            "tiers": [{"name": "web", "service": "frontend"},
                      {"name": "app", "service": "worker", "replicas": 0}]}))
        assert main(["topology", "validate", str(path)]) == 2
        assert "replicas" in capsys.readouterr().err

    def test_show_renders_the_chain(self, capsys):
        assert main(["topology", "show", "four_tier"]) == 0
        out = capsys.readouterr().out
        assert "backend" in out
        assert "inline" in out
        assert "bundle=current_load" in out

    def test_unknown_reference_exits_2(self, capsys):
        assert main(["topology", "show", "nope"]) == 2
        assert "no topology spec file" in capsys.readouterr().err

    def test_run_topology_from_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(get_topology("replicated_db").to_json())
        assert main(["run", "--topology", str(path),
                     "--duration", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "topology:replicated_db" in out
        assert "avg RT" in out

    def test_run_rejects_scenario_plus_topology(self, capsys):
        assert main(["run", "table1/current_load",
                     "--topology", "classic"]) == 2

    def test_run_requires_some_target(self, capsys):
        assert main(["run"]) == 2
