"""Unit tests for configuration, topology, scenarios, and the CLI."""

import pytest

from repro.cluster import (
    ExperimentConfig,
    HardwareConfig,
    PaperTierConfig,
    ScaleProfile,
    Scenario,
    SoftwareStack,
    build_system,
)
from repro.cluster.scenarios import (
    baseline_no_millibottleneck,
    policy_run,
    single_node_millibottleneck,
    table1_run,
)
from repro.core import get_bundle
from repro.errors import ConfigurationError
from repro.sim import Environment


class TestPaperConstants:
    def test_table2_software_stack(self):
        stack = SoftwareStack()
        assert "2.2.22" in stack.web_server
        assert "5.5.17" in stack.application_server
        assert "mod_jk" in stack.connector

    def test_table2_hardware(self):
        hardware = HardwareConfig()
        assert hardware.cores == 4
        assert hardware.memory_gb == 12

    def test_table3_values(self):
        tiers = PaperTierConfig()
        assert tiers.apache_max_clients == 200
        assert tiers.worker_connection_pool_size == 25
        assert tiers.tomcat_max_threads == 210
        assert tiers.db_connections_total == 48


class TestScaleProfile:
    def test_default_preserves_worker_to_pool_ratio(self):
        profile = ScaleProfile()
        paper = PaperTierConfig()
        ours = profile.apache_max_clients / profile.connection_pool_size
        theirs = (paper.apache_threads_per_child
                  / paper.worker_connection_pool_size)
        assert ours == pytest.approx(theirs)

    def test_paper_profile_matches_table3(self):
        profile = ScaleProfile.paper()
        assert profile.clients == 70000
        assert profile.apache_max_clients == 200
        assert profile.tomcat_max_threads == 210
        assert profile.connection_pool_size == 25

    def test_topology_matches_fig14(self):
        profile = ScaleProfile()
        assert profile.apache_count == 4
        assert profile.tomcat_count == 4

    def test_flush_profiles_staggered(self):
        profile = ScaleProfile()
        phases = [profile.tomcat_flush_profile(i).phase for i in range(4)]
        assert phases == [0.0, 1.0, 2.0, 3.0]

    def test_scaled_factor(self):
        profile = ScaleProfile().scaled(0.5)
        assert profile.clients == 1000
        assert profile.apache_max_clients == 12
        with pytest.raises(ConfigurationError):
            ScaleProfile().scaled(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScaleProfile(apache_count=0)
        with pytest.raises(ConfigurationError):
            ScaleProfile(clients=0)
        with pytest.raises(ConfigurationError):
            ScaleProfile(think_time=0)


class TestBuildSystem:
    def test_builds_fig14_topology(self):
        env = Environment()
        system = build_system(env, ScaleProfile(),
                              bundle=get_bundle("current_load"))
        assert len(system.apaches) == 4
        assert len(system.tomcats) == 4
        assert len(system.balancers) == 4
        assert len(system.hosts) == 9
        assert {server.name for server in system.servers} == {
            "apache1", "apache2", "apache3", "apache4",
            "tomcat1", "tomcat2", "tomcat3", "tomcat4", "mysql1"}

    def test_balancers_are_independent(self):
        env = Environment()
        system = build_system(env, ScaleProfile(),
                              bundle=get_bundle("current_load"))
        policies = {id(balancer.policy) for balancer in system.balancers}
        assert len(policies) == 4  # one policy instance per Apache

    def test_flush_daemons_follow_flags(self):
        env = Environment()
        system = build_system(env, ScaleProfile(),
                              bundle=get_bundle("current_load"),
                              tomcat_millibottlenecks=False)
        assert all(not t.host.flush_profile.enabled for t in system.tomcats)
        system2 = build_system(Environment(), ScaleProfile(),
                               bundle=get_bundle("current_load"),
                               tomcat_millibottlenecks=True)
        assert all(t.host.flush_profile.enabled for t in system2.tomcats)

    def test_no_balancer_round_robins_all_replicas(self):
        system = build_system(Environment(), ScaleProfile(),
                              use_balancer=False)
        assert len(system.direct_dispatchers) == 4
        assert not system.balancers
        for dispatcher in system.direct_dispatchers:
            assert [backend.name for backend in dispatcher.backends] == [
                "tomcat1", "tomcat2", "tomcat3", "tomcat4"]
        system2 = build_system(Environment(), ScaleProfile.single_node(),
                               use_balancer=False)
        assert system2.direct_dispatchers
        assert not system2.balancers

    def test_requires_bundle_or_factories(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            build_system(env, ScaleProfile())

    def test_server_named(self):
        system = build_system(Environment(), ScaleProfile(),
                              bundle=get_bundle("current_load"))
        assert system.server_named("mysql1").name == "mysql1"
        with pytest.raises(ConfigurationError):
            system.server_named("nope")


class TestScenarios:
    def test_registry_covers_figures_and_table(self):
        keys = Scenario.keys()
        assert "fig1/baseline" in keys
        assert "fig2/anatomy" in keys
        assert "table1/original_total_request" in keys
        assert "run/current_load" in keys

    def test_named_returns_config(self):
        config = Scenario.named("table1/current_load")
        assert isinstance(config, ExperimentConfig)
        assert config.bundle_key == "current_load"
        assert not config.trace_lb_values  # table runs skip tracing

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            Scenario.named("nope")

    def test_baseline_disables_millibottlenecks(self):
        config = baseline_no_millibottleneck()
        assert not config.tomcat_millibottlenecks
        assert not config.apache_millibottlenecks

    def test_single_node_uses_direct_dispatch(self):
        config = single_node_millibottleneck()
        assert not config.use_balancer
        assert config.apache_millibottlenecks
        assert config.profile.apache_count == 1

    def test_policy_run_traces(self):
        config = policy_run("current_load")
        assert config.trace_lb_values
        with pytest.raises(ConfigurationError):
            policy_run("nope")

    def test_experiment_config_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(sample_window=0)


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1/current_load" in out

    def test_run_scenario(self, capsys):
        from repro.cli import main
        assert main(["run", "table1/current_load",
                     "--duration", "2", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "current_load" in out
        assert "avg RT" in out


class TestPaperScaleProfile:
    def test_paper_profile_builds_a_full_system(self):
        """The full-scale Table III profile wires up (running it is for
        the patient, but construction must be cheap and correct)."""
        from repro.sim import Environment

        env = Environment()
        system = build_system(Environment(), ScaleProfile.paper(),
                              bundle=get_bundle("original_total_request"))
        assert system.apaches[0].max_clients == 200
        assert system.tomcats[0].max_threads == 210
        assert system.mysql.connections.capacity == 48
        assert system.balancers[0].members[0].pool.capacity == 25
