"""Unit tests for the OS substrate: Disk, PageCache, Cpu, FlushDaemon, Host."""

import pytest

from repro.errors import ConfigurationError
from repro.osmodel import (
    Cpu,
    Disk,
    Host,
    MillibottleneckProfile,
    PageCache,
)
from repro.sim import Environment


class TestDisk:
    def test_write_duration(self):
        env = Environment()
        disk = Disk(env, write_bandwidth=100e6)
        assert disk.write_duration(50e6) == pytest.approx(0.5)
        assert disk.write_duration(0) == 0.0

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Disk(env, write_bandwidth=0)
        disk = Disk(env)
        with pytest.raises(ValueError):
            disk.write_duration(-1)

    def test_write_occupies_channel_serially(self):
        env = Environment()
        disk = Disk(env, write_bandwidth=1e6)
        done = []

        def writer(env, tag):
            yield from disk.write(1e6)  # 1 second each
            done.append((tag, env.now))

        env.process(writer(env, "a"))
        env.process(writer(env, "b"))
        env.run()
        assert done == [("a", 1.0), ("b", 2.0)]
        assert disk.bytes_written == pytest.approx(2e6)
        assert disk.writes_completed == 2

    def test_busy_flag(self):
        env = Environment()
        disk = Disk(env, write_bandwidth=1e6)
        seen = []

        def writer(env):
            yield from disk.write(1e6)

        def prober(env):
            yield env.timeout(0.5)
            seen.append(disk.busy)
            yield env.timeout(1.0)
            seen.append(disk.busy)

        env.process(writer(env))
        env.process(prober(env))
        env.run()
        assert seen == [True, False]


class TestPageCache:
    def test_write_accumulates_dirty_bytes(self):
        cache = PageCache(Environment())
        cache.write(100)
        cache.write(200)
        assert cache.dirty_bytes == 300
        assert cache.total_written == 300

    def test_take_all_resets(self):
        cache = PageCache(Environment())
        cache.write(500)
        assert cache.take_all() == 500
        assert cache.dirty_bytes == 0
        assert cache.total_flushed == 500

    def test_take_partial(self):
        cache = PageCache(Environment())
        cache.write(100)
        assert cache.take(30) == 30
        assert cache.dirty_bytes == 70
        assert cache.take(1000) == 70
        assert cache.dirty_bytes == 0

    def test_validation(self):
        cache = PageCache(Environment())
        with pytest.raises(ValueError):
            cache.write(-1)
        with pytest.raises(ValueError):
            cache.take(-1)


class TestCpu:
    def test_execute_accounts_user_time(self):
        env = Environment()
        cpu = Cpu(env, cores=2)

        def work(env):
            yield from cpu.execute(0.5)

        env.process(work(env))
        env.run()
        assert cpu.user.busy_seconds(env.now) == pytest.approx(0.5)
        assert cpu.utilization(0.0, 0.5) == pytest.approx(0.5)  # 1 of 2 cores

    def test_execute_queues_when_cores_busy(self):
        env = Environment()
        cpu = Cpu(env, cores=1)
        finished = []

        def work(env, tag):
            yield from cpu.execute(1.0)
            finished.append((tag, env.now))

        env.process(work(env, "a"))
        env.process(work(env, "b"))
        env.run()
        assert finished == [("a", 1.0), ("b", 2.0)]

    def test_stall_blocks_foreground(self):
        env = Environment()
        cpu = Cpu(env, cores=2)
        finished = []

        def stall(env):
            yield env.timeout(0.1)
            yield from cpu.stall(0.5)

        def work(env, tag, delay):
            yield env.timeout(delay)
            yield from cpu.execute(0.05)
            finished.append((tag, env.now))

        env.process(stall(env))
        env.process(work(env, "before", 0.0))
        env.process(work(env, "during", 0.2))
        env.run()
        # "before" completes normally; "during" arrives mid-stall and
        # must wait until the stall ends at 0.6.
        assert finished[0] == ("before", pytest.approx(0.05))
        assert finished[1][0] == "during"
        assert finished[1][1] == pytest.approx(0.65)

    def test_stall_waits_for_running_slices(self):
        env = Environment()
        cpu = Cpu(env, cores=1)
        timeline = {}

        def work(env):
            yield from cpu.execute(0.2)
            timeline["work_done"] = env.now

        def stall(env):
            yield env.timeout(0.1)
            yield from cpu.stall(0.3)
            timeline["stall_done"] = env.now

        env.process(work(env))
        env.process(stall(env))
        env.run()
        assert timeline["work_done"] == pytest.approx(0.2)
        assert timeline["stall_done"] == pytest.approx(0.5)

    def test_stall_preempts_queued_foreground(self):
        env = Environment()
        cpu = Cpu(env, cores=1)
        order = []

        def hog(env):
            yield from cpu.execute(0.1)
            order.append("hog")

        def queued(env):
            yield env.timeout(0.01)
            yield from cpu.execute(0.1)
            order.append("queued")

        def stall(env):
            yield env.timeout(0.02)
            yield from cpu.stall(0.2)
            order.append("stall")

        env.process(hog(env))
        env.process(queued(env))
        env.process(stall(env))
        env.run()
        # The stall was requested after "queued" but jumps the queue.
        assert order == ["hog", "stall", "queued"]

    def test_iowait_accounted_during_stall(self):
        env = Environment()
        cpu = Cpu(env, cores=4)

        def stall(env):
            yield from cpu.stall(0.5)

        env.process(stall(env))
        env.run()
        assert cpu.iowait.utilization(0.0, 0.5) == pytest.approx(1.0)
        assert cpu.user.utilization(0.0, 0.5) == pytest.approx(0.0)
        assert cpu.utilization(0.0, 0.5) == pytest.approx(1.0)

    def test_utilization_series_combines_user_and_iowait(self):
        env = Environment()
        cpu = Cpu(env, cores=1)

        def work(env):
            yield from cpu.execute(0.05)
            yield from cpu.stall(0.05)

        env.process(work(env))
        env.run(until=0.2)
        series = cpu.utilization_series(window=0.05, until=0.2)
        assert series.values == pytest.approx([1.0, 1.0, 0.0, 0.0])
        iowait = cpu.iowait_series(window=0.05, until=0.2)
        assert iowait.values == pytest.approx([0.0, 1.0, 0.0, 0.0])

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Cpu(env, cores=0)
        cpu = Cpu(env)
        with pytest.raises(ValueError):
            next(cpu.execute(-1))
        with pytest.raises(ValueError):
            next(cpu.stall(-1))

    def test_observability_properties(self):
        env = Environment()
        cpu = Cpu(env, cores=1)

        def work(env):
            yield from cpu.execute(1.0)

        env.process(work(env))
        env.process(work(env))
        env.run(until=0.5)
        assert cpu.busy_cores == 1
        assert cpu.run_queue_length == 1


class TestMillibottleneckProfile:
    def test_defaults_enabled(self):
        profile = MillibottleneckProfile()
        assert profile.enabled

    def test_disabled_matches_paper_remedy(self):
        profile = MillibottleneckProfile.disabled()
        assert not profile.enabled
        assert profile.flush_interval == 600.0
        assert profile.dirty_threshold_bytes == pytest.approx(4.8e9)

    def test_with_phase(self):
        profile = MillibottleneckProfile().with_phase(2.5)
        assert profile.phase == 2.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MillibottleneckProfile(flush_interval=0)
        with pytest.raises(ConfigurationError):
            MillibottleneckProfile(dirty_threshold_bytes=-1)
        with pytest.raises(ConfigurationError):
            MillibottleneckProfile(phase=-1)


class TestFlushDaemonAndHost:
    def make_host(self, env, **kwargs):
        profile = MillibottleneckProfile(
            flush_interval=1.0, dirty_threshold_bytes=1e6, **kwargs)
        return Host(env, "tomcat1", cores=2, disk_bandwidth=100e6,
                    flush_profile=profile)

    def test_flush_produces_millibottleneck_record(self):
        env = Environment()
        host = self.make_host(env)

        def dirtier(env):
            # 10 MB of logs in the first second -> 100 ms flush burst.
            for _ in range(10):
                host.write_file(1e6)
                yield env.timeout(0.05)

        env.process(dirtier(env))
        env.run(until=3.0)
        assert len(host.millibottlenecks) == 1
        record = host.millibottlenecks[0]
        assert record.host == "tomcat1"
        assert record.started_at == pytest.approx(1.0)
        assert record.duration == pytest.approx(0.1)
        assert record.bytes_flushed == pytest.approx(10e6)

    def test_flush_stalls_foreground_work(self):
        env = Environment()
        host = self.make_host(env)
        host.write_file(20e6)  # 200 ms of write-back when flushed at t=1
        finished = []

        def work(env):
            yield env.timeout(1.05)  # arrives mid-flush
            yield from host.execute(0.001)
            finished.append(env.now)

        env.process(work(env))
        env.run(until=3.0)
        assert finished[0] == pytest.approx(1.201, abs=1e-3)

    def test_no_flush_below_threshold(self):
        env = Environment()
        host = self.make_host(env)
        host.write_file(0.5e6)  # below the 1 MB threshold
        env.run(until=5.0)
        assert host.millibottlenecks == []
        assert host.pagecache.dirty_bytes == pytest.approx(0.5e6)

    def test_disabled_profile_never_flushes(self):
        env = Environment()
        host = Host(env, "apache1",
                    flush_profile=MillibottleneckProfile.disabled())
        host.write_file(100e6)
        env.run(until=30.0)
        assert host.millibottlenecks == []
        assert not host.flush_daemon.running

    def test_default_host_has_flushing_disabled(self):
        env = Environment()
        host = Host(env, "mysql1")
        assert not host.flush_profile.enabled

    def test_phase_staggers_first_flush(self):
        env = Environment()
        host = self.make_host(env, phase=0.5)
        host.write_file(5e6)
        env.run(until=2.0)
        assert host.millibottlenecks[0].started_at == pytest.approx(1.5)

    def test_stalled_during(self):
        env = Environment()
        host = self.make_host(env)
        host.write_file(10e6)  # flush at t=1.0 lasting 100 ms
        env.run(until=2.0)
        assert host.stalled_during(1.05, 1.06)
        assert host.stalled_during(0.9, 1.01)
        assert not host.stalled_during(1.2, 1.5)
        assert not host.stalled_during(0.0, 0.99)

    def test_repeated_flushes(self):
        env = Environment()
        host = self.make_host(env)

        def dirtier(env):
            while True:
                host.write_file(2e5)
                yield env.timeout(0.1)

        env.process(dirtier(env))
        env.run(until=5.5)
        # ~2 MB dirty per second, flushed every second: 5 bursts.
        assert len(host.millibottlenecks) == 5
        assert host.flush_daemon.flushes == 5

    def test_record_dirty_sample(self):
        env = Environment()
        host = self.make_host(env)
        host.write_file(3e6)
        host.record_dirty_sample()
        assert host.dirty_series.values == [3e6]
