"""Unit tests for the DES environment and event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event, Interrupt, Timeout


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=5.5).now == 5.5


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(1.5)
        seen.append(env.now)
        yield env.timeout(0.5)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [1.5, 2.0]


def test_timeout_with_value():
    env = Environment()

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        return value

    proc_event = env.process(proc(env))
    env.run()
    assert proc_event.value == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_exactly():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2.0


def test_run_until_untriggered_event_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_run_without_until_drains_queue():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run()
    assert env.now == 3.0
    assert len(env) == 0


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def delayed(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    for delay, tag in [(3, "c"), (1, "a"), (2, "b")]:
        env.process(delayed(env, delay, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_fifo():
    env = Environment()
    order = []

    def tagger(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(tagger(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.0)
    assert env.peek() == 4.0


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(2.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(2.0, "open")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            return str(exc)

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    waiter_proc = env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert waiter_proc.value == "boom"


def test_unhandled_event_failure_propagates():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        env.run()


def test_defused_failure_is_silent():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("ignored"))
    gate.defuse()
    env.run()  # must not raise


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_unavailable_before_trigger():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_trigger_copies_outcome():
    env = Environment()
    source = env.event()
    source.succeed("copied")
    target = env.event()
    target.trigger(source)
    env.run()
    assert target.value == "copied"


def test_schedule_into_past_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(env.event(), delay=-0.1)


def test_timeout_repr_and_delay():
    env = Environment()
    timeout = env.timeout(0.25)
    assert timeout.delay == 0.25
    assert "0.25" in repr(timeout)


def test_event_repr_shows_state():
    env = Environment()
    event = env.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)


def test_nan_and_inf_schedule_rejected():
    """NaN or infinite delays would silently corrupt heap ordering:
    NaN compares false against everything, so heap invariants break and
    events dispatch in arbitrary order."""
    env = Environment()
    for bad in (float("nan"), float("inf"), -float("inf")):
        with pytest.raises(SimulationError):
            env.schedule(env.event(), delay=bad)


def test_nan_and_inf_timeout_rejected():
    env = Environment()
    for bad in (float("nan"), float("inf"), -float("inf")):
        with pytest.raises(ValueError):
            env.timeout(bad)


def test_trace_hook_sees_every_dispatched_event():
    env = Environment()
    seen = []
    env.trace = lambda when, event: seen.append((when, type(event).__name__))

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    assert [entry[1] for entry in seen] == [
        "Initialize", "Timeout", "Timeout", "Process"]
    assert [entry[0] for entry in seen] == [0.0, 1.0, 3.0, 3.0]
