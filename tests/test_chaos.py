"""Chaos suite tests: grid construction, report shape, determinism,
and the two headline acceptance scenarios for the resilience layer."""

from dataclasses import replace

import pytest

from repro.cluster import (
    CHAOS_DURATION,
    FAULT_SCENARIOS,
    ZONE_FAULT_KEYS,
    ChaosSuite,
    CrashFault,
    ExperimentRunner,
    PacketLossFault,
    ScaleProfile,
    all_remedy_keys,
    fault_horizon,
    fault_specs,
    resolve_remedy,
)
from repro.controlplane import CONTROLPLANE_BUNDLES
from repro.core import MemberState
from repro.errors import ConfigurationError
from repro.parallel import run_experiments
from repro.resilience import RESILIENCE_BUNDLES


class TestFaultScenarios:
    def test_registry_keys(self):
        assert set(FAULT_SCENARIOS) == {
            "none", "crash", "transient_crash", "slow", "packet_loss",
            "link_latency", "burst", "recurring_slow",
            "zone_outage", "wan_degradation",
        }
        assert ZONE_FAULT_KEYS == {"zone_outage", "wan_degradation"}
        assert ZONE_FAULT_KEYS < set(FAULT_SCENARIOS)

    def test_windows_scale_with_duration(self):
        for duration in (8.0, 40.0):
            (spec,) = fault_specs("crash", duration)
            assert isinstance(spec, CrashFault)
            assert spec.at == pytest.approx(0.25 * duration)
            (spec,) = fault_specs("packet_loss", duration)
            assert isinstance(spec, PacketLossFault)
            assert spec.duration == pytest.approx(0.35 * duration)

    def test_none_is_empty(self):
        assert fault_specs("none", 12.0) == ()

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError):
            fault_specs("gremlins", 12.0)


class TestSuiteConstruction:
    def test_defaults(self):
        suite = ChaosSuite()
        # Zone faults need a zoned topology, so the default grid skips
        # them (they have no target in the classic build).
        assert suite.fault_keys == sorted(
            set(FAULT_SCENARIOS) - ZONE_FAULT_KEYS)
        assert suite.remedy_keys == ["none", "full"]
        assert suite.bundle_keys == ["original_total_request",
                                     "current_load_modified"]
        assert suite.duration == CHAOS_DURATION
        assert suite.profile == ScaleProfile.smoke()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosSuite(fault_keys=["gremlins"])
        with pytest.raises(ConfigurationError):
            ChaosSuite(remedy_keys=["prayer"])
        with pytest.raises(ConfigurationError):
            ChaosSuite(bundle_keys=["nope"])
        with pytest.raises(ConfigurationError):
            ChaosSuite(duration=0.0)

    def test_unknown_remedy_error_lists_both_registries(self):
        """The remedy namespace spans resilience and control-plane
        bundles; a typo's error message must advertise all of them."""
        with pytest.raises(ConfigurationError) as excinfo:
            ChaosSuite(remedy_keys=["prayer"])
        message = str(excinfo.value)
        for key in ("breaker", "full", "admission+leveling",
                    "autoscale_fast"):
            assert key in message

    def test_all_remedy_keys_is_sorted_union(self):
        keys = all_remedy_keys()
        assert keys == sorted(keys)
        assert set(keys) == set(RESILIENCE_BUNDLES) | set(
            CONTROLPLANE_BUNDLES)

    def test_resolve_remedy_partitions_the_namespace(self):
        """Each remedy key yields exactly one of (resilience,
        controlplane) — or neither, for the shared "none" key."""
        for key in all_remedy_keys():
            resilience, controlplane = resolve_remedy(key)
            if key == "none":
                assert resilience is None and controlplane is None
            else:
                assert (resilience is None) != (controlplane is None)

    def test_grid_is_fault_major(self):
        suite = ChaosSuite(fault_keys=["none", "crash"],
                           remedy_keys=["none", "breaker"],
                           bundle_keys=["current_load_modified"])
        labels = [cell.label for cell in suite.cells()]
        assert labels == [
            "none|none|current_load_modified",
            "none|breaker|current_load_modified",
            "crash|none|current_load_modified",
            "crash|breaker|current_load_modified",
        ]

    def test_cell_config_wiring(self):
        profile = ScaleProfile.smoke()
        suite = ChaosSuite(fault_keys=["none", "crash"],
                           remedy_keys=["none", "breaker"],
                           bundle_keys=["current_load_modified"],
                           duration=7.0, seed=9, profile=profile)
        by_label = {cell.label: cell.config for cell in suite.cells()}
        unremedied = by_label["none|none|current_load_modified"]
        # A remedy-free cell is the seed system: no resilience config at
        # all, so the wiring stays event-for-event identical.
        assert unremedied.resilience is None
        assert unremedied.faults == ()
        remedied = by_label["crash|breaker|current_load_modified"]
        assert remedied.resilience == RESILIENCE_BUNDLES["breaker"]
        assert remedied.controlplane is None
        assert len(remedied.faults) == 1
        for config in by_label.values():
            assert config.duration == 7.0
            assert config.seed == 9
            assert config.profile == profile
            assert not config.trace_dispatches
            assert not config.trace_lb_values

    def test_controlplane_remedy_wiring(self):
        """A control-plane remedy key sets ``config.controlplane`` and
        leaves ``config.resilience`` untouched — the two remedy axes
        never mix inside one cell."""
        suite = ChaosSuite(fault_keys=["crash"],
                           remedy_keys=["none", "admission+leveling"],
                           bundle_keys=["current_load_modified"])
        by_label = {cell.label: cell.config for cell in suite.cells()}
        remedied = by_label["crash|admission+leveling|current_load_modified"]
        assert remedied.controlplane == CONTROLPLANE_BUNDLES[
            "admission+leveling"]
        assert remedied.resilience is None
        bare = by_label["crash|none|current_load_modified"]
        assert bare.controlplane is None
        assert bare.resilience is None


class TestChaosReport:
    @pytest.fixture(scope="class")
    def report(self):
        suite = ChaosSuite(fault_keys=["crash"], remedy_keys=["none"],
                           bundle_keys=["original_total_request",
                                        "current_load_modified"],
                           duration=6.0)
        return suite.run()

    def test_rows_carry_grid_keys_and_metrics(self, report):
        rows = report.rows()
        assert [row["bundle"] for row in rows] == [
            "original_total_request", "current_load_modified"]
        for row in rows:
            assert row["fault"] == "crash"
            assert row["remedy"] == "none"
            assert 0.0 <= row["availability"] <= 1.0
            assert row["requests"] > 0
            # No retry/hedge remedy: essentially one attempt per logical
            # request (in-flight work at run end leaves a tiny residue).
            assert 1.0 <= row["amplification"] < 1.01

    def test_rows_carry_shed_and_recovery_columns(self, report):
        for row in report.rows():
            # No admission/leveling remedy in this grid: nothing sheds.
            assert row["sheds"] == 0
            assert row["shed_pct"] == 0.0
            # A permanent crash has no fault end, so time-to-recover is
            # undefined rather than infinite.
            assert row["ttr"] is None

    def test_render_table_shape(self, report):
        lines = report.render().splitlines()
        header = lines[0].split()
        assert header[:3] == ["fault", "remedy", "bundle"]
        assert "shed%" in header and "ttr" in header
        assert set(lines[1]) == {"-"}
        assert len(lines) == 2 + len(report.cells)


class TestRecoveryMetric:
    def test_fault_horizon_spans_specs(self):
        specs = fault_specs("transient_crash", 12.0)
        horizon = fault_horizon(specs)
        assert horizon is not None
        start, end = horizon
        assert 0.0 <= start < end <= 12.0

    def test_permanent_fault_has_no_horizon(self):
        assert fault_horizon(fault_specs("crash", 12.0)) is None
        assert fault_horizon(()) is None

    def test_transient_fault_rows_report_finite_or_inf_ttr(self):
        suite = ChaosSuite(fault_keys=["transient_crash"],
                           remedy_keys=["none"],
                           bundle_keys=["current_load_modified"],
                           duration=6.0)
        (row,) = suite.run().rows()
        ttr = row["ttr"]
        assert ttr is not None
        assert ttr >= 0.0  # inf compares fine here


class TestDeterminism:
    def test_rows_identical_serial_and_parallel(self):
        """Same seed => identical results under workers=1 and workers=N.

        Fault schedules draw from their own seed-derived RNG stream, so
        fanning cells out over a process pool must not change a single
        metric.
        """
        suite = ChaosSuite(fault_keys=["burst"], remedy_keys=["full"],
                           bundle_keys=["original_total_request",
                                        "current_load_modified"],
                           duration=6.0)
        serial = suite.run(workers=1).rows()
        parallel = suite.run(workers=2).rows()
        assert serial == parallel


class TestAcceptance:
    def test_breaker_tames_vlrt_under_millibottleneck_and_loss(self):
        """Headline demo: with millibottlenecks plus a 1% packet-loss
        window at full scale, the remedied stack (current_load +
        modified mechanism + circuit breaker) keeps %VLRT below 1%
        while the paper's baseline (total_request + original mechanism,
        no remedies) exceeds 5%."""
        profile = replace(ScaleProfile(), tomcat_disk_bandwidth=4e6)
        suite = ChaosSuite(fault_keys=["packet_loss"],
                           remedy_keys=["none", "breaker"],
                           bundle_keys=["original_total_request",
                                        "current_load_modified"],
                           duration=10.0, profile=profile)
        wanted = {"packet_loss|none|original_total_request",
                  "packet_loss|breaker|current_load_modified"}
        cells = [cell for cell in suite.cells() if cell.label in wanted]
        baseline, remedied = run_experiments(
            [cell.config for cell in cells], workers=2)
        assert 100.0 * baseline.stats().vlrt_fraction > 5.0
        assert 100.0 * remedied.stats().vlrt_fraction < 1.0

    def test_permanent_crash_excluded_millibottleneck_not(self):
        """A permanently crashed member escalates to Error and stays
        excluded for the rest of the run; members that merely
        millibottleneck never reach Error."""
        suite = ChaosSuite(fault_keys=["crash"], remedy_keys=["none"],
                           bundle_keys=["current_load_modified"])
        (cell,) = suite.cells()
        (spec,) = cell.config.faults
        config = replace(cell.config, trace_dispatches=True)
        result = ExperimentRunner(config).run()
        # The run actually exhibited millibottlenecks.
        assert len(result.system.millibottleneck_records()) > 0
        for balancer in result.system.balancers:
            crashed = balancer.member_named(spec.server)
            assert crashed.state is MemberState.ERROR
            # Dispatches to the dead member stop shortly after the
            # crash; the last half of the run sees none at all.
            counts = balancer.distribution_between(
                config.duration / 2, config.duration)
            assert counts[crashed.name] == 0
            for member in balancer.members:
                if member is not crashed:
                    assert member.state is not MemberState.ERROR
                    assert counts[member.name] > 0
