"""Edge-case tests for the DES kernel that the models rely on."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    AnyOf,
    DropQueue,
    Environment,
    Event,
    Interrupt,
    Store,
)


class TestStoreGetCancel:
    def test_cancel_pending_get_removes_waiter(self):
        env = Environment()
        store = Store(env)

        def impatient(env):
            get = store.get()
            outcome = yield get | env.timeout(0.5)
            assert get not in outcome
            get.cancel()
            return env.now

        def late_producer(env):
            yield env.timeout(1.0)
            yield store.put("late")

        p = env.process(impatient(env))
        env.process(late_producer(env))
        env.run()
        assert p.value == 0.5
        # The cancelled getter must not have consumed the item.
        assert list(store.items) == ["late"]

    def test_cancel_after_fulfilment_is_noop(self):
        env = Environment()
        store = Store(env)
        store.put("item")

        def consumer(env):
            get = store.get()
            value = yield get
            get.cancel()  # already triggered: must not blow up
            return value

        p = env.process(consumer(env))
        env.run()
        assert p.value == "item"

    def test_drop_queue_get_cancel(self):
        env = Environment()
        queue = DropQueue(env, capacity=4)

        def impatient(env):
            get = queue.get()
            yield env.timeout(0.1)
            get.cancel()

        env.process(impatient(env))
        env.run()
        # After cancellation an offer goes to the queue, not the
        # withdrawn waiter.
        assert queue.offer("x")
        assert len(queue) == 1


class TestProcessInterruptRaces:
    def test_double_interrupt_before_delivery(self):
        env = Environment()
        causes = []

        def victim(env):
            while True:
                try:
                    yield env.timeout(10)
                    return
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)

        def attacker(env, victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt("first")
            victim_proc.interrupt("second")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run(until=5)
        assert causes == ["first", "second"]

    def test_interrupt_racing_with_completion_is_dropped(self):
        env = Environment()

        def victim(env):
            yield env.timeout(1.0)
            return "done"

        def attacker(env, victim_proc):
            # Interrupt scheduled at the exact completion time: the
            # victim finishes first (its timeout was scheduled
            # earlier), so the interrupt must be silently dropped.
            yield env.timeout(1.0)
            if victim_proc.is_alive:
                victim_proc.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == "done"


class TestConditionEdgeCases:
    def test_any_of_with_already_processed_event(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run()  # processes `done`

        def waiter(env):
            result = yield AnyOf(env, [done, env.timeout(5)])
            return (env.now, done in result)

        p = env.process(waiter(env))
        env.run()
        assert p.value == (0.0, True)

    def test_condition_with_failed_preprocessed_event(self):
        env = Environment()
        bad = env.event()
        bad.fail(RuntimeError("early failure"))
        bad.defuse()
        env.run()

        def waiter(env):
            try:
                yield bad & env.timeout(1)
            except RuntimeError:
                return "propagated"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "propagated"

    def test_or_chain_returns_first_of_many(self):
        env = Environment()

        def waiter(env):
            timeouts = [env.timeout(delay, value=delay)
                        for delay in (3.0, 1.0, 2.0)]
            result = yield timeouts[0] | timeouts[1] | timeouts[2]
            return result.values()

        p = env.process(waiter(env))
        env.run(until=10)
        assert p.value == [1.0]


class TestEnvironmentEdgeCases:
    def test_run_until_event_that_fails(self):
        env = Environment()
        gate = env.event()

        def failer(env):
            yield env.timeout(1)
            gate.fail(ValueError("stop signal"))

        env.process(failer(env))
        with pytest.raises(ValueError, match="stop signal"):
            env.run(until=gate)

    def test_nested_process_chains(self):
        env = Environment()

        def leaf(env, depth):
            yield env.timeout(0.1)
            return depth

        def node(env, depth):
            if depth == 0:
                value = yield env.process(leaf(env, depth))
                return value
            value = yield env.process(node(env, depth - 1))
            return value + 1

        p = env.process(node(env, 20))
        env.run()
        assert p.value == 20
        assert env.now == pytest.approx(0.1)

    def test_many_simultaneous_events_drain(self):
        env = Environment()
        fired = []

        def proc(env, tag):
            yield env.timeout(1.0)
            fired.append(tag)

        for tag in range(1000):
            env.process(proc(env, tag))
        env.run()
        assert fired == list(range(1000))
