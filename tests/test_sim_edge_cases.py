"""Edge-case tests for the DES kernel that the models rely on."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    AnyOf,
    DropQueue,
    Environment,
    Event,
    Interrupt,
    Store,
)
from repro.sim.calendar import (
    DEFAULT_BUCKETS,
    GROW_FACTOR,
    MIN_BUCKETS,
    CalendarQueue,
)
from repro.sim.monitor import MonitorHub, Sampler


class TestStoreGetCancel:
    def test_cancel_pending_get_removes_waiter(self):
        env = Environment()
        store = Store(env)

        def impatient(env):
            get = store.get()
            outcome = yield get | env.timeout(0.5)
            assert get not in outcome
            get.cancel()
            return env.now

        def late_producer(env):
            yield env.timeout(1.0)
            yield store.put("late")

        p = env.process(impatient(env))
        env.process(late_producer(env))
        env.run()
        assert p.value == 0.5
        # The cancelled getter must not have consumed the item.
        assert list(store.items) == ["late"]

    def test_cancel_after_fulfilment_is_noop(self):
        env = Environment()
        store = Store(env)
        store.put("item")

        def consumer(env):
            get = store.get()
            value = yield get
            get.cancel()  # already triggered: must not blow up
            return value

        p = env.process(consumer(env))
        env.run()
        assert p.value == "item"

    def test_drop_queue_get_cancel(self):
        env = Environment()
        queue = DropQueue(env, capacity=4)

        def impatient(env):
            get = queue.get()
            yield env.timeout(0.1)
            get.cancel()

        env.process(impatient(env))
        env.run()
        # After cancellation an offer goes to the queue, not the
        # withdrawn waiter.
        assert queue.offer("x")
        assert len(queue) == 1


class TestProcessInterruptRaces:
    def test_double_interrupt_before_delivery(self):
        env = Environment()
        causes = []

        def victim(env):
            while True:
                try:
                    yield env.timeout(10)
                    return
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)

        def attacker(env, victim_proc):
            yield env.timeout(1)
            victim_proc.interrupt("first")
            victim_proc.interrupt("second")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run(until=5)
        assert causes == ["first", "second"]

    def test_interrupt_racing_with_completion_is_dropped(self):
        env = Environment()

        def victim(env):
            yield env.timeout(1.0)
            return "done"

        def attacker(env, victim_proc):
            # Interrupt scheduled at the exact completion time: the
            # victim finishes first (its timeout was scheduled
            # earlier), so the interrupt must be silently dropped.
            yield env.timeout(1.0)
            if victim_proc.is_alive:
                victim_proc.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == "done"


class TestConditionEdgeCases:
    def test_any_of_with_already_processed_event(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run()  # processes `done`

        def waiter(env):
            result = yield AnyOf(env, [done, env.timeout(5)])
            return (env.now, done in result)

        p = env.process(waiter(env))
        env.run()
        assert p.value == (0.0, True)

    def test_condition_with_failed_preprocessed_event(self):
        env = Environment()
        bad = env.event()
        bad.fail(RuntimeError("early failure"))
        bad.defuse()
        env.run()

        def waiter(env):
            try:
                yield bad & env.timeout(1)
            except RuntimeError:
                return "propagated"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "propagated"

    def test_or_chain_returns_first_of_many(self):
        env = Environment()

        def waiter(env):
            timeouts = [env.timeout(delay, value=delay)
                        for delay in (3.0, 1.0, 2.0)]
            result = yield timeouts[0] | timeouts[1] | timeouts[2]
            return result.values()

        p = env.process(waiter(env))
        env.run(until=10)
        assert p.value == [1.0]


class TestEnvironmentEdgeCases:
    def test_run_until_event_that_fails(self):
        env = Environment()
        gate = env.event()

        def failer(env):
            yield env.timeout(1)
            gate.fail(ValueError("stop signal"))

        env.process(failer(env))
        with pytest.raises(ValueError, match="stop signal"):
            env.run(until=gate)

    def test_nested_process_chains(self):
        env = Environment()

        def leaf(env, depth):
            yield env.timeout(0.1)
            return depth

        def node(env, depth):
            if depth == 0:
                value = yield env.process(leaf(env, depth))
                return value
            value = yield env.process(node(env, depth - 1))
            return value + 1

        p = env.process(node(env, 20))
        env.run()
        assert p.value == 20
        assert env.now == pytest.approx(0.1)

    def test_many_simultaneous_events_drain(self):
        env = Environment()
        fired = []

        def proc(env, tag):
            yield env.timeout(1.0)
            fired.append(tag)

        for tag in range(1000):
            env.process(proc(env, tag))
        env.run()
        assert fired == list(range(1000))


def _entry(t, seq):
    """A kernel-shaped ``(time, key, payload)`` scheduler entry.

    The kernel packs ``key = (priority << 53) | eid``; the scheduler's
    contract is plain tuple comparison, so a bare sequence int is an
    equivalent key for direct queue tests.
    """
    return (t, seq, ("payload", seq))


def _drain(queue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry)


class TestCalendarQueueOrdering:
    """Direct scheduler tests: pop order must equal global sorted order
    of ``(time, key)`` in every wheel configuration the kernel can hit
    (the golden-trace hashes depend on exactly this)."""

    def test_pop_order_globally_sorted_with_duplicates(self):
        import random

        rng = random.Random(7)
        entries = [_entry(rng.choice([0.0, 1e-4, 1e-3, 0.05, 0.3, 2.0]),
                          seq) for seq in range(500)]
        queue = CalendarQueue()
        shuffled = entries[:]
        rng.shuffle(shuffled)
        for entry in shuffled:
            queue.push(entry)
        assert _drain(queue) == sorted(entries)
        assert len(queue) == 0 and not queue

    def test_same_timestamp_cluster_pops_in_sequence_order(self):
        """A large equal-time cohort cannot be spread by any bucket
        width; FIFO order must still hold exactly."""
        queue = CalendarQueue()
        n = 4 * GROW_FACTOR * DEFAULT_BUCKETS  # forces resize attempts
        for seq in range(n):
            queue.push(_entry(0.123, seq))
        assert [e[1] for e in _drain(queue)] == list(range(n))

    def test_same_timestamp_cluster_backs_off_resizing(self):
        """An unspreadable cluster must not re-trigger an O(n) rebuild
        on every subsequent push: when the rebuild cannot spread the
        pending set below the new wheel's grow trigger, the trigger
        backs off to ``count * GROW_FACTOR`` (white-box: ``_resize`` is
        invoked directly because the push-triggered doubling always
        provides enough headroom on its own)."""
        queue = CalendarQueue()
        n = 3 * MIN_BUCKETS
        entries = [_entry(0.1, seq) for seq in range(n)]
        for entry in entries:
            queue.push(entry)
        queue._resize(MIN_BUCKETS)  # cannot spread n same-time entries
        assert queue._grow_at == n * GROW_FACTOR
        assert _drain(queue) == entries

    def test_overflow_pushes_never_trigger_resize(self):
        """Beyond-horizon entries sit in the overflow heap, not the
        wheel, so piling them up must not grow the wheel."""
        queue = CalendarQueue()
        for seq in range(4 * GROW_FACTOR * DEFAULT_BUCKETS):
            queue.push(_entry(1e3 + seq, seq))
        assert queue.nbuckets == DEFAULT_BUCKETS

    def test_beyond_horizon_entries_go_to_overflow(self):
        queue = CalendarQueue()
        horizon = queue._horizon
        near = [_entry(1e-4 * i, seq) for seq, i in enumerate(range(10))]
        far = [_entry(horizon * (i + 1.5), 100 + i) for i in range(5)]
        for entry in far + near:
            queue.push(entry)
        assert len(queue._overflow) == len(far)
        assert _drain(queue) == sorted(near + far)

    def test_far_future_entry_jumps_epochs(self):
        """A lone entry many epochs out must pop without scanning every
        empty intermediate epoch (the rollover jump path)."""
        queue = CalendarQueue()
        entry = _entry(1e6, 1)
        queue.push(entry)
        assert queue.pop() == entry
        assert queue.pop() is None

    def test_push_into_draining_slot_keeps_order(self):
        """Zero-delay scheduling lands in the current slot while it
        drains; both the append fast path and the insort path must
        place the entry correctly against the undrained suffix."""
        queue = CalendarQueue()
        queue.push(_entry(1e-4, 1))
        queue.push(_entry(9e-4, 2))   # same initial slot (width 1 ms)
        assert queue.pop() == _entry(1e-4, 1)
        queue.push(_entry(2e-4, 3))   # < ready tail: insort path
        queue.push(_entry(9.5e-4, 4))  # >= ready tail: append path
        assert [e[1] for e in _drain(queue)] == [3, 2, 4]

    def test_peek_time_reports_minimum_without_mutation(self):
        queue = CalendarQueue()
        assert queue.peek_time() == float("inf")
        queue.push(_entry(0.2, 2))
        queue.push(_entry(1e-4, 1))
        queue.push(_entry(500.0, 3))   # overflow
        assert queue.peek_time() == 1e-4
        assert queue.peek_time() == 1e-4  # no mutation
        assert queue.pop()[0] == 1e-4
        assert queue.peek_time() == 0.2
        _drain(queue)
        assert queue.peek_time() == float("inf")


class TestCalendarQueueResize:
    def test_grows_under_load_and_keeps_order(self):
        queue = CalendarQueue()
        entries = [_entry(i * 1e-5, i)
                   for i in range(4 * GROW_FACTOR * DEFAULT_BUCKETS)]
        for entry in entries:
            queue.push(entry)
        assert queue.nbuckets > DEFAULT_BUCKETS
        assert _drain(queue) == entries

    def test_resize_adapts_width_to_skewed_spacing(self):
        """Dense sub-microsecond cluster plus a sparse far tail: the
        re-estimated width must follow the median gap (the cluster),
        not the outliers, and order must survive the rebuild."""
        dense = [_entry(i * 1e-6, i) for i in range(600)]
        sparse = [_entry(10.0 + i, 1000 + i) for i in range(5)]
        queue = CalendarQueue()
        for entry in sparse + dense:
            queue.push(entry)
        assert queue.nbuckets > DEFAULT_BUCKETS
        assert queue.width < 1e-4  # tracked the dense cluster's gaps
        assert _drain(queue) == sorted(dense + sparse)

    def test_resize_mid_drain_resumes_exactly(self):
        """Growing while the current slot is partially consumed must
        not replay popped entries or skip pending ones."""
        queue = CalendarQueue()
        first = [_entry(i * 1e-6, i) for i in range(100)]
        for entry in first:
            queue.push(entry)
        popped = [queue.pop() for _ in range(50)]
        assert popped == first[:50]
        rest = [_entry(1e-3 + i * 1e-6, 100 + i)
                for i in range(2 * GROW_FACTOR * DEFAULT_BUCKETS)]
        for entry in rest:
            queue.push(entry)
        assert queue.nbuckets > DEFAULT_BUCKETS
        assert _drain(queue) == first[50:] + rest

    def test_shrinks_at_rollover_when_nearly_empty(self):
        queue = CalendarQueue()
        # 0.2 ms spacing keeps every entry inside the initial 0.256 s
        # horizon, so the pushes land in the wheel and trigger growth.
        spread = [_entry(i * 2e-4, i)
                  for i in range(2 * GROW_FACTOR * DEFAULT_BUCKETS)]
        for entry in spread:
            queue.push(entry)
        grown = queue.nbuckets
        assert grown > DEFAULT_BUCKETS
        straggler = _entry(1e4, 10 ** 6)
        queue.push(straggler)
        for expected in spread:
            assert queue.pop() == expected
        # Next pop crosses an epoch boundary with one pending entry:
        # the wheel must halve rather than scan at full size forever.
        assert queue.pop() == straggler
        assert queue.nbuckets < grown
        assert queue.nbuckets >= MIN_BUCKETS

    def test_never_shrinks_below_min_buckets(self):
        queue = CalendarQueue(nbuckets=MIN_BUCKETS)
        queue.push(_entry(1e5, 1))
        assert queue.pop() == _entry(1e5, 1)
        assert queue.nbuckets == MIN_BUCKETS


class TestSchedulerThroughEnvironment:
    """The same edge cases driven through the public kernel API."""

    def test_zero_delay_during_drain_runs_before_later_same_slot(self):
        """A zero-delay continuation scheduled *while its slot drains*
        must fire before a later event in the same bucket."""
        env = Environment()
        order = []

        def early(env):
            yield env.timeout(1e-4)
            order.append("early")
            yield env.timeout(0.0)
            order.append("continuation")

        def late(env):
            yield env.timeout(9e-4)
            order.append("late")

        env.process(early(env))
        env.process(late(env))
        env.run()
        assert order == ["early", "continuation", "late"]

    def test_think_time_scale_mixes_with_sub_ms_events(self):
        """Think-time events (~1 s) start beyond the default wheel
        horizon (0.256 s) and must interleave correctly with the sub-ms
        service-time churn the wheel is tuned for."""
        env = Environment()
        fired = []

        def at(env, delay, tag):
            yield env.timeout(delay)
            fired.append((env.now, tag))

        delays = ([(i * 1e-3, "svc%d" % i) for i in range(50)]
                  + [(1.0 + i * 0.9, "think%d" % i) for i in range(5)])
        for delay, tag in reversed(delays):
            env.process(at(env, delay, tag))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    def test_rejected_delay_leaves_scheduler_usable(self):
        """A NaN/inf rejection must not corrupt the pending schedule:
        the raise happens before anything is inserted."""
        env = Environment()
        env.timeout(1.0, value="ok")
        pending = len(env)
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises((ValueError, SimulationError)):
                env.timeout(bad)
        assert len(env) == pending
        env.run()
        assert env.now == 1.0

    def test_massive_same_time_cohort_is_fifo_through_resize(self):
        """Enough simultaneous processes to force wheel resizes while
        every event shares one timestamp: completion order must stay
        process-creation order (the packed-key FIFO contract)."""
        env = Environment()
        fired = []
        n = 2 * GROW_FACTOR * DEFAULT_BUCKETS

        def proc(env, tag):
            yield env.timeout(0.5)
            fired.append(tag)

        for tag in range(n):
            env.process(proc(env, tag))
        env.run()
        assert fired == list(range(n))


class TestMonitorHub:
    def test_hub_series_match_per_sampler_series(self):
        """Batched sampling is a pure scheduling optimisation: the
        recorded (time, value) series must equal dedicated-process
        samplers probing the same state."""

        def build(use_hub):
            env = Environment()
            state = {"v": 0}

            def bump(env):
                while True:
                    yield env.timeout(0.1)
                    state["v"] += 1

            env.process(bump(env))
            hub = MonitorHub(env, period=0.25) if use_hub else None
            samplers = [Sampler(env, lambda: state["v"], period=0.25,
                                name="s%d" % i, hub=hub)
                        for i in range(3)]
            env.run(until=1.0)
            return [s.series() for s in samplers]

        assert build(use_hub=True) == build(use_hub=False)

    def test_unused_hub_schedules_nothing(self):
        env = Environment()
        MonitorHub(env, period=0.05)
        assert len(env) == 0
        assert env.peek() == float("inf")

    def test_hub_sampler_owns_no_process(self):
        env = Environment()
        hub = MonitorHub(env, period=0.05)
        sampler = Sampler(env, lambda: 0, hub=hub)
        assert sampler._process is None
        assert len(hub) == 1
        assert sampler.period == hub.period

    def test_late_attach_joins_next_tick(self):
        env = Environment()
        hub = MonitorHub(env, period=0.25)
        first = Sampler(env, lambda: "a", hub=hub)
        late = {}

        def attach_later(env):
            yield env.timeout(0.6)
            late["sampler"] = Sampler(env, lambda: "b", hub=hub)

        env.process(attach_later(env))
        env.run(until=1.1)
        assert first.times == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])
        # Attached at 0.6: first shared tick it can see is 0.75.
        assert late["sampler"].times == pytest.approx([0.75, 1.0])

    def test_stop_halts_every_attached_sampler(self):
        env = Environment()
        hub = MonitorHub(env, period=0.25)
        samplers = [Sampler(env, lambda: 1, hub=hub) for _ in range(2)]

        def stopper(env):
            yield env.timeout(0.6)
            hub.stop()
            hub.stop()  # idempotent

        env.process(stopper(env))
        env.run(until=2.0)
        for sampler in samplers:
            assert sampler.times == pytest.approx([0.0, 0.25, 0.5])

    def test_disabled_sampler_never_attaches(self):
        env = Environment()
        hub = MonitorHub(env, period=0.25)
        sampler = Sampler(env, lambda: 1, hub=hub, enabled=False)
        env.run(until=1.0)
        assert len(hub) == 0
        assert sampler.series() == ([], [])

    def test_hub_validation(self):
        with pytest.raises(ValueError):
            MonitorHub(Environment(), period=0.0)
