"""Tests for fault injection and alternative millibottleneck sources."""

import numpy as np
import pytest

from repro.cluster import FaultInjector, ScaleProfile, build_system
from repro.core import MemberState, StateConfig, get_bundle
from repro.core.balancer import BalancerConfig
from repro.errors import ConfigurationError
from repro.osmodel import (
    DvfsSource,
    GarbageCollectionSource,
    Host,
    TransientStallInjector,
)
from repro.sim import Environment
from repro.netmodel import RetransmissionPolicy
from repro.workload import ClientPopulation, read_write_mix


class TestTransientStallInjector:
    def test_injects_and_records_ground_truth(self):
        env = Environment()
        host = Host(env, "h1", cores=2)
        injector = TransientStallInjector(
            host, interval=lambda: 1.0, duration=lambda: 0.1, label="x")
        env.run(until=3.5)
        assert injector.stalls_injected == 3
        records = host.millibottlenecks
        assert [round(r.started_at, 1) for r in records] == [1.0, 2.1, 3.2]
        assert all(r.duration == pytest.approx(0.1) for r in records)

    def test_stall_blocks_foreground(self):
        env = Environment()
        host = Host(env, "h1", cores=1)
        TransientStallInjector(host, interval=lambda: 0.5,
                               duration=lambda: 0.2)
        finished = []

        def work(env):
            yield env.timeout(0.55)  # mid-stall
            yield from host.execute(0.001)
            finished.append(env.now)

        env.process(work(env))
        env.run(until=1.0)
        assert finished[0] == pytest.approx(0.701, abs=1e-3)


class TestGcAndDvfsSources:
    def test_gc_pauses_have_plausible_durations(self):
        env = Environment()
        host = Host(env, "jvm", cores=4)
        GarbageCollectionSource(host, np.random.default_rng(0),
                                period=0.5, mean_pause=0.15)
        env.run(until=20.0)
        durations = [r.duration for r in host.millibottlenecks]
        assert len(durations) > 10
        assert 0.05 < float(np.mean(durations)) < 0.4
        # Millibottleneck range: tens to hundreds of milliseconds.
        assert all(0.01 < d < 1.5 for d in durations)

    def test_dvfs_transitions_are_short_and_fixed(self):
        env = Environment()
        host = Host(env, "cpu", cores=4)
        DvfsSource(host, np.random.default_rng(1), period=0.5,
                   transition=0.05)
        env.run(until=10.0)
        assert len(host.millibottlenecks) > 5
        assert all(r.duration == pytest.approx(0.05)
                   for r in host.millibottlenecks)

    def test_validation(self):
        env = Environment()
        host = Host(env, "h", cores=1)
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            GarbageCollectionSource(host, rng, period=0)
        with pytest.raises(ConfigurationError):
            DvfsSource(host, rng, transition=0)


class TestFaultInjector:
    def make_system(self, env, error_recovery=2.0):
        profile = ScaleProfile.smoke()
        system = build_system(
            env, profile, bundle=get_bundle("current_load_modified"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=False,
            balancer_config=BalancerConfig(
                pool_size=profile.connection_pool_size,
                trace_lb_values=False, trace_dispatches=True),
            state_config=StateConfig(busy_recheck=0.05,
                                     max_busy_retries=4,
                                     error_recovery=error_recovery),
        )
        population = ClientPopulation(
            env, [a.socket for a in system.apaches],
            total_clients=profile.clients, mix=read_write_mix(),
            rng=np.random.default_rng(0), think_time=profile.think_time,
            retransmission=RetransmissionPolicy())
        return system, population

    def test_crash_escalates_to_error_and_routes_around(self):
        env = Environment()
        system, population = self.make_system(env)
        injector = FaultInjector(env)
        injector.crash_at(system.tomcats[0], at=3.0)
        env.run(until=8.0)
        # Every balancer eventually ejects the dead member...
        for balancer in system.balancers:
            assert balancer.members[0].state is MemberState.ERROR
        # ...and the system keeps serving on the survivor.
        for balancer in system.balancers:
            counts = balancer.distribution_between(4.0, 8.0)
            assert counts["tomcat1"] == 0
            assert counts["tomcat2"] > 0
        assert injector.records[0].server == "tomcat1"
        assert injector.records[0].recovered_at is None

    def test_recovery_restores_service(self):
        env = Environment()
        system, population = self.make_system(env, error_recovery=1.0)
        injector = FaultInjector(env)
        injector.crash_at(system.tomcats[0], at=2.0, duration=2.0)
        env.run(until=10.0)
        record = injector.records[0]
        assert record.recovered_at == pytest.approx(4.0)
        # After recovery plus the error window, traffic returns.
        for balancer in system.balancers:
            counts = balancer.distribution_between(6.0, 10.0)
            assert counts["tomcat1"] > 0

    def test_crash_differs_from_millibottleneck(self):
        """The conservative remedy's rationale: both look identical at
        first probe, but only the crash should reach Error."""
        env = Environment()
        profile = ScaleProfile.smoke()
        system = build_system(
            env, profile, bundle=get_bundle("current_load_modified"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=True,  # flushing on
            state_config=StateConfig(busy_recheck=0.05,
                                     max_busy_retries=4,
                                     error_recovery=60.0),
        )
        population = ClientPopulation(
            env, [a.socket for a in system.apaches],
            total_clients=profile.clients, mix=read_write_mix(),
            rng=np.random.default_rng(0), think_time=profile.think_time)
        FaultInjector(env).crash_at(system.tomcats[1], at=3.0)
        env.run(until=10.0)
        assert len(system.millibottleneck_records()) > 0
        for balancer in system.balancers:
            # tomcat2 crashed: Error.  tomcat1 only millibottlenecked:
            # never Error.
            assert balancer.members[1].state is MemberState.ERROR
            assert balancer.members[0].state is not MemberState.ERROR

    def test_validation(self):
        env = Environment(initial_time=5.0)
        injector = FaultInjector(env)
        host = Host(env, "h")
        from repro.tiers import MySqlServer
        server = MySqlServer(env, "m", host)
        with pytest.raises(ConfigurationError):
            injector.crash_at(server, at=1.0)
        with pytest.raises(ConfigurationError):
            injector.crash_at(server, at=6.0, duration=0)

    def test_crash_recover_flags(self):
        env = Environment()
        host = Host(env, "h")
        from repro.tiers import MySqlServer
        server = MySqlServer(env, "m", host)
        assert not server.crashed
        assert server.responsive
        server.crash()
        assert server.crashed
        assert not server.responsive
        server.recover()
        assert server.responsive
