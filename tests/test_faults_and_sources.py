"""Tests for fault injection and alternative millibottleneck sources."""

import numpy as np
import pytest

from repro.cluster import (
    CorrelatedCrashFault,
    CrashFault,
    FaultInjector,
    LinkLatencyFault,
    PacketLossFault,
    RecurringFault,
    ScaleProfile,
    SlowFault,
    build_system,
)
from repro.core import MemberState, StateConfig, get_bundle
from repro.core.balancer import BalancerConfig
from repro.errors import ConfigurationError
from repro.osmodel import (
    DvfsSource,
    GarbageCollectionSource,
    Host,
    TransientStallInjector,
)
from repro.sim import Environment
from repro.netmodel import RetransmissionPolicy
from repro.workload import ClientPopulation, read_write_mix


class TestTransientStallInjector:
    def test_injects_and_records_ground_truth(self):
        env = Environment()
        host = Host(env, "h1", cores=2)
        injector = TransientStallInjector(
            host, interval=lambda: 1.0, duration=lambda: 0.1, label="x")
        env.run(until=3.5)
        assert injector.stalls_injected == 3
        records = host.millibottlenecks
        assert [round(r.started_at, 1) for r in records] == [1.0, 2.1, 3.2]
        assert all(r.duration == pytest.approx(0.1) for r in records)

    def test_stall_blocks_foreground(self):
        env = Environment()
        host = Host(env, "h1", cores=1)
        TransientStallInjector(host, interval=lambda: 0.5,
                               duration=lambda: 0.2)
        finished = []

        def work(env):
            yield env.timeout(0.55)  # mid-stall
            yield from host.execute(0.001)
            finished.append(env.now)

        env.process(work(env))
        env.run(until=1.0)
        assert finished[0] == pytest.approx(0.701, abs=1e-3)


class TestGcAndDvfsSources:
    def test_gc_pauses_have_plausible_durations(self):
        env = Environment()
        host = Host(env, "jvm", cores=4)
        GarbageCollectionSource(host, np.random.default_rng(0),
                                period=0.5, mean_pause=0.15)
        env.run(until=20.0)
        durations = [r.duration for r in host.millibottlenecks]
        assert len(durations) > 10
        assert 0.05 < float(np.mean(durations)) < 0.4
        # Millibottleneck range: tens to hundreds of milliseconds.
        assert all(0.01 < d < 1.5 for d in durations)

    def test_dvfs_transitions_are_short_and_fixed(self):
        env = Environment()
        host = Host(env, "cpu", cores=4)
        DvfsSource(host, np.random.default_rng(1), period=0.5,
                   transition=0.05)
        env.run(until=10.0)
        assert len(host.millibottlenecks) > 5
        assert all(r.duration == pytest.approx(0.05)
                   for r in host.millibottlenecks)

    def test_validation(self):
        env = Environment()
        host = Host(env, "h", cores=1)
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            GarbageCollectionSource(host, rng, period=0)
        with pytest.raises(ConfigurationError):
            DvfsSource(host, rng, transition=0)


class TestFaultInjector:
    def make_system(self, env, error_recovery=2.0):
        profile = ScaleProfile.smoke()
        system = build_system(
            env, profile, bundle=get_bundle("current_load_modified"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=False,
            balancer_config=BalancerConfig(
                pool_size=profile.connection_pool_size,
                trace_lb_values=False, trace_dispatches=True),
            state_config=StateConfig(busy_recheck=0.05,
                                     max_busy_retries=4,
                                     error_recovery=error_recovery),
        )
        population = ClientPopulation(
            env, [a.socket for a in system.apaches],
            total_clients=profile.clients, mix=read_write_mix(),
            rng=np.random.default_rng(0), think_time=profile.think_time,
            retransmission=RetransmissionPolicy())
        return system, population

    def test_crash_escalates_to_error_and_routes_around(self):
        env = Environment()
        system, population = self.make_system(env)
        injector = FaultInjector(env)
        injector.crash_at(system.tomcats[0], at=3.0)
        env.run(until=8.0)
        # Every balancer eventually ejects the dead member...
        for balancer in system.balancers:
            assert balancer.members[0].state is MemberState.ERROR
        # ...and the system keeps serving on the survivor.
        for balancer in system.balancers:
            counts = balancer.distribution_between(4.0, 8.0)
            assert counts["tomcat1"] == 0
            assert counts["tomcat2"] > 0
        assert injector.records[0].server == "tomcat1"
        assert injector.records[0].recovered_at is None

    def test_recovery_restores_service(self):
        env = Environment()
        system, population = self.make_system(env, error_recovery=1.0)
        injector = FaultInjector(env)
        injector.crash_at(system.tomcats[0], at=2.0, duration=2.0)
        env.run(until=10.0)
        record = injector.records[0]
        assert record.recovered_at == pytest.approx(4.0)
        # After recovery plus the error window, traffic returns.
        for balancer in system.balancers:
            counts = balancer.distribution_between(6.0, 10.0)
            assert counts["tomcat1"] > 0

    def test_crash_differs_from_millibottleneck(self):
        """The conservative remedy's rationale: both look identical at
        first probe, but only the crash should reach Error."""
        env = Environment()
        profile = ScaleProfile.smoke()
        system = build_system(
            env, profile, bundle=get_bundle("current_load_modified"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=True,  # flushing on
            state_config=StateConfig(busy_recheck=0.05,
                                     max_busy_retries=4,
                                     error_recovery=60.0),
        )
        population = ClientPopulation(
            env, [a.socket for a in system.apaches],
            total_clients=profile.clients, mix=read_write_mix(),
            rng=np.random.default_rng(0), think_time=profile.think_time)
        FaultInjector(env).crash_at(system.tomcats[1], at=3.0)
        env.run(until=10.0)
        assert len(system.millibottleneck_records()) > 0
        for balancer in system.balancers:
            # tomcat2 crashed: Error.  tomcat1 only millibottlenecked:
            # never Error.
            assert balancer.members[1].state is MemberState.ERROR
            assert balancer.members[0].state is not MemberState.ERROR

    def test_validation(self):
        env = Environment(initial_time=5.0)
        injector = FaultInjector(env)
        host = Host(env, "h")
        from repro.tiers import MySqlServer
        server = MySqlServer(env, "m", host)
        with pytest.raises(ConfigurationError):
            injector.crash_at(server, at=1.0)
        with pytest.raises(ConfigurationError):
            injector.crash_at(server, at=6.0, duration=0)

    def test_crash_recover_flags(self):
        env = Environment()
        host = Host(env, "h")
        from repro.tiers import MySqlServer
        server = MySqlServer(env, "m", host)
        assert not server.crashed
        assert server.responsive
        server.crash()
        assert server.crashed
        assert not server.responsive
        server.recover()
        assert server.responsive


class TestFaultZoo:
    def make_server(self, env):
        from repro.tiers import MySqlServer
        return MySqlServer(env, "m", Host(env, "h"))

    def test_crash_record_appended_at_crash_time(self):
        env = Environment()
        server = self.make_server(env)
        injector = FaultInjector(env)
        injector.crash_at(server, at=1.0, duration=2.0)
        env.run(until=0.5)
        assert injector.records == []
        env.run(until=2.0)  # mid-crash
        assert len(injector.records) == 1
        record = injector.records[0]
        assert record.crashed_at == pytest.approx(1.0)
        assert record.recovered_at is None
        env.run(until=4.0)
        assert record.recovered_at == pytest.approx(3.0)

    def test_overlapping_crash_windows_rejected(self):
        env = Environment()
        server = self.make_server(env)
        injector = FaultInjector(env)
        injector.crash_at(server, at=1.0, duration=2.0)
        with pytest.raises(ConfigurationError):
            injector.crash_at(server, at=2.0, duration=1.0)
        # A permanent crash overlaps everything after it.
        with pytest.raises(ConfigurationError):
            injector.crash_at(server, at=0.5)
        # Disjoint windows are fine; other servers are independent.
        injector.crash_at(server, at=4.0, duration=0.5)
        other = FaultInjector(env)
        other.crash_at(self.make_server(env), at=1.5, duration=1.0)

    def test_permanent_overlap_rejected_after_permanent(self):
        env = Environment()
        server = self.make_server(env)
        injector = FaultInjector(env)
        injector.crash_at(server, at=3.0)
        with pytest.raises(ConfigurationError):
            injector.crash_at(server, at=10.0, duration=1.0)

    def test_slow_fault_stretches_cpu_demand(self):
        env = Environment()
        server = self.make_server(env)
        injector = FaultInjector(env)
        injector.slow_at(server, at=1.0, duration=2.0, factor=3.0)
        env.run(until=2.0)
        assert server.host.slowdown == pytest.approx(3.0)
        env.run(until=4.0)
        assert server.host.slowdown == pytest.approx(1.0)
        record = injector.slow_records[0]
        assert record.server == "m"
        assert record.factor == 3.0
        assert record.started_at == pytest.approx(1.0)
        assert record.ended_at == pytest.approx(3.0)

    def test_slow_fault_validation(self):
        env = Environment()
        server = self.make_server(env)
        injector = FaultInjector(env)
        with pytest.raises(ConfigurationError):
            injector.slow_at(server, at=1.0, duration=1.0, factor=1.0)
        with pytest.raises(ConfigurationError):
            injector.slow_at(server, at=1.0, duration=0.0)

    def make_full_system(self, env):
        profile = ScaleProfile.smoke()
        return build_system(
            env, profile, bundle=get_bundle("current_load_modified"),
            rng=np.random.default_rng(0),
            tomcat_millibottlenecks=False)

    def test_packet_loss_window_installs_and_removes_impairment(self):
        env = Environment()
        system = self.make_full_system(env)
        injector = FaultInjector(env)
        injector.inject(PacketLossFault(at=1.0, duration=2.0, loss=0.5),
                        system)
        env.run(until=2.0)
        for apache in system.apaches:
            assert apache.socket.impairment is not None
            assert apache.socket.impairment.loss == 0.5
        env.run(until=4.0)
        for apache in system.apaches:
            assert apache.socket.impairment is None
        # One record per impaired socket, window recorded.
        assert len(injector.net_records) == len(system.apaches)
        assert all(r.kind == "loss" and r.ended_at == pytest.approx(3.0)
                   for r in injector.net_records)

    def test_packet_loss_targets_one_apache(self):
        env = Environment()
        system = self.make_full_system(env)
        injector = FaultInjector(env)
        injector.inject(PacketLossFault(at=1.0, duration=1.0,
                                        apache="apache1"), system)
        env.run(until=1.5)
        impaired = [a.name for a in system.apaches
                    if a.socket.impairment is not None]
        assert impaired == ["apache1"]
        with pytest.raises(ConfigurationError):
            injector.inject(PacketLossFault(at=2.0, duration=1.0,
                                            apache="nope"), system)

    def test_link_latency_window(self):
        env = Environment()
        system = self.make_full_system(env)
        injector = FaultInjector(env)
        members = [b.member_named("tomcat1") for b in system.balancers]
        base = [m.link.latency for m in members]
        injector.inject(
            LinkLatencyFault("tomcat1", at=1.0, duration=2.0, extra=0.01),
            system)
        env.run(until=2.0)
        for member, before in zip(members, base):
            assert member.link.latency == pytest.approx(before + 0.01)
        env.run(until=4.0)
        for member, before in zip(members, base):
            assert member.link.latency == pytest.approx(before)
        # One record per balancer link toward the target.
        assert len(injector.net_records) == len(system.balancers)
        assert all(r.kind == "latency" for r in injector.net_records)

    def test_correlated_crash_is_seed_deterministic(self):
        def crash_times(seed):
            env = Environment()
            system = self.make_full_system(env)
            injector = FaultInjector(env,
                                     rng=np.random.default_rng(seed))
            injector.inject(
                CorrelatedCrashFault(("tomcat1", "tomcat2"), at=1.0,
                                     duration=1.0, jitter=0.3), system)
            env.run(until=3.0)
            return sorted((r.server, r.crashed_at)
                          for r in injector.records)

        first, second = crash_times(7), crash_times(7)
        assert first == second
        assert len(first) == 2
        for _, at in first:
            assert 1.0 <= at <= 1.3
        assert crash_times(8) != first

    def test_recurring_slow_produces_episodes(self):
        env = Environment()
        server = self.make_server(env)
        injector = FaultInjector(env, rng=np.random.default_rng(3))
        injector.inject(
            RecurringFault("m", kind="slow", mean_interval=1.0,
                           duration=0.2, factor=2.0), server_system(server))
        env.run(until=10.0)
        assert len(injector.slow_records) >= 3
        # Episodes are sequential: each ends before the next starts.
        for earlier, later in zip(injector.slow_records,
                                  injector.slow_records[1:]):
            assert earlier.ended_at is not None
            assert earlier.ended_at <= later.started_at
        assert server.host.slowdown == pytest.approx(1.0)

    def test_recurring_until_bounds_episodes(self):
        env = Environment()
        server = self.make_server(env)
        injector = FaultInjector(env, rng=np.random.default_rng(3))
        injector.recurring(server, kind="crash", mean_interval=0.5,
                           duration=0.1, until=2.0)
        env.run(until=10.0)
        assert all(r.crashed_at < 2.0 + 0.5 for r in injector.records)
        assert not server.crashed

    def test_recurring_kind_validation(self):
        with pytest.raises(ConfigurationError):
            RecurringFault("m", kind="explode")
        env = Environment()
        injector = FaultInjector(env)
        with pytest.raises(ConfigurationError):
            injector.recurring(self.make_server(env), kind="explode")

    def test_unknown_spec_rejected(self):
        env = Environment()
        system = self.make_full_system(env)
        with pytest.raises(ConfigurationError):
            FaultInjector(env).inject(object(), system)

    def test_inject_all_schedules_everything(self):
        env = Environment()
        system = self.make_full_system(env)
        injector = FaultInjector(env)
        injector.inject_all(
            (CrashFault("tomcat1", at=1.0, duration=0.5),
             SlowFault("tomcat2", at=1.0, duration=0.5, factor=2.0)),
            system)
        env.run(until=3.0)
        assert len(injector.records) == 1
        assert len(injector.slow_records) == 1


def server_system(server):
    """Minimal NTierSystem stand-in resolving one server by name."""
    class _System:
        def server_named(self, name):
            assert name == server.name
            return server
    return _System()
