"""Geo-scale topologies: spec validation, cache/shard tier models, the
zone-hierarchy conservation identities, WAN trace buckets, and the
pinned headline (does hierarchy contain the millibottleneck?)."""

import numpy as np
import pytest

from repro.cluster.faults import (
    FaultInjector,
    WanDegradationFault,
    ZoneOutageFault,
)
from repro.cluster.geo import GEO_FAULTS, GeoSuite
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.cluster.scenarios import ChaosSuite, fault_specs
from repro.cluster.spec import (
    BoundarySpec,
    CacheSpec,
    LinkProfileSpec,
    ShardSpec,
    TierSpec,
    TopologySpec,
    WorkloadSpec,
    ZoneLinkSpec,
    ZoneSpec,
    get_topology,
)
from repro.errors import ConfigurationError
from repro.netmodel.sockets import Link, LinkProfile
from repro.osmodel.host import Host
from repro.sim.core import Environment
from repro.tiers.cache import CacheTier
from repro.tiers.shard import ShardRouter
from repro.tracing.critical_path import bucket_for, decompose


def _spec(tiers, boundaries, zones=(), zone_links=(), name="t"):
    return TopologySpec(name=name, tiers=tuple(tiers),
                        boundaries=tuple(boundaries),
                        zones=tuple(zones), zone_links=tuple(zone_links),
                        workload=WorkloadSpec(clients=10))


def _two_tier(**front_kwargs):
    return (
        TierSpec(name="web", service="frontend", replicas=2,
                 **front_kwargs),
        TierSpec(name="db", service="pooled", replicas=1),
    )


# -- spec validation matrix -------------------------------------------------

class TestGeoSpecValidation:
    ZONES = (ZoneSpec(name="east"), ZoneSpec(name="west"))

    def test_unknown_zone_in_placement(self):
        with pytest.raises(ConfigurationError, match="unknown zone"):
            _spec(_two_tier(placement=("east", "mars")),
                  [BoundarySpec(mode="balanced")], zones=self.ZONES)

    def test_placement_without_zones(self):
        with pytest.raises(ConfigurationError):
            _spec(_two_tier(placement=("east", "west")),
                  [BoundarySpec(mode="balanced")])

    def test_placement_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="placement"):
            TierSpec(name="web", service="frontend", replicas=3,
                     placement=("east", "west"))

    def test_link_on_inline_boundary_rejected(self):
        with pytest.raises(ConfigurationError, match="inline"):
            BoundarySpec(mode="inline", link=LinkProfileSpec())

    def test_zone_link_unknown_zone(self):
        with pytest.raises(ConfigurationError):
            _spec(_two_tier(placement=("east", "west")),
                  [BoundarySpec(mode="balanced")], zones=self.ZONES,
                  zone_links=(ZoneLinkSpec(zones=("east", "mars"),
                                           link=LinkProfileSpec()),))

    def test_duplicate_zone_pair(self):
        pair = ZoneLinkSpec(zones=("east", "west"),
                            link=LinkProfileSpec())
        flipped = ZoneLinkSpec(zones=("west", "east"),
                               link=LinkProfileSpec())
        with pytest.raises(ConfigurationError):
            _spec(_two_tier(placement=("east", "west")),
                  [BoundarySpec(mode="balanced")], zones=self.ZONES,
                  zone_links=(pair, flipped))

    def test_zone_link_self_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            ZoneLinkSpec(zones=("east", "east"), link=LinkProfileSpec())

    def test_hierarchy_requires_zones(self):
        with pytest.raises(ConfigurationError):
            _spec(_two_tier(),
                  [BoundarySpec(mode="balanced", hierarchy=True)])

    def test_sharded_needs_pooled_downstream(self):
        tiers = (
            TierSpec(name="web", service="frontend", replicas=1),
            TierSpec(name="app", service="worker", replicas=2),
        )
        with pytest.raises(ConfigurationError):
            _spec(tiers, [BoundarySpec(mode="sharded",
                                       shard=ShardSpec())])

    def test_cache_cannot_be_last(self):
        tiers = (
            TierSpec(name="web", service="frontend", replicas=1),
            TierSpec(name="cache", service="cache", replicas=1,
                     cache=CacheSpec()),
        )
        with pytest.raises(ConfigurationError, match="downstream"):
            _spec(tiers, [BoundarySpec(mode="balanced")])

    def test_cache_spec_on_non_cache_tier(self):
        with pytest.raises(ConfigurationError):
            TierSpec(name="web", service="frontend", replicas=1,
                     cache=CacheSpec())

    def test_placement_conflicts_with_autoscaler(self):
        from repro.controlplane import AutoscalerConfig

        with pytest.raises(ConfigurationError):
            TierSpec(name="app", service="worker", replicas=2,
                     placement=("east", "west"),
                     autoscaler=AutoscalerConfig())


class TestGeoSpecRoundTrip:
    @pytest.mark.parametrize("key", ["geo", "geo_flat"])
    def test_builtin_round_trips(self, key):
        spec = get_topology(key)
        again = TopologySpec.from_json(spec.to_json())
        assert again == spec

    def test_example_file_matches_builtin(self):
        assert TopologySpec.load(
            "examples/topologies/geo.json") == get_topology("geo")

    def test_describe_mentions_geo_features(self):
        text = get_topology("geo").describe()
        assert "east" in text and "west" in text
        assert "sharded" in text
        assert "cache" in text
        assert "hierarchy" in text
        assert "hierarchy" not in get_topology("geo_flat").describe()


# -- cache-aside model ------------------------------------------------------

def _cache_tier(env, ttl=60.0, churn=30.0, warmup=5.0, hit_ratio=0.8):
    host = Host(env, "cachehost")
    return CacheTier(env, "cache1", host, max_threads=4,
                     rng=np.random.default_rng(0), hit_ratio=hit_ratio,
                     ttl=ttl, churn=churn, warmup=warmup)


class TestCacheModel:
    def test_hit_ratio_monotone_in_ttl(self):
        env = Environment()
        ratios = [_cache_tier(env, ttl=ttl).effective_hit_ratio(now=100.0)
                  for ttl in (5.0, 20.0, 60.0, 300.0)]
        assert ratios == sorted(ratios)
        assert ratios[0] < ratios[-1]

    def test_warmup_curve_rises_from_cold(self):
        env = Environment()
        tier = _cache_tier(env, warmup=5.0)
        cold = tier.effective_hit_ratio(now=0.0)
        warm = tier.effective_hit_ratio(now=50.0)
        assert cold == pytest.approx(0.0)
        assert warm > 0.9 * tier.hit_ratio * tier.freshness

    def test_recover_resets_warmup(self):
        env = Environment()
        tier = _cache_tier(env)
        env.run(until=30.0)
        warmed = tier.effective_hit_ratio()
        tier.crash()
        tier.recover()
        assert tier.cold_restarts == 1
        assert tier.warm_start == pytest.approx(env.now)
        assert tier.effective_hit_ratio() < warmed

    def test_no_warmup_is_instant(self):
        env = Environment()
        tier = _cache_tier(env, warmup=0.0)
        assert tier.effective_hit_ratio(now=0.0) == pytest.approx(
            tier.hit_ratio * tier.freshness)


# -- consistent-hash shard router -------------------------------------------

class _Shard:
    def __init__(self, name):
        self.name = name

    def submit(self, request, reply):  # pragma: no cover - not dispatched
        reply.succeed(request)


def _router(env, names, **kwargs):
    kwargs.setdefault("virtual_nodes", 64)
    kwargs.setdefault("key_space", 512)
    return ShardRouter(env, "db.shards", [_Shard(n) for n in names],
                       rng=np.random.default_rng(1), **kwargs)


class TestShardRouter:
    def test_ring_is_deterministic(self):
        env = Environment()
        a = _router(env, ["s1", "s2", "s3"])
        b = _router(env, ["s1", "s2", "s3"])
        assert [a.owner(k).name for k in range(512)] == \
               [b.owner(k).name for k in range(512)]

    def test_retire_moves_about_one_nth(self):
        env = Environment()
        router = _router(env, ["s1", "s2", "s3", "s4"])
        before = {k: router.owner(k).name for k in range(512)}
        victim = router.backends[1]
        router.remove_backend(victim)
        moved = 0
        for key in range(512):
            owner = router.owner(key).name
            if before[key] == victim.name:
                moved += 1
                assert owner != victim.name
            else:
                # Consistent hashing: keys not owned by the retired
                # shard keep their owner.
                assert owner == before[key]
        # ~1/4 of the key space reshards (give the hash some slack).
        assert 0.10 < moved / 512 < 0.45
        assert router.retired_backends == [victim]

    def test_join_moves_about_one_nth(self):
        env = Environment()
        router = _router(env, ["s1", "s2", "s3"])
        before = {k: router.owner(k).name for k in range(512)}
        router.add_backend(_Shard("s4"))
        moved = 0
        for key in range(512):
            owner = router.owner(key).name
            if owner != before[key]:
                moved += 1
                # Keys only move *onto* the new shard.
                assert owner == "s4"
        assert 0.05 < moved / 512 < 0.5

    def test_remove_last_shard_rejected(self):
        env = Environment()
        router = _router(env, ["s1"])
        with pytest.raises(ConfigurationError):
            router.remove_backend(router.backends[0])

    def test_zipf_skew_concentrates_keys(self):
        env = Environment()
        uniform = _router(env, ["s1", "s2"], skew=0.0)
        skewed = _router(env, ["s1", "s2"], skew=1.5)
        top_uniform = sum(uniform.draw_key() == 0 for _ in range(2000))
        top_skewed = sum(skewed.draw_key() == 0 for _ in range(2000))
        assert top_skewed > 10 * max(1, top_uniform)


# -- zone fault plumbing ----------------------------------------------------

class TestZoneFaults:
    def test_zone_outage_needs_zoned_topology(self):
        spec = get_topology("classic")
        config = ExperimentConfig(
            profile=spec.scale_profile(), topology=spec, duration=2.0,
            trace_lb_values=False, trace_dispatches=False,
            faults=(ZoneOutageFault("east", at=0.5),))
        with pytest.raises(ConfigurationError, match="zone"):
            ExperimentRunner(config).run()

    def test_chaos_suite_rejects_zone_faults_without_topology(self):
        with pytest.raises(ConfigurationError, match="zone"):
            ChaosSuite(fault_keys=["zone_outage"])

    def test_chaos_suite_accepts_zone_faults_with_geo(self):
        suite = ChaosSuite(fault_keys=["zone_outage"],
                           remedy_keys=["none"],
                           bundle_keys=["current_load_modified"],
                           topology=get_topology("geo"))
        (cell,) = suite.cells()
        assert cell.config.topology is not None
        assert isinstance(cell.config.faults[0], ZoneOutageFault)

    def test_wan_degradation_swaps_and_restores(self):
        env = Environment()
        healthy = LinkProfile(latency=0.04, name="wan")
        link = Link(env, 0.04, name="a=>b", profile=healthy,
                    rng=np.random.default_rng(0),
                    zone_pair=("east", "west"))
        injector = FaultInjector(env)
        degraded = LinkProfile(latency=0.25, loss=0.05, name="bad")
        injector.degrade_wan_at(link, at=1.0, duration=2.0,
                                profile=degraded)
        env.run(until=2.0)
        assert link.profile is degraded
        env.run(until=4.0)
        assert link.profile is healthy
        (record,) = injector.net_records
        assert record.kind == "wan"
        assert record.ended_at == pytest.approx(3.0)

    def test_wan_degradation_without_wan_links(self):
        spec = get_topology("classic")
        config = ExperimentConfig(
            profile=spec.scale_profile(), topology=spec, duration=2.0,
            trace_lb_values=False, trace_dispatches=False,
            faults=(WanDegradationFault("east", "west", at=0.5,
                                        duration=1.0),))
        with pytest.raises(ConfigurationError, match="WAN"):
            ExperimentRunner(config).run()


# -- conservation identities ------------------------------------------------

def _run_geo(fault_key, hierarchy=True, duration=6.0, **config_kwargs):
    spec = TopologySpec.geo(hierarchy=hierarchy, disk_bandwidth=3e6,
                            clients=80)
    config = ExperimentConfig(
        profile=spec.scale_profile(), topology=spec, duration=duration,
        seed=7, trace_lb_values=False, trace_dispatches=False,
        faults=fault_specs(fault_key, duration), **config_kwargs)
    return ExperimentRunner(config).run()


def _assert_geo_conservation(result):
    system, population = result.system, result.population

    # Packets: every packet the clients sent was accepted or dropped.
    sent = population.sender.packets_sent
    accepted = sum(f.socket.accepted for f in system.frontends)
    dropped = population.sender.packets_dropped
    assert sent == accepted + dropped

    # Balancer members (zone-local balancers included): dispatched
    # closes against completed + inflight, live and retired alike.
    for balancer in system.balancers:
        members = (list(balancer.members)
                   + list(getattr(balancer, "retired_members", ())))
        for member in members:
            assert member.inflight >= 0
            assert member.dispatched == member.completed + member.inflight

    # Zone routers: every dispatch either stayed home, spilled, or
    # failed with NoCandidateError (never silently vanished).
    for router in system.zone_routers:
        assert router.spillovers >= 0
        assert (router.local_dispatches + router.spillovers
                <= router.dispatches)

    # Shard routers: totals close, and the per-shard counts sum to the
    # total (retired shards keep their counts).
    for router in system.shard_routers:
        assert router.dispatches == router.completions + router.inflight
        assert sum(router.dispatch_counts.values()) == router.dispatches

    # Per-zone: the same member identities close when restricted to
    # each zone's servers; together the zones cover every member.
    zone_servers = {zone: {s.name for s in system.servers_in_zone(zone)}
                    for zone in system.zone_names}
    seen = set()
    for zone, names in zone_servers.items():
        for balancer in system.balancers:
            for member in balancer.members:
                if member.server.name in names:
                    seen.add(member.name)
                    assert member.dispatched == (member.completed
                                                 + member.inflight)
    all_members = {member.name for balancer in system.balancers
                   for member in balancer.members}
    assert seen == all_members

    # Clients: closed loop, at most one outstanding attempt each.
    in_flight = (population.attempts_issued
                 - population.requests_completed
                 - population.requests_abandoned)
    assert 0 <= in_flight <= len(population)


@pytest.mark.parametrize("hierarchy", [True, False])
@pytest.mark.parametrize("fault_key",
                         ["none", "zone_outage", "wan_degradation"])
def test_geo_conservation(fault_key, hierarchy):
    """Conservation closes per-zone and globally, faulted or not."""
    result = _run_geo(fault_key, hierarchy=hierarchy)
    _assert_geo_conservation(result)
    assert result.stats().count > 0


def test_zone_outage_crashes_every_east_replica():
    result = _run_geo("zone_outage")
    injector = result.fault_injector
    east = {s.name for s in result.system.servers_in_zone("east")}
    assert {record.server for record in injector.records} == east
    assert all(record.recovered_at is not None
               for record in injector.records)


# -- trace buckets ----------------------------------------------------------

class TestWanTraceBuckets:
    def test_bucket_mapping(self):
        assert bucket_for("wan.transit") == "wan.transit"
        assert bucket_for("cache.miss_penalty") == "cache.miss_penalty"
        # The cache tier's queue/service spans still attribute by the
        # generic suffix rules.
        assert bucket_for("cache.queue_wait") == "queue_wait.cache"
        assert bucket_for("cache.service") == "service.cache"

    def test_buckets_reconstruct_root_duration(self):
        result = _run_geo("wan_degradation", duration=4.0,
                          trace_requests=True)
        completed = [t for t in result.traces() if t.completed]
        assert completed
        saw_wan = saw_miss = False
        for trace in completed:
            path = decompose(trace)
            assert sum(path.buckets.values()) == pytest.approx(
                trace.duration, abs=1e-9)
            saw_wan = saw_wan or path.buckets.get("wan.transit", 0) > 0
            saw_miss = saw_miss or self._has_span(trace.root,
                                                  "cache.miss_penalty")
        assert saw_wan, "no trace paid WAN transit in a geo run"
        # The miss envelope exists in the tree; its *self* time clips to
        # ~0 because the downstream dispatch span covers its interval —
        # exactly what keeps miss time attributed to the tier that
        # spent it.
        assert saw_miss, "no trace recorded a cache miss envelope"

    def _has_span(self, span, name):
        if span.name == name:
            return True
        return any(self._has_span(child, name)
                   for child in span.children or ())


# -- the pinned headline ----------------------------------------------------

@pytest.fixture(scope="module")
def geo_report():
    """The headline grid at the documented duration and seed."""
    return GeoSuite(duration=8.0).run()


def _row(report, topology, fault):
    for row in report.rows():
        if row["topology"] == topology and row["fault"] == fault:
            return row
    raise AssertionError("missing cell {}|{}".format(topology, fault))


class TestGeoHeadline:
    def test_grid_shape(self, geo_report):
        assert len(geo_report.cells) == 6
        assert sorted(GEO_FAULTS) == ["cache_failover", "wan_degradation",
                                      "zone_outage"]

    def test_zone_outage_hierarchy_beats_flat(self, geo_report):
        """Headline cell: east dies, the surviving zone's disks are
        starved.  The zone-local hierarchy contains the fault — fewer
        VLRTs and fewer drops than one flat global balancer, which
        keeps probing dead east members from every frontend."""
        hier = _row(geo_report, "geo", "zone_outage")
        flat = _row(geo_report, "geo_flat", "zone_outage")
        assert hier["vlrt_pct"] < flat["vlrt_pct"]
        assert hier["drops"] < flat["drops"]

    def test_wan_degradation_hierarchy_contains(self, geo_report):
        """Locality-first routing crosses the browned-out WAN less, so
        hierarchy pays fewer degraded hops than the flat balancer's
        50/50 spread."""
        hier = _row(geo_report, "geo", "wan_degradation")
        flat = _row(geo_report, "geo_flat", "wan_degradation")
        assert hier["vlrt_pct"] < flat["vlrt_pct"]
        assert hier["wan_retransmits"] <= flat["wan_retransmits"]

    def test_cache_failover_spills_only_under_hierarchy(self, geo_report):
        hier = _row(geo_report, "geo", "cache_failover")
        flat = _row(geo_report, "geo_flat", "cache_failover")
        assert hier["spillovers"] > 0
        assert flat["spillovers"] == 0
        assert hier["cold_restarts"] >= 1
        assert flat["cold_restarts"] >= 1

    def test_cache_failover_vlrts_stay_at_the_client_edge(self,
                                                          geo_report):
        """The warm-up hypothesis — a cold cache moves the VLRT
        clustering one tier down (DB queue wait behind the missing hit
        ratio) — is *refuted* at this scale: the trace decomposition
        still attributes VLRT time to retransmission backoff at the
        client edge, not to ``cache.miss_penalty`` or DB queue wait.
        The miss envelope's self-time stays near zero because child
        clipping hands the downstream work to the downstream buckets."""
        row = _row(geo_report, "geo", "cache_failover")
        buckets = row["buckets"]
        assert buckets is not None
        assert buckets["retransmission"] > buckets["cache.miss_penalty"]
        assert buckets["retransmission"] > buckets["queue_wait.mysql"]
