"""Tests for the report builders (Table I rendering, shape checks)."""

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    causal_chain_report,
    improvement_factors,
    shape_check,
    table1,
    table1_with_paper,
)
from repro.cluster import compare_policies
from repro.cluster.config import ScaleProfile
from repro.errors import AnalysisError
from repro.metrics import TimeSeries


@pytest.fixture(scope="module")
def results():
    """One tiny run per Table-I bundle (smoke-sized but complete)."""
    keys = ["original_total_request", "original_total_traffic",
            "current_load", "total_request_modified",
            "total_traffic_modified", "current_load_modified"]
    return compare_policies(keys, duration=6.0, seed=9)


class TestTable1Rendering:
    def test_paper_reference_values(self):
        assert PAPER_TABLE1["original_total_request"][0] == 41.00
        assert PAPER_TABLE1["current_load"] == (3.62, 0.21, 96.70)
        assert len(PAPER_TABLE1) == 6

    def test_table1_renders_all_rows(self, results):
        text = table1(results)
        assert "Original total_request" in text
        assert "Current_load" in text
        assert text.count("%") >= 12  # two percentage columns per row

    def test_table1_empty_raises(self):
        with pytest.raises(AnalysisError):
            table1([])

    def test_table1_with_paper_includes_both_columns(self, results):
        text = table1_with_paper(results)
        assert "41.00" in text    # paper's number
        assert "5.33%" in text
        assert "current_load" in text

    def test_improvement_factors_baseline_is_one(self, results):
        factors = improvement_factors(results)
        assert factors["original_total_request"] == pytest.approx(1.0)
        assert factors["current_load"] > 1.0

    def test_improvement_factors_missing_baseline(self, results):
        with pytest.raises(AnalysisError):
            improvement_factors(results[2:3])

    def test_shape_check_passes_on_real_runs(self, results):
        checks = shape_check(results)
        assert set(checks) == {
            "remedies_improve_avg_rt", "remedies_cut_vlrt",
            "traffic_not_better_than_request", "combined_adds_nothing"}
        assert all(checks.values()), checks

    def test_shape_check_requires_all_bundles(self, results):
        with pytest.raises(AnalysisError):
            shape_check(results[:2])


class TestCausalChainReport:
    def test_reports_all_four_links(self):
        grid = [0.05 * i for i in range(40)]
        dirty = TimeSeries("d", [(t, 100 - t) for t in grid])
        flat = TimeSeries("f", [(t, (1 if 0.9 < t < 1.1 else 0))
                                for t in grid])
        report = causal_chain_report(dirty, flat, flat, flat, flat)
        assert set(report) == {"dirty_drop~iowait", "iowait~cpu",
                               "cpu~queue", "queue~vlrt"}
        assert report["iowait~cpu"] == pytest.approx(1.0)


class TestCliFull:
    def test_cli_table1_quick(self, capsys):
        from repro.cli import main
        assert main(["table1", "--duration", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Original total_request" in out
        assert "Avg RT ms (paper)" in out

    def test_cli_export(self, tmp_path, capsys):
        from repro.cli import main
        out_dir = tmp_path / "dump"
        assert main(["export", "run/current_load", "--out", str(out_dir),
                     "--duration", "2", "--seed", "5"]) == 0
        assert (out_dir / "summary.json").exists()
        assert (out_dir / "dirty_tomcat1.csv").exists()
