"""Validate the DES kernel against closed-form queueing theory.

A simulator that will carry a paper's conclusions must first get the
textbook systems right.  These tests build M/M/1 and M/M/c queues out
of the same primitives the n-tier models use (Resource, exponential
draws from a seeded Generator) and compare long-run measurements
against the analytic formulas.
"""

import math

import numpy as np
import pytest

from repro.metrics.windows import BusyTracker
from repro.sim import Environment, Resource


def run_mmc(arrival_rate, service_rate, servers, horizon, seed):
    """Simulate an M/M/c queue; return measured stats."""
    env = Environment()
    rng = np.random.default_rng(seed)
    station = Resource(env, capacity=servers)
    busy = BusyTracker(servers)
    in_system = {"count": 0}
    area = {"value": 0.0, "last": 0.0}
    waits = []
    response_times = []

    def update_area(now):
        area["value"] += in_system["count"] * (now - area["last"])
        area["last"] = now

    def customer(env):
        arrived = env.now
        update_area(env.now)
        in_system["count"] += 1
        with station.request() as grant:
            yield grant
            waits.append(env.now - arrived)
            busy.acquire(env.now)
            yield env.timeout(rng.exponential(1.0 / service_rate))
            busy.release(env.now)
        update_area(env.now)
        in_system["count"] -= 1
        response_times.append(env.now - arrived)

    def source(env):
        while True:
            yield env.timeout(rng.exponential(1.0 / arrival_rate))
            env.process(customer(env))

    env.process(source(env))
    env.run(until=horizon)
    update_area(env.now)
    return {
        "mean_in_system": area["value"] / horizon,
        "mean_wait": float(np.mean(waits)),
        "mean_response": float(np.mean(response_times)),
        "utilization": busy.utilization(0.0, horizon),
        "completed": len(response_times),
    }


def erlang_c(servers, offered):
    """Probability of waiting in an M/M/c queue (Erlang C)."""
    summation = sum(offered ** k / math.factorial(k)
                    for k in range(servers))
    top = (offered ** servers / math.factorial(servers)) * (
        servers / (servers - offered))
    return top / (summation + top)


class TestMM1:
    """M/M/1: L = rho/(1-rho), W = 1/(mu-lambda)."""

    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mean_number_in_system(self, rho):
        service_rate = 10.0
        arrival_rate = rho * service_rate
        measured = run_mmc(arrival_rate, service_rate, servers=1,
                           horizon=4000.0, seed=int(rho * 100))
        expected = rho / (1 - rho)
        assert measured["mean_in_system"] == pytest.approx(expected,
                                                           rel=0.10)

    def test_mean_response_time(self):
        measured = run_mmc(arrival_rate=5.0, service_rate=10.0,
                           servers=1, horizon=4000.0, seed=1)
        expected = 1.0 / (10.0 - 5.0)
        assert measured["mean_response"] == pytest.approx(expected,
                                                          rel=0.10)

    def test_utilization_equals_rho(self):
        measured = run_mmc(arrival_rate=7.0, service_rate=10.0,
                           servers=1, horizon=4000.0, seed=2)
        assert measured["utilization"] == pytest.approx(0.7, rel=0.05)


class TestMMC:
    """M/M/c: mean wait = ErlangC / (c*mu - lambda)."""

    @pytest.mark.parametrize("servers,rho", [(2, 0.6), (4, 0.7)])
    def test_mean_wait_matches_erlang_c(self, servers, rho):
        service_rate = 5.0
        arrival_rate = rho * servers * service_rate
        measured = run_mmc(arrival_rate, service_rate, servers,
                           horizon=3000.0, seed=servers)
        offered = arrival_rate / service_rate
        expected_wait = erlang_c(servers, offered) / (
            servers * service_rate - arrival_rate)
        assert measured["mean_wait"] == pytest.approx(expected_wait,
                                                      rel=0.15)

    def test_throughput_equals_arrival_rate(self):
        measured = run_mmc(arrival_rate=12.0, service_rate=5.0,
                           servers=4, horizon=2000.0, seed=9)
        assert measured["completed"] / 2000.0 == pytest.approx(12.0,
                                                               rel=0.05)

    def test_utilization_splits_across_servers(self):
        measured = run_mmc(arrival_rate=12.0, service_rate=5.0,
                           servers=4, horizon=2000.0, seed=10)
        assert measured["utilization"] == pytest.approx(12.0 / 20.0,
                                                        rel=0.05)


class TestLittleLaw:
    """L = lambda * W must hold for any stable configuration."""

    @pytest.mark.parametrize("servers,arrival_rate", [(1, 6.0), (3, 10.0)])
    def test_little(self, servers, arrival_rate):
        measured = run_mmc(arrival_rate, service_rate=5.0,
                           servers=servers, horizon=3000.0,
                           seed=servers * 7)
        little = arrival_rate * measured["mean_response"]
        assert measured["mean_in_system"] == pytest.approx(little,
                                                           rel=0.08)
