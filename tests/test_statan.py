"""Tests for repro.statan: rule engine, ruleset, reporters, CLI.

Every rule gets one positive fixture (the finding fires) and one
negative fixture (idiomatic code stays clean); plus suppression-comment
handling, the JSON reporter schema, and the CLI's 0/1/2 exit-code
contract.
"""

import json
import pathlib
import re
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.statan import (
    RULES,
    Severity,
    StatanError,
    check_paths,
    check_source,
    render_json,
    render_text,
)
from repro.statan.engine import Result


def findings(source, path="pkg/module.py"):
    return check_source(textwrap.dedent(source), path)


def codes(source, path="pkg/module.py"):
    return [finding.code for finding in findings(source, path)]


# -- determinism ----------------------------------------------------------

class TestDeterminismRule:
    def test_wall_clock_read_fires(self):
        assert "DET001" in codes("""
            import time
            def stamp():
                return time.time()
        """)

    def test_datetime_now_fires(self):
        assert "DET002" in codes("""
            import datetime
            start = datetime.datetime.now()
        """)

    def test_os_urandom_fires(self):
        assert "DET003" in codes("""
            import os
            token = os.urandom(8)
        """)

    def test_global_random_module_fires(self):
        assert "DET004" in codes("""
            import random
            def jitter():
                return random.random()
        """)

    def test_from_random_import_fires(self):
        assert "DET004" in codes("from random import choice\n")

    def test_np_random_global_fires(self):
        assert "DET005" in codes("""
            import numpy as np
            x = np.random.uniform(0.0, 1.0)
        """)

    def test_unseeded_default_rng_fires(self):
        assert "DET006" in codes("""
            import numpy as np
            rng = np.random.default_rng()
        """)

    def test_injected_generator_is_clean(self):
        assert codes("""
            import numpy as np

            def service_time(rng: np.random.Generator) -> float:
                return float(rng.exponential(0.01))

            rng = np.random.default_rng(42)
        """) == []


# -- process discipline ---------------------------------------------------

class TestProcessProtocolRule:
    def test_bare_yield_fires(self):
        assert "PROC001" in codes("""
            def get_endpoint(member):
                return None
                yield
        """)

    def test_non_event_yield_fires(self):
        assert "PROC002" in codes("""
            def worker(env):
                yield env.timeout(1.0)
                yield 0.5
        """)

    def test_return_value_mixed_with_yields_fires(self):
        assert "PROC003" in codes("""
            def worker(env):
                yield env.timeout(1.0)
                return 42
        """)

    def test_docstring_marks_process_generator(self):
        assert "PROC003" in codes("""
            def send(request):
                \"\"\"Process generator: forward and await.\"\"\"
                yield request.reply
                return request
        """)

    def test_event_yields_and_composition_are_clean(self):
        assert codes("""
            def worker(env, pool, store):
                with pool.request() as req:
                    yield req
                    yield env.timeout(0.01)
                outcome = yield req | env.timeout(0.3)
                yield store.put(1)
        """) == []

    def test_plain_data_generators_are_ignored(self):
        # A non-process generator (e.g. TimeSeries iteration) may yield
        # tuples and return freely.
        assert codes("""
            def pairs(times, values):
                for pair in zip(times, values):
                    yield pair
        """) == []


# -- resource safety ------------------------------------------------------

class TestResourceSafetyRule:
    def test_missing_release_fires(self):
        assert "RES001" in codes("""
            def execute(self, seconds):
                self.user.acquire(self.env.now)
                yield self.env.timeout(seconds)
        """)

    def test_conditional_release_fires(self):
        assert "RES002" in codes("""
            def execute(self, seconds, flaky):
                self.user.acquire(self.env.now)
                if flaky:
                    self.user.release(self.env.now)
        """)

    def test_try_finally_release_is_clean(self):
        assert codes("""
            def execute(self, seconds):
                self.user.acquire(self.env.now)
                try:
                    yield self.env.timeout(seconds)
                finally:
                    self.user.release(self.env.now)
        """) == []

    def test_straight_line_release_is_clean(self):
        assert codes("""
            def tick(self, now):
                self.tracker.acquire(now)
                self.tracker.release(now)
        """) == []

    def test_acquire_wrappers_are_exempt(self):
        assert codes("""
            def try_acquire(self):
                slot = self.pool.acquire()
                return slot
        """) == []

    def test_acquire_substring_name_is_not_exempt(self):
        assert "RES001" in codes("""
            def process_acquired_batch(self):
                self.pool.acquire()
        """)


# -- float-time hygiene ---------------------------------------------------

class TestFloatTimeComparisonRule:
    def test_timestamp_equality_fires(self):
        assert "FLT001" in codes("""
            def stalled(env, started_at):
                return env.now == started_at
        """)

    def test_bounded_comparison_is_clean(self):
        assert codes("""
            def stalled(env, started_at, window):
                return env.now - started_at >= window
        """) == []

    def test_none_check_is_not_flagged(self):
        assert codes("""
            def started(self):
                return self.busy_since == None
        """) == []

    def test_chained_comparison_checks_running_left_operand(self):
        assert "FLT001" in codes("""
            def stalled(a, started_at, b):
                return a < started_at == b
        """)


# -- slots enforcement ----------------------------------------------------

class TestMissingSlotsRule:
    def test_missing_slots_in_sim_module_fires(self):
        assert "SLOT001" in codes("""
            class Hot:
                def __init__(self, env):
                    self.env = env
        """, path="src/repro/sim/hot.py")

    def test_slots_class_is_clean(self):
        assert codes("""
            class Hot:
                __slots__ = ("env",)
                def __init__(self, env):
                    self.env = env
        """, path="src/repro/sim/hot.py") == []

    def test_exceptions_and_non_sim_modules_are_exempt(self):
        exc = """
            class Interrupt(Exception):
                pass
        """
        assert codes(exc, path="src/repro/sim/events.py") == []
        plain = """
            class Report:
                def __init__(self):
                    self.rows = []
        """
        assert codes(plain, path="src/repro/analysis/report.py") == []


# -- delay literals -------------------------------------------------------

class TestBadDelayRule:
    def test_nonfinite_delay_fires(self):
        assert "NAN001" in codes("""
            def poke(env):
                yield env.timeout(float("nan"))
        """)
        assert "NAN001" in codes("""
            import math
            def poke(env, event):
                env.schedule(event, delay=math.inf)
        """)

    def test_negative_delay_fires(self):
        assert "NAN002" in codes("""
            def poke(env):
                yield env.timeout(-0.5)
        """)

    def test_finite_delays_are_clean(self):
        assert codes("""
            def poke(env, event, pause):
                yield env.timeout(0.0)
                yield env.timeout(pause)
                env.schedule(event, delay=pause - 0.1)
        """) == []


# -- retry loops ----------------------------------------------------------

class TestUnboundedRetryRule:
    def test_pause_and_continue_forever_fires(self):
        assert "RETRY001" in codes("""
            def dispatch(self, request):
                while True:
                    member = self._pick()
                    if member is None:
                        yield self.env.timeout(self.pause)
                        continue
                    yield member.send(request)
        """)

    def test_raise_on_exhaustion_is_clean(self):
        assert codes("""
            def dispatch(self, request):
                while True:
                    member = self._pick()
                    if member is None:
                        if self.env.now > request.deadline:
                            raise NoCandidateError(request)
                        yield self.env.timeout(self.pause)
                        continue
                    yield member.send(request)
        """) == []

    def test_break_is_clean(self):
        assert codes("""
            def probe(self):
                while True:
                    if self.target.responsive:
                        break
                    yield self.env.timeout(self.interval)
                    continue
        """) == []

    def test_bounded_for_loop_is_clean(self):
        assert codes("""
            def send(self, packet):
                for attempt in range(self.max_retries):
                    yield self.env.timeout(self.rto)
                    continue
        """) == []

    def test_real_loop_condition_is_clean(self):
        assert codes("""
            def drain(self, queue):
                while queue.pending:
                    yield self.env.timeout(0.05)
                    continue
        """) == []

    def test_inner_loop_break_does_not_bound_outer(self):
        assert "RETRY001" in codes("""
            def forward(self):
                while True:
                    for item in self.batch:
                        if item.done:
                            break
                    yield self.env.timeout(0.1)
                    continue
        """)

    def test_service_loop_without_continue_is_clean(self):
        assert codes("""
            def run(self):
                while True:
                    yield self.env.timeout(self.think_time)
                    yield from self.issue()
        """) == []


class TestSeedThreadingRule:
    def test_builder_without_rng_fires(self):
        assert "SEED001" in codes("""
            def make(env, profile, bundle):
                return build_system(env, profile, bundle=bundle)
        """)

    def test_spec_builder_without_rng_fires(self):
        assert "SEED001" in codes("""
            def make(env, spec):
                return build_from_spec(env, spec)
        """)

    def test_rng_keyword_is_clean(self):
        assert codes("""
            def make(env, profile, bundle, rng):
                return build_system(env, profile, bundle=bundle, rng=rng)
        """) == []

    def test_rng_positional_is_clean(self):
        assert codes("""
            def make(env, spec, profile, rng):
                return build_from_spec(env, spec, profile, rng)
        """) == []

    def test_kwargs_passthrough_is_clean(self):
        assert codes("""
            def make(env, spec, **kwargs):
                return build_from_spec(env, spec, **kwargs)
        """) == []

    def test_fault_injector_without_rng_fires(self):
        assert "SEED001" in codes("""
            def arm(env):
                return FaultInjector(env)
        """)

    def test_unrelated_call_is_clean(self):
        assert codes("""
            def make(env):
                return build_widget(env)
        """) == []

    def test_self_method_with_builder_name_is_clean(self):
        # ``self.build_system`` is a same-named method on this class,
        # not the module-level builder with the rng fallback.
        assert codes("""
            class Harness:
                def make(self, env, profile):
                    return self.build_system(env, profile)
        """) == []

    def test_cls_method_with_builder_name_is_clean(self):
        assert codes("""
            class Harness:
                @classmethod
                def make(cls, env, spec):
                    return cls.build_from_spec(env, spec)
        """) == []

    def test_module_qualified_builder_still_fires(self):
        assert "SEED001" in codes("""
            def make(env, profile):
                return topology.build_system(env, profile)
        """)


# -- hot-path performance -------------------------------------------------

class TestPerfHotPathRule:
    SIM = "src/repro/sim/hotmod.py"
    TRACING = "src/repro/tracing/hotmod.py"
    SCHEDULER = "src/repro/sim/calendar.py"
    ELSEWHERE = "src/repro/cluster/runner.py"

    def test_heapq_import_in_sim_fires(self):
        assert "PERF001" in codes("import heapq\n", path=self.SIM)

    def test_heapq_from_import_in_tracing_fires(self):
        assert "PERF001" in codes("from heapq import heappush\n",
                                  path=self.TRACING)

    def test_heapq_call_in_sim_fires(self):
        assert "PERF001" in codes("""
            import heapq
            def schedule(entries, entry):
                heapq.heappush(entries, entry)
        """, path=self.SIM)

    def test_bare_heappush_call_fires(self):
        assert "PERF001" in codes("""
            def schedule(entries, entry):
                heappush(entries, entry)
        """, path=self.SIM)

    def test_scheduler_module_owns_its_heap(self):
        assert codes("""
            from heapq import heappop, heappush
            def push_overflow(overflow, entry):
                heappush(overflow, entry)
        """, path=self.SCHEDULER) == []

    def test_heapq_outside_sim_tracing_is_clean(self):
        assert codes("import heapq\n", path=self.ELSEWHERE) == []

    def test_event_construction_in_loop_fires(self):
        assert "PERF002" in codes("""
            def settle(env, waiters):
                for waiter in waiters:
                    event = Event(env)
                    event.succeed()
        """, path=self.SIM)

    def test_timeout_construction_in_while_loop_fires(self):
        assert "PERF002" in codes("""
            def drain(env):
                while env.peek() < 1.0:
                    Timeout(env, 0.1)
        """, path=self.SIM)

    def test_span_construction_in_loop_fires(self):
        assert "PERF002" in codes("""
            def expand(trace, names):
                for name in names:
                    trace.add(Span(name))
        """, path=self.TRACING)

    def test_single_construction_outside_loop_is_clean(self):
        assert codes("""
            def interrupt(env):
                event = Event(env)
                return event
        """, path=self.SIM) == []

    def test_factory_calls_in_loop_are_clean(self):
        assert codes("""
            def drain(env, n):
                for _ in range(n):
                    yield env.timeout(0.1)
        """, path=self.SIM) == []

    def test_loop_construction_outside_sim_tracing_is_clean(self):
        assert codes("""
            def build(env, n):
                return [Event(env) for _ in range(n)]
        """, path=self.ELSEWHERE) == []

    def test_dunder_new_pool_idiom_is_clean(self):
        assert codes("""
            def fill(env, pool, n, _new=Timeout.__new__, _cls=Timeout):
                for _ in range(n):
                    pool.append(_new(_cls))
        """, path=self.SIM) == []

    def test_construction_loop_in_init_is_clean(self):
        # Prewarming a pool in __init__ runs once per object, not per
        # event — setup code is exempt from the hot-loop heuristic.
        assert codes("""
            class Pool:
                __slots__ = ("_free",)

                def __init__(self, env, size):
                    self._free = []
                    for _ in range(size):
                        self._free.append(Event(env))
        """, path=self.SIM) == []

    def test_construction_loop_in_prewarm_helper_is_clean(self):
        assert codes("""
            def _prewarm_spans(trace, names):
                for name in names:
                    trace.add(Span(name))
        """, path=self.TRACING) == []

    def test_construction_loop_in_setup_helper_is_clean(self):
        assert codes("""
            def setup_events(env, n):
                return [Event(env) for _ in range(n)]
        """, path=self.SIM) == []

    def test_helper_nested_in_setup_is_exempt_too(self):
        # The exemption covers the whole lexical nest: a fill helper
        # defined inside a builder runs at build time, not per event.
        assert codes("""
            def build_pool(env, size):
                def fill(pool):
                    for _ in range(size):
                        pool.append(Event(env))
                pool = []
                fill(pool)
                return pool
        """, path=self.SIM) == []

    def test_setup_named_loop_outside_setup_function_still_fires(self):
        # Only the *enclosing function's* name grants the exemption;
        # module-level loops and ordinary dispatchers stay hot.
        assert "PERF002" in codes("""
            def dispatch(env, waiters):
                for waiter in waiters:
                    Event(env).succeed()
        """, path=self.SIM)

    def test_shipped_sim_and_tracing_trees_are_clean(self):
        root = pathlib.Path(__file__).resolve().parents[1] / "src/repro"
        for module_dir in ("sim", "tracing"):
            for path in sorted((root / module_dir).glob("*.py")):
                found = check_source(path.read_text(), str(path))
                perf = [f for f in found if f.code.startswith("PERF")]
                assert perf == [], path


# -- engine behaviour -----------------------------------------------------

class TestSuppressions:
    def test_same_line_suppression_by_rule_id(self):
        clean = """
            import time
            def stamp():
                return time.time()  # statan: ignore[determinism]
        """
        assert codes(clean) == []

    def test_same_line_suppression_by_code(self):
        assert codes("""
            def worker(env):
                yield env.timeout(1.0)
                return 42  # statan: ignore[PROC003]
        """) == []

    def test_bare_ignore_suppresses_everything(self):
        assert codes("""
            import time
            def stamp():
                return time.time()  # statan: ignore
        """) == []

    def test_wrong_id_does_not_suppress(self):
        assert "DET001" in codes("""
            import time
            def stamp():
                return time.time()  # statan: ignore[missing-slots]
        """)

    def test_marker_composes_with_other_comments(self):
        assert codes("""
            def get_endpoint(member):
                return None
                yield  # pragma: no cover; statan: ignore[PROC001]
        """) == []

    def test_suppressions_are_counted(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(
            "import time\n"
            "t = time.time()  # statan: ignore[determinism]\n")
        result = check_paths([str(module)])
        assert result.findings == []
        assert result.suppressed == 1

    def test_multi_rule_ignore_list(self):
        # One marker, several targets: both codes on the line go quiet,
        # whitespace around the commas notwithstanding.
        assert codes("""
            import time
            def stamp(env):
                yield env.timeout(1.0)
                return time.time()  # statan: ignore[DET001, PROC003]
        """) == []

    def test_multi_rule_ignore_only_silences_listed(self):
        found = codes("""
            import time
            def stamp():
                return time.time()  # statan: ignore[PROC003,missing-slots]
        """)
        assert "DET001" in found

    def test_suppression_on_decorator_line_covers_statement(self):
        # The marker can sit on the decorator even though the finding
        # anchors to the ``class`` line below it.
        assert codes("""
            @dataclass  # statan: ignore[SLOT001]
            class Hot:
                x: int
        """, path="src/repro/sim/mod.py") == []

    def test_suppression_on_header_line_of_decorated_class(self):
        assert codes("""
            @dataclass
            class Hot:  # statan: ignore[SLOT001]
                x: int
        """, path="src/repro/sim/mod.py") == []

    def test_suppression_anywhere_in_multiline_statement(self):
        # The call spans three lines; the finding anchors to the first,
        # the marker sits on the last.
        assert codes("""
            import time
            t = time.time(
                # wall-clock on purpose: display only
            )  # statan: ignore[DET001]
        """) == []

    def test_multiline_marker_does_not_leak_to_neighbours(self):
        found = codes("""
            import time
            t = time.time(
            )  # statan: ignore[DET001]
            u = time.time()
        """)
        assert found == ["DET001"]


class TestEngine:
    def test_syntax_error_becomes_finding(self):
        result = findings("def broken(:\n")
        assert [finding.code for finding in result] == ["STX001"]
        assert result[0].severity is Severity.ERROR

    def test_select_and_ignore_filter_rules(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text("import time\nt = time.time()\nyield_free = 1\n")
        selected = check_paths([str(module)], select=["missing-slots"])
        assert selected.findings == []
        ignored = check_paths([str(module)], ignore=["determinism"])
        assert ignored.findings == []
        default = check_paths([str(module)])
        assert [f.code for f in default.findings] == ["DET001"]

    def test_select_by_finding_code(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            import time
            def worker(env):
                t = time.time()
                yield env.timeout(1.0)
                return 42
        """))
        only_det = check_paths([str(module)], select=["DET001"])
        assert [f.code for f in only_det.findings] == ["DET001"]
        only_proc = check_paths([str(module)], select=["PROC003"])
        assert [f.code for f in only_proc.findings] == ["PROC003"]

    def test_ignore_by_finding_code_keeps_rule_siblings(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(
            "import time\nimport random\n"
            "t = time.time()\nx = random.random()\n")
        result = check_paths([str(module)], ignore=["DET001"])
        # Ignoring one code leaves the rule's other codes active.
        found = {f.code for f in result.findings}
        assert "DET001" not in found
        assert "DET004" in found  # global ``random`` use survives

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(StatanError):
            check_paths([str(tmp_path)], select=["no-such-rule"])

    def test_unknown_finding_code_raises(self, tmp_path):
        with pytest.raises(StatanError):
            check_paths([str(tmp_path)], select=["DET999"])

    def test_missing_path_raises(self):
        with pytest.raises(StatanError):
            check_paths(["definitely/not/here"])

    def test_min_severity_filters(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            def worker(env):
                yield env.timeout(1.0)
                return 42
        """))
        warn = check_paths([str(module)], min_severity=Severity.WARNING)
        assert [f.code for f in warn.findings] == ["PROC003"]
        err = check_paths([str(module)], min_severity=Severity.ERROR)
        assert err.findings == []

    def test_every_rule_has_id_and_codes(self):
        ids = [rule.id for rule in RULES]
        assert len(ids) == len(set(ids)) == 11
        for rule in RULES:
            assert rule.codes, rule.id
            assert rule.description, rule.id


class TestReporters:
    def _result(self, tmp_path) -> Result:
        module = tmp_path / "mod.py"
        module.write_text("import time\nt = time.time()\n")
        return check_paths([str(module)])

    def test_text_report_lists_findings_and_summary(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "DET001" in text
        assert "checked 1 file:" in text
        assert "1 error(s)" in text

    def test_json_schema(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["version"] == 2
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        assert payload["baselined"] == 0
        assert set(payload["counts"]) == {"info", "warning", "error"}
        assert payload["counts"]["error"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path", "line", "col", "code", "rule", "severity", "message",
            "fingerprint"}
        assert finding["code"] == "DET001"
        assert finding["rule"] == "determinism"
        assert finding["severity"] == "error"
        assert finding["line"] == 2
        assert re.fullmatch(r"[0-9a-f]{40}", finding["fingerprint"])


# -- CLI ------------------------------------------------------------------

class TestStatanCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        module = tmp_path / "clean.py"
        module.write_text("VALUE = 1\n")
        assert cli_main(["statan", str(module)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        module = tmp_path / "dirty.py"
        module.write_text("import time\nt = time.time()\n")
        assert cli_main(["statan", str(module)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_exit_two_on_internal_error(self, tmp_path, capsys):
        missing = tmp_path / "not-there"
        assert cli_main(["statan", str(missing)]) == 2
        assert "statan: error" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        module = tmp_path / "clean.py"
        module.write_text("VALUE = 1\n")
        assert cli_main(
            ["statan", str(module), "--select", "bogus"]) == 2
        capsys.readouterr()

    def test_json_format_and_min_severity(self, tmp_path, capsys):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            def worker(env):
                yield env.timeout(1.0)
                return 42
        """))
        assert cli_main(["statan", str(module), "--format", "json",
                         "--min-severity", "error"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert cli_main(["statan", str(module), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["code"] for f in payload["findings"]] == ["PROC003"]

    def test_select_and_ignore_accept_finding_codes(self, tmp_path,
                                                    capsys):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            import time
            def worker(env):
                t = time.time()
                yield env.timeout(1.0)
                return 42
        """))
        assert cli_main(["statan", str(module), "--select", "PROC003",
                         "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["code"] for f in payload["findings"]] == ["PROC003"]
        assert cli_main(["statan", str(module),
                         "--ignore", "DET001,PROC003"]) == 0
        capsys.readouterr()

    def test_repo_source_tree_is_clean(self, capsys):
        # The acceptance bar: zero unsuppressed findings in src/repro
        # beyond the reviewed fingerprints in statan-baseline.json.
        root = pathlib.Path(__file__).resolve().parent.parent
        assert cli_main(["statan", str(root / "src/repro"),
                         "--baseline",
                         str(root / "statan-baseline.json")]) == 0
        capsys.readouterr()
