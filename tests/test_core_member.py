"""Unit tests for BalancerMember, Endpoint, and the 3-state machine."""

import numpy as np
import pytest

from repro.core import BalancerMember, MemberState, StateConfig
from repro.errors import ConfigurationError, SimulationError
from repro.osmodel import Host, MillibottleneckProfile
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer
from repro.workload import Request, get_interaction


def make_member(env, pool_size=3, preconnect=True, state_config=None,
                flush=None):
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    tomcat_host = Host(env, "tomcat1", flush_profile=flush,
                       disk_bandwidth=10e6)
    tomcat = TomcatServer(env, "tomcat1", tomcat_host, mysql, max_threads=4)
    member = BalancerMember(env, tomcat, index=0, pool_size=pool_size,
                            preconnect=preconnect,
                            state_config=state_config)
    return member, tomcat


class TestEndpointPool:
    def test_acquire_and_release(self):
        env = Environment()
        member, _ = make_member(env)
        endpoint = member.try_acquire()
        assert endpoint is not None
        assert member.pool.count == 1
        endpoint.release()
        assert member.pool.count == 0
        assert endpoint.released

    def test_double_release_rejected(self):
        env = Environment()
        member, _ = make_member(env)
        endpoint = member.try_acquire()
        endpoint.release()
        with pytest.raises(SimulationError):
            endpoint.release()

    def test_pool_exhaustion_fails_probe(self):
        env = Environment()
        member, _ = make_member(env, pool_size=2)
        first = member.try_acquire()
        second = member.try_acquire()
        assert first and second
        assert member.try_acquire() is None
        first.release()
        assert member.try_acquire() is not None

    def test_preconnected_pool_ignores_responsiveness(self):
        """Reusing an established connection works mid-stall: the
        kernel buffers the send even though the app is frozen."""
        env = Environment()
        profile = MillibottleneckProfile(flush_interval=0.5,
                                         dirty_threshold_bytes=1e5)
        member, tomcat = make_member(env, pool_size=2, flush=profile)
        tomcat.host.write_file(5e6)  # 500 ms stall at t=0.5
        result = {}

        def probe(env):
            yield env.timeout(0.6)  # mid-stall
            assert not tomcat.responsive
            result["endpoint"] = member.try_acquire()

        env.process(probe(env))
        env.run(until=0.7)
        assert result["endpoint"] is not None

    def test_cold_pool_requires_responsive_backend(self):
        """Opening a NEW connection needs the backend to answer."""
        env = Environment()
        profile = MillibottleneckProfile(flush_interval=0.5,
                                         dirty_threshold_bytes=1e5)
        member, tomcat = make_member(env, pool_size=2, preconnect=False,
                                     flush=profile)
        tomcat.host.write_file(5e6)
        result = {}

        def probe(env):
            yield env.timeout(0.6)  # mid-stall
            result["mid_stall"] = member.try_acquire()
            yield env.timeout(0.6)  # after recovery
            result["recovered"] = member.try_acquire()

        env.process(probe(env))
        env.run(until=1.5)
        assert result["mid_stall"] is None
        assert result["recovered"] is not None

    def test_connections_persist_after_release(self):
        env = Environment()
        member, tomcat = make_member(env, pool_size=1, preconnect=False)
        endpoint = member.try_acquire()  # establishes the connection
        endpoint.release()
        # Freeze the backend; reuse must still work (connected slot).
        profile = MillibottleneckProfile(flush_interval=0.5,
                                         dirty_threshold_bytes=1e5)
        # Simulate stall by exhausting iowait directly.
        def stall(env):
            yield from tomcat.host.cpu.stall(0.5)
        env.process(stall(env))
        env.run(until=0.1)
        assert not tomcat.responsive
        assert member.try_acquire() is not None


class TestStateMachine:
    def test_initially_available(self):
        env = Environment()
        member, _ = make_member(env)
        assert member.state is MemberState.AVAILABLE
        assert member.eligible(0.0)

    def test_busy_then_recheck_eligibility(self):
        env = Environment()
        config = StateConfig(busy_recheck=0.1)
        member, _ = make_member(env, state_config=config)
        member.mark_busy()
        assert member.state is MemberState.BUSY
        assert not member.eligible(0.05)
        assert member.eligible(0.15)

    def test_busy_retries_escalate_to_error(self):
        env = Environment()
        config = StateConfig(busy_recheck=0.1, max_busy_retries=3)
        member, _ = make_member(env, state_config=config)

        def failing_probes(env):
            member.mark_busy()  # episode 1
            for _ in range(3):  # episodes 2-4: 4 > max 3 -> Error
                yield env.timeout(0.11)
                member.mark_busy()

        env.process(failing_probes(env))
        env.run()
        assert member.state is MemberState.ERROR

    def test_concurrent_busy_reports_count_once(self):
        """Many stuck workers timing out together are one episode, not
        many retries — a millibottleneck must not escalate to Error."""
        env = Environment()
        config = StateConfig(busy_recheck=0.1, max_busy_retries=3)
        member, _ = make_member(env, state_config=config)
        for _ in range(50):  # all at t=0
            member.mark_busy()
        assert member.state is MemberState.BUSY
        assert member.busy_retries == 1

    def test_error_recovery_window(self):
        env = Environment()
        config = StateConfig(error_recovery=5.0)
        member, _ = make_member(env, state_config=config)
        member.mark_error()
        assert not member.eligible(4.0)
        assert member.eligible(5.5)

    def test_mark_available_resets_retries(self):
        env = Environment()
        config = StateConfig(max_busy_retries=2)
        member, _ = make_member(env, state_config=config)
        member.mark_busy()
        member.mark_busy()
        member.mark_available()
        assert member.busy_retries == 0
        member.mark_busy()
        assert member.state is MemberState.BUSY

    def test_endpoint_release_recovers_busy_member(self):
        env = Environment()
        member, _ = make_member(env)
        endpoint = member.try_acquire()
        member.mark_busy()
        endpoint.release()
        assert member.state is MemberState.AVAILABLE

    def test_mark_busy_does_not_demote_error(self):
        env = Environment()
        member, _ = make_member(env)
        member.mark_error()
        member.mark_busy()
        assert member.state is MemberState.ERROR

    def test_state_config_validation(self):
        with pytest.raises(ConfigurationError):
            StateConfig(busy_recheck=0)
        with pytest.raises(ConfigurationError):
            StateConfig(max_busy_retries=0)
        with pytest.raises(ConfigurationError):
            StateConfig(error_recovery=0)


class TestLbValueTrace:
    def test_changes_are_traced(self):
        env = Environment()
        member, _ = make_member(env)
        member.lb_value = 1.0
        member.lb_value = 2.0
        assert member.lb_trace.values == [1.0, 2.0]

    def test_tracing_can_be_disabled(self):
        env = Environment()
        mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
        tomcat = TomcatServer(env, "t", Host(env, "t"), mysql, max_threads=2)
        member = BalancerMember(env, tomcat, 0, trace_lb_values=False)
        member.lb_value = 5.0
        assert member.lb_trace is None
        assert member.lb_value == 5.0


class TestSend:
    def test_send_round_trip(self):
        env = Environment()
        member, tomcat = make_member(env)
        request = Request(env, 1, get_interaction("ViewStory"), 0)

        def proc(env):
            yield from member.send(request)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value > 0
        assert tomcat.requests_completed == 1
