"""Unit tests for Store, DropQueue, Sampler, and TraceLog."""

import pytest

from repro.sim import DropQueue, Environment, Sampler, Store, TraceLog


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in "abc":
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [item for item, _ in received] == ["a", "b", "c"]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (item, env.now)

    def producer(env):
        yield env.timeout(2)
        yield store.put("late")

    p = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert p.value == ("late", 2.0)


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    put_times = []

    def producer(env):
        for item in range(3):
            yield store.put(item)
            put_times.append(env.now)

    def consumer(env):
        while True:
            yield env.timeout(1)
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run(until=10)
    assert put_times == [0.0, 1.0, 2.0]


def test_store_validation_and_introspection():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
    store = Store(env, capacity=7)
    assert store.capacity == 7
    assert len(store) == 0
    store.put("x")
    env.run()
    assert len(store) == 1
    assert "items=1" in repr(store)


def test_drop_queue_accepts_until_full():
    env = Environment()
    queue = DropQueue(env, capacity=3)
    results = [queue.offer(i) for i in range(5)]
    assert results == [True, True, True, False, False]
    assert queue.offered == 5
    assert queue.accepted == 3
    assert queue.dropped == 2
    assert queue.is_full


def test_drop_queue_drop_callback():
    env = Environment()
    dropped = []
    queue = DropQueue(env, capacity=1, on_drop=dropped.append)
    queue.offer("kept")
    queue.offer("lost")
    assert dropped == ["lost"]


def test_drop_queue_hands_item_to_waiting_consumer():
    env = Environment()
    queue = DropQueue(env, capacity=1)

    def consumer(env):
        item = yield queue.get()
        return (item, env.now)

    def producer(env):
        yield env.timeout(1)
        assert queue.offer("direct")

    p = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert p.value == ("direct", 1.0)
    # Direct handoff never sits in the queue.
    assert len(queue) == 0


def test_drop_queue_direct_handoff_not_counted_against_capacity():
    env = Environment()
    queue = DropQueue(env, capacity=1)
    queue.offer("fills")

    def consumer(env):
        first = yield queue.get()
        second = yield queue.get()
        return [first, second]

    def producer(env):
        # By now the consumer is parked on its second get(): the offer is
        # handed over directly even though the queue capacity is 1.
        yield env.timeout(1)
        assert queue.offer("second")

    p = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert p.value == ["fills", "second"]


def test_drop_queue_peak_length():
    env = Environment()
    queue = DropQueue(env, capacity=10)
    for i in range(6):
        queue.offer(i)

    def consumer(env):
        for _ in range(6):
            yield queue.get()

    env.process(consumer(env))
    env.run()
    assert queue.peak_length == 6
    assert len(queue) == 0


def test_drop_queue_validation():
    env = Environment()
    with pytest.raises(ValueError):
        DropQueue(env, capacity=0)


def test_drop_queue_repr():
    env = Environment()
    queue = DropQueue(env, capacity=2)
    queue.offer(1)
    assert "1/2" in repr(queue)


def test_sampler_records_on_period():
    env = Environment()
    state = {"value": 0}

    def bump(env):
        while True:
            yield env.timeout(0.1)
            state["value"] += 1

    env.process(bump(env))
    sampler = Sampler(env, lambda: state["value"], period=0.25, name="probe")
    env.run(until=1.0)
    times, values = sampler.series()
    assert times == pytest.approx([0.0, 0.25, 0.5, 0.75])
    # At the 0.5 tie the sampler's timeout was scheduled first (at 0.25,
    # before the bumper's 0.4), so it samples before the 5th bump lands.
    assert values == [0, 2, 4, 7]
    assert len(sampler) == 4


def test_sampler_stop():
    env = Environment()
    sampler = Sampler(env, lambda: 1, period=0.5)
    env.run(until=1.2)
    sampler.stop()
    sampler.stop()  # idempotent
    env.run(until=5.0)
    assert len(sampler) == 3  # samples at 0.0, 0.5, 1.0 only


def test_sampler_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Sampler(env, lambda: 0, period=0)


def test_tracelog_records_and_filters():
    env = Environment()
    trace = TraceLog(env, name="dispatch")

    def proc(env):
        for i in range(5):
            trace.log({"seq": i})
            yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert len(trace) == 5
    window = trace.between(1.0, 3.0)
    assert [payload["seq"] for _, payload in window] == [1, 2]
    assert [t for t, _ in trace] == [0.0, 1.0, 2.0, 3.0, 4.0]
