"""Unit tests for the tier servers (Apache, Tomcat, MySQL)."""

import numpy as np
import pytest

from repro.core.balancer import DirectDispatcher
from repro.errors import ConfigurationError
from repro.osmodel import Host, MillibottleneckProfile
from repro.sim import Environment, Event
from repro.tiers import ApacheServer, MySqlServer, TomcatServer
from repro.workload import Request, get_interaction


def make_stack(env, tomcat_threads=4, mysql_connections=8,
               tomcat_flush=None):
    mysql_host = Host(env, "mysql1")
    mysql = MySqlServer(env, "mysql1", mysql_host,
                        max_connections=mysql_connections)
    tomcat_host = Host(env, "tomcat1", flush_profile=tomcat_flush,
                       disk_bandwidth=10e6)
    tomcat = TomcatServer(env, "tomcat1", tomcat_host, mysql,
                          max_threads=tomcat_threads)
    return mysql, tomcat


def submit_request(env, tomcat, interaction_name="ViewStory"):
    request = Request(env, 1, get_interaction(interaction_name), 0)
    reply = Event(env)
    tomcat.submit(request, reply)
    return request, reply


class TestMySqlServer:
    def test_query_consumes_cpu_and_connection(self):
        env = Environment()
        mysql, _ = make_stack(env)
        request = Request(env, 1, get_interaction("ViewStory"), 0)

        def proc(env):
            yield from mysql.query(request)
            return env.now

        p = env.process(proc(env))
        env.run()
        interaction = request.interaction
        assert p.value == pytest.approx(
            interaction.db_queries * interaction.mysql_cpu)
        assert mysql.queries_executed == interaction.db_queries
        assert mysql.requests_completed == 1

    def test_zero_query_interactions_skip_connection(self):
        env = Environment()
        mysql, _ = make_stack(env)
        request = Request(env, 1, get_interaction("Default"), 0)

        def proc(env):
            yield from mysql.query(request)

        env.process(proc(env))
        env.run()
        assert mysql.queries_executed == 0
        assert mysql.requests_completed == 0

    def test_connection_pool_bounds_concurrency(self):
        env = Environment()
        mysql, _ = make_stack(env, mysql_connections=2)
        peak = {"value": 0}

        def proc(env):
            request = Request(env, 1, get_interaction("ViewStory"), 0)
            with mysql.connections.request() as conn:
                yield conn
                peak["value"] = max(peak["value"], mysql.connections.count)
                yield env.timeout(0.01)

        for _ in range(6):
            env.process(proc(env))
        env.run()
        assert peak["value"] == 2

    def test_queue_metrics(self):
        env = Environment()
        mysql, _ = make_stack(env, mysql_connections=1)

        def hold(env):
            with mysql.connections.request() as conn:
                yield conn
                yield env.timeout(1.0)

        for _ in range(3):
            env.process(hold(env))
        env.run(until=0.5)
        assert mysql.queue_length == 2
        assert mysql.in_server == 3

    def test_validation(self):
        env = Environment()
        host = Host(env, "m")
        with pytest.raises(ConfigurationError):
            MySqlServer(env, "m", host, max_connections=0)


class TestTomcatServer:
    def test_processes_request_end_to_end(self):
        env = Environment()
        _, tomcat = make_stack(env)
        request, reply = submit_request(env, tomcat)
        env.run(until=1.0)
        assert reply.triggered
        assert tomcat.requests_completed == 1
        assert tomcat.bytes_served == request.interaction.traffic_bytes

    def test_log_bytes_dirty_the_page_cache(self):
        env = Environment()
        _, tomcat = make_stack(env)
        request, _ = submit_request(env, tomcat)
        env.run(until=1.0)
        assert tomcat.host.pagecache.dirty_bytes == pytest.approx(
            request.interaction.log_bytes)

    def test_thread_pool_bounds_parallelism(self):
        env = Environment()
        _, tomcat = make_stack(env, tomcat_threads=2)
        for i in range(6):
            submit_request(env, tomcat)
        env.run(until=0.0005)
        assert tomcat.busy_threads == 2
        assert tomcat.queue_length == 4
        assert tomcat.in_server == 6
        env.run(until=2.0)
        assert tomcat.requests_completed == 6
        assert tomcat.in_server == 0

    def test_responsive_flips_during_flush(self):
        env = Environment()
        profile = MillibottleneckProfile(flush_interval=0.5,
                                         dirty_threshold_bytes=1e5)
        _, tomcat = make_stack(env, tomcat_flush=profile)
        tomcat.host.write_file(2e6)  # 200 ms stall at 10 MB/s
        probes = []

        def prober(env):
            while env.now < 1.2:
                probes.append((round(env.now, 2), tomcat.responsive))
                yield env.timeout(0.1)

        env.process(prober(env))
        env.run(until=1.5)
        states = dict(probes)
        assert states[0.4] is True       # before flush
        assert states[0.6] is False      # mid-stall
        assert states[0.8] is True       # recovered

    def test_validation(self):
        env = Environment()
        mysql, _ = make_stack(env)
        host = Host(env, "t")
        with pytest.raises(ConfigurationError):
            TomcatServer(env, "t", host, mysql, max_threads=0)


class TestApacheServer:
    def make_apache(self, env, tomcat, max_clients=4, backlog=8):
        host = Host(env, "apache1")
        apache = ApacheServer(env, "apache1", host,
                              max_clients=max_clients, backlog=backlog)
        apache.attach_dispatcher(DirectDispatcher(env, tomcat))
        return apache

    def test_full_request_path(self):
        env = Environment()
        _, tomcat = make_stack(env)
        apache = self.make_apache(env, tomcat)
        request = Request(env, 1, get_interaction("ViewStory"), 0)
        assert apache.socket.offer(request)
        env.run(until=1.0)
        assert request.completion.triggered
        assert request.served_by == "tomcat1"
        assert request.accepted_at is not None
        assert request.dispatched_at is not None
        assert apache.requests_completed == 1
        assert apache.host.pagecache.dirty_bytes == pytest.approx(
            apache.access_log_bytes)

    def test_worker_pool_and_backlog_bound_occupancy(self):
        env = Environment()
        _, tomcat = make_stack(env, tomcat_threads=1)
        apache = self.make_apache(env, tomcat, max_clients=2, backlog=3)
        requests = [Request(env, i, get_interaction("ViewStory"), i)
                    for i in range(8)]
        accepted = [apache.socket.offer(r) for r in requests]
        # 2 go to workers via direct handoff? No workers are waiting yet
        # (processes start at t=0), so 3 queue and 5 drop.
        assert sum(accepted) == 3
        assert apache.dropped_packets == 5
        env.run(until=2.0)
        assert apache.requests_completed == 3

    def test_in_server_counts_queue_plus_busy(self):
        env = Environment()
        _, tomcat = make_stack(env, tomcat_threads=1)
        apache = self.make_apache(env, tomcat, max_clients=2, backlog=10)

        def feed(env):
            yield env.timeout(0.001)  # let workers start
            for i in range(5):
                apache.socket.offer(
                    Request(env, i, get_interaction("ViewStory"), i))
            yield env.timeout(0.002)
            assert apache.busy_workers == 2
            assert apache.queue_length == 3
            assert apache.in_server == 5

        env.process(feed(env))
        env.run(until=1.0)

    def test_double_dispatcher_rejected(self):
        env = Environment()
        _, tomcat = make_stack(env)
        apache = self.make_apache(env, tomcat)
        with pytest.raises(ConfigurationError):
            apache.attach_dispatcher(DirectDispatcher(env, tomcat))

    def test_validation(self):
        env = Environment()
        host = Host(env, "a")
        with pytest.raises(ConfigurationError):
            ApacheServer(env, "a", host, max_clients=0)
