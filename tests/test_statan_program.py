"""Whole-program statan passes: seed provenance, races, RES003.

Covers the ISSUE 7 acceptance fixtures — an unthreaded RNG two call
levels below the function that holds the experiment's generator
(SEED002), a read-yield-write hazard in a process generator (RACE001) —
and the negative shapes the passes must NOT flag: Resource-guarded
sections, properly threaded ``default_rng([seed, tag])`` helpers,
atomic aug-assigns after a yield, and snapshot iteration.
"""

import ast
import textwrap

import pytest

from repro.statan import check_paths
from repro.statan.callgraph import (
    CallGraph,
    build_modules,
    module_name_for_path,
)
from repro.statan.dataflow import summarize
from repro.statan.program import PROGRAM_RULES, check_program


def run(source: str, path: str = "pkg/mod.py"):
    source = textwrap.dedent(source)
    return check_program([(path, source, ast.parse(source))])


def codes(findings):
    return [finding.code for finding in findings]


# -- project index / call graph -------------------------------------------

class TestCallGraph:
    def test_module_name_strips_src_prefix(self):
        assert module_name_for_path(
            "src/repro/sim/core.py") == "repro.sim.core"
        assert module_name_for_path(
            "/abs/checkout/src/repro/__init__.py") == "repro"
        assert module_name_for_path("tools/gen.py") == "tools.gen"

    def test_resolves_calls_across_modules(self):
        lib = textwrap.dedent("""
            def helper(x):
                return x + 1
        """)
        app = textwrap.dedent("""
            from pkg.lib import helper

            def entry(n):
                return helper(n)
        """)
        modules = build_modules([
            ("src/pkg/lib.py", lib, ast.parse(lib)),
            ("src/pkg/app.py", app, ast.parse(app)),
        ])
        graph = CallGraph(modules)
        assert "pkg.lib::helper" in graph.callees_of("pkg.app::entry")
        assert "pkg.app::entry" in graph.callers_of("pkg.lib::helper")

    def test_self_method_resolution_walks_bases(self):
        source = textwrap.dedent("""
            class Base:
                def shared(self):
                    return 1

            class Child(Base):
                def go(self):
                    return self.shared()
        """)
        graph = CallGraph(build_modules(
            [("src/pkg/m.py", source, ast.parse(source))]))
        assert "pkg.m::Base.shared" in graph.callees_of("pkg.m::Child.go")

    def test_reachability_chain(self):
        source = textwrap.dedent("""
            def a(rng):
                return b()

            def b():
                return c()

            def c():
                return 1
        """)
        graph = CallGraph(build_modules(
            [("src/pkg/m.py", source, ast.parse(source))]))
        parents = graph.reachable_from(["pkg.m::a"])
        assert parents["pkg.m::c"] == "pkg.m::b"
        assert graph.chain(parents, "pkg.m::c") == [
            "pkg.m::a", "pkg.m::b", "pkg.m::c"]


# -- summaries -------------------------------------------------------------

class TestSummaries:
    def _summary(self, source, name=None):
        tree = ast.parse(textwrap.dedent(source))
        funcs = [node for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)]
        if name is not None:
            funcs = [f for f in funcs if f.name == name]
        return summarize(funcs[0])

    def test_rng_param_detected(self):
        assert self._summary("def f(env, rng): pass").rng_available()
        assert self._summary("def f(env, seed): pass").rng_available()
        assert not self._summary("def f(env): pass").rng_available()

    def test_returns_rng_from_params(self):
        summary = self._summary("""
            import numpy as np
            def tagged_rng(seed, tag):
                return np.random.default_rng([seed, tag])
        """)
        assert summary.returns_rng_from == {"seed", "tag"}

    def test_param_writes_and_ret_reads(self):
        summary = self._summary("""
            class T:
                def _set(self, n):
                    self.pending = n
        """)
        assert summary.param_writes == {"n": {("self", "pending")}}
        summary = self._summary("""
            class T:
                def _get(self):
                    return len(self.queue)
        """)
        assert ("self", "queue") in summary.ret_reads

    def test_returns_acquired_direct_and_wrapped(self):
        direct = self._summary("""
            class M:
                def grab(self):
                    return self.pool.acquire()
        """)
        assert direct.returns_acquired
        wrapped = self._summary("""
            class M:
                def grab(self):
                    slot = self.pool.acquire()
                    return Endpoint(self, slot)
        """)
        assert wrapped.returns_acquired
        plain = self._summary("""
            class M:
                def grab(self):
                    return self.size
        """)
        assert not plain.returns_acquired


# -- seed provenance -------------------------------------------------------

class TestSeedProvenance:
    def test_seed002_two_call_levels_deep(self):
        findings = run("""
            import numpy as np

            def top(env, rng):
                return mid(env)

            def mid(env):
                return leaf(env)

            def leaf(env):
                gen = np.random.default_rng(1234)
                return gen
        """)
        assert codes(findings) == ["SEED002"]
        (finding,) = findings
        assert "top -> mid -> leaf" in finding.message

    def test_fallback_shape_with_rng_param_is_exempt(self):
        findings = run("""
            import numpy as np

            def build(env, rng=None):
                if rng is None:
                    rng = np.random.default_rng(7)
                return rng
        """)
        assert codes(findings) == []

    def test_threaded_tagged_rng_helper_not_flagged(self):
        findings = run("""
            import numpy as np

            def tagged_rng(seed, tag):
                return np.random.default_rng([seed, tag])

            def top(env, rng):
                return mid(env, 7)

            def mid(env, seed):
                return use(env, seed)

            def use(env, seed):
                return tagged_rng(seed, 3)
        """)
        assert codes(findings) == []

    def test_constant_seeded_helper_call_flagged(self):
        findings = run("""
            import numpy as np

            def tagged_rng(seed, tag):
                return np.random.default_rng([seed, tag])

            def top(env, rng):
                return mid(env)

            def mid(env):
                return tagged_rng(1234, 3)
        """)
        assert "SEED002" in codes(findings)

    def test_unreachable_constant_rng_not_seed002(self):
        # Nothing above it ever held a generator: nothing to thread.
        findings = run("""
            import numpy as np

            def standalone(env):
                return np.random.default_rng(99)
        """)
        assert codes(findings) == []

    def test_seed003_flags_every_site_sharing_a_constant(self):
        findings = run("""
            import numpy as np

            SHARED = 7

            def a(env, rng=None):
                return rng or np.random.default_rng(SHARED)

            def b(env, rng=None):
                return rng or np.random.default_rng(7)
        """)
        assert codes(findings) == ["SEED003", "SEED003"]
        for finding in findings:
            assert "constant seed 7" in finding.message

    def test_distinct_constants_are_fine(self):
        findings = run("""
            import numpy as np

            def a(env, rng=None):
                return rng or np.random.default_rng(1)

            def b(env, rng=None):
                return rng or np.random.default_rng(2)
        """)
        assert codes(findings) == []

    def test_derived_seed_is_clean(self):
        findings = run("""
            import numpy as np

            def spawn(env, rng):
                return np.random.default_rng(rng.integers(2 ** 63))
        """)
        assert codes(findings) == []


# -- yield atomicity -------------------------------------------------------

class TestYieldAtomicity:
    def test_race001_read_yield_write(self):
        findings = run("""
            class Tier:
                def work(self, env):
                    count = self.pending
                    yield env.timeout(1.0)
                    self.pending = count + 1
        """)
        assert codes(findings) == ["RACE001"]
        assert "self.pending" in findings[0].message

    def test_race001_through_helper_summaries(self):
        findings = run("""
            class Tier:
                def _get(self):
                    return self.pending

                def _set(self, n):
                    self.pending = n

                def work(self, env):
                    n = self._get()
                    yield env.timeout(1.0)
                    self._set(n + 1)
        """)
        assert codes(findings) == ["RACE001"]

    def test_no_yield_between_is_clean(self):
        findings = run("""
            class Tier:
                def work(self, env):
                    count = self.pending
                    self.pending = count + 1
                    yield env.timeout(1.0)
        """)
        assert codes(findings) == []

    def test_resource_guard_exempts_region(self):
        findings = run("""
            class Tier:
                def work(self, env):
                    with self.pool.request() as req:
                        yield req
                        count = self.pending
                        yield env.timeout(1.0)
                        self.pending = count + 1
        """)
        assert codes(findings) == []

    def test_aug_assign_after_yield_is_atomic(self):
        findings = run("""
            class Prober:
                def loop(self, env):
                    while True:
                        yield env.timeout(1.0)
                        self.probes_sent += 1
        """)
        assert codes(findings) == []

    def test_race002_check_then_act(self):
        findings = run("""
            class LB:
                def dispatch(self, env, member):
                    if member.healthy:
                        yield env.timeout(0.5)
                        member.healthy = False
        """)
        assert codes(findings) == ["RACE002"]
        assert "member.healthy" in findings[0].message

    def test_race002_recheck_after_yield_is_clean(self):
        findings = run("""
            class LB:
                def dispatch(self, env, member):
                    if member.healthy:
                        yield env.timeout(0.5)
                        if member.healthy:
                            member.healthy = False
        """)
        assert codes(findings) == []

    def test_race003_yield_inside_shared_iteration(self):
        findings = run("""
            class LB:
                def drain(self, env):
                    for item in self.queue:
                        yield env.timeout(item)
        """)
        assert codes(findings) == ["RACE003"]

    def test_race003_snapshot_iteration_is_clean(self):
        findings = run("""
            class LB:
                def drain(self, env):
                    for item in list(self.queue):
                        yield env.timeout(item)
        """)
        assert codes(findings) == []

    def test_non_process_generators_are_skipped(self):
        # A plain data generator (no eventish yields, no docstring
        # marker) is not a sim process; no preemption happens inside.
        findings = run("""
            class Table:
                def rows(self):
                    snapshot = self.count
                    yield snapshot
                    self.count = snapshot + 1
        """)
        assert codes(findings) == []


# -- resource escape -------------------------------------------------------

_ESCAPE_PRELUDE = """
    class Member:
        def try_acquire(self):
            slot = self.pool.acquire()
            return Endpoint(self, slot)

    class Endpoint:
        def __init__(self, member, slot):
            self.member = member
            self.slot = slot

        def release(self):
            self.member.pool.release()
"""


def run_escape(snippet: str):
    # Dedent each piece separately: concatenating literals with
    # different indent levels would defeat a single dedent pass.
    return run(textwrap.dedent(_ESCAPE_PRELUDE)
               + textwrap.dedent(snippet))


class TestResourceEscape:
    def test_res003_leaked_handle(self):
        findings = run_escape("""
            class LB:
                def send(self, env, member):
                    endpoint = member.try_acquire()
                    yield env.timeout(1.0)
        """)
        assert codes(findings) == ["RES003"]
        assert "endpoint" in findings[0].message

    def test_res003_discarded_result(self):
        findings = run_escape("""
            class LB:
                def poke(self, env, member):
                    member.try_acquire()
                    yield env.timeout(1.0)
        """)
        assert codes(findings) == ["RES003"]
        assert "discarded" in findings[0].message

    def test_released_handle_is_clean(self):
        findings = run_escape("""
            class LB:
                def send(self, env, member):
                    endpoint = member.try_acquire()
                    yield env.timeout(1.0)
                    endpoint.release()
        """)
        assert codes(findings) == []

    def test_handle_passed_on_is_clean(self):
        findings = run_escape("""
            class LB:
                def send(self, env, member):
                    endpoint = member.try_acquire()
                    yield from self._ship(endpoint)

                def _ship(self, endpoint):
                    yield endpoint.member
        """)
        assert codes(findings) == []

    def test_handle_returned_is_clean(self):
        findings = run_escape("""
            class LB:
                def grab_endpoint(self, member):
                    endpoint = member.try_acquire()
                    return endpoint
        """)
        assert codes(findings) == []

    def test_yield_from_binding_counts_as_bound(self):
        findings = run_escape("""
            class Mech:
                def get_endpoint(self, member):
                    endpoint = member.try_acquire()
                    return endpoint
                    yield

            class LB:
                def send(self, env, member):
                    endpoint = yield from self.mech.get_endpoint(member)
                    yield env.timeout(1.0)
                    endpoint.release()
        """)
        assert codes(findings) == []


# -- engine integration ----------------------------------------------------

class TestEngineIntegration:
    def test_check_paths_runs_program_passes(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            class Tier:
                def work(self, env):
                    count = self.pending
                    yield env.timeout(1.0)
                    self.pending = count + 1
        """))
        result = check_paths([str(module)])
        assert "RACE001" in [f.code for f in result.findings]

    def test_no_program_opt_out(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            class Tier:
                def work(self, env):
                    count = self.pending
                    yield env.timeout(1.0)
                    self.pending = count + 1
        """))
        result = check_paths([str(module)], program_rules=None)
        assert [f.code for f in result.findings] == []

    def test_suppression_comment_silences_program_finding(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            class Tier:
                def work(self, env):
                    count = self.pending
                    yield env.timeout(1.0)
                    self.pending = count + 1  # statan: ignore[RACE001]
        """))
        result = check_paths([str(module)])
        assert [f.code for f in result.findings] == []
        assert result.suppressed == 1

    def test_select_program_rule_by_family_and_code(self, tmp_path):
        module = tmp_path / "mod.py"
        module.write_text(textwrap.dedent("""
            import time

            class Tier:
                def work(self, env):
                    t = time.time()
                    count = self.pending
                    yield env.timeout(1.0)
                    self.pending = count + 1
        """))
        only_races = check_paths(
            [str(module)], select=["yield-atomicity"])
        assert {f.code for f in only_races.findings} == {"RACE001"}
        only_race001 = check_paths([str(module)], select=["RACE001"])
        assert {f.code for f in only_race001.findings} == {"RACE001"}
        without = check_paths([str(module)], ignore=["RACE001"])
        assert "RACE001" not in {f.code for f in without.findings}
        assert "DET001" in {f.code for f in without.findings}

    def test_program_rules_have_ids_and_codes(self):
        assert [rule.id for rule in PROGRAM_RULES] == [
            "seed-provenance", "yield-atomicity", "resource-escape"]
        all_codes = [code for rule in PROGRAM_RULES
                     for code in rule.codes]
        assert all_codes == [
            "SEED002", "SEED003", "RACE001", "RACE002", "RACE003",
            "RES003"]
        for rule in PROGRAM_RULES:
            assert rule.description


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
