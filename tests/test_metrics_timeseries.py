"""Unit tests for TimeSeries."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.metrics import TimeSeries


def make_series(points):
    return TimeSeries("test", points)


def test_append_and_iterate():
    series = make_series([(0.0, 1.0), (1.0, 2.0)])
    assert len(series) == 2
    assert list(series) == [(0.0, 1.0), (1.0, 2.0)]


def test_append_rejects_time_reversal():
    series = make_series([(5.0, 1.0)])
    with pytest.raises(AnalysisError):
        series.append(4.0, 1.0)


def test_equal_times_allowed():
    series = make_series([(1.0, 1.0), (1.0, 2.0)])
    assert len(series) == 2


def test_from_arrays_roundtrip():
    series = TimeSeries.from_arrays([0, 1, 2], [5, 6, 7], name="x")
    times, values = series.as_arrays()
    assert isinstance(times, np.ndarray)
    assert list(times) == [0, 1, 2]
    assert list(values) == [5, 6, 7]


def test_from_arrays_length_mismatch():
    with pytest.raises(AnalysisError):
        TimeSeries.from_arrays([0, 1], [5])


def test_slice_half_open():
    series = make_series([(0, 0), (1, 1), (2, 2), (3, 3)])
    sub = series.slice(1, 3)
    assert list(sub) == [(1.0, 1.0), (2.0, 2.0)]


def test_value_at_step_interpolation():
    series = make_series([(0, 10), (2, 20), (4, 30)])
    assert series.value_at(0) == 10
    assert series.value_at(1.9) == 10
    assert series.value_at(2.0) == 20
    assert series.value_at(100) == 30


def test_value_at_before_first_sample_raises():
    series = make_series([(5, 1)])
    with pytest.raises(AnalysisError):
        series.value_at(4.9)


def test_value_at_empty_raises():
    with pytest.raises(AnalysisError):
        TimeSeries().value_at(0)


def test_min_max_mean_argmax():
    series = make_series([(0, 3), (1, 9), (2, 6)])
    assert series.max() == 9
    assert series.min() == 3
    assert series.mean() == pytest.approx(6.0)
    assert series.argmax() == 1


def test_stats_on_empty_raise():
    empty = TimeSeries()
    for method in (empty.max, empty.min, empty.mean, empty.argmax):
        with pytest.raises(AnalysisError):
            method()


def test_to_rate_differentiates_cumulative_counter():
    series = make_series([(0, 0), (1, 10), (3, 30)])
    rate = series.to_rate()
    assert list(rate) == [(1.0, 10.0), (3.0, 10.0)]


def test_to_rate_skips_zero_dt():
    series = make_series([(0, 0), (1, 5), (1, 7), (2, 9)])
    rate = series.to_rate()
    assert rate.times == [1.0, 2.0]


def test_to_rate_of_short_series_is_empty():
    assert len(make_series([(0, 1)]).to_rate()) == 0


def test_resample_max():
    series = make_series([(0.00, 1), (0.02, 5), (0.06, 2), (0.30, 9)])
    resampled = series.resample_max(0.05)
    assert resampled.times == pytest.approx([0.0, 0.05, 0.30])
    assert resampled.values == [5, 2, 9]


def test_resample_mean():
    series = make_series([(0.0, 2), (0.01, 4), (0.06, 10)])
    resampled = series.resample_mean(0.05)
    assert resampled.values == pytest.approx([3.0, 10.0])


def test_resample_rejects_bad_window():
    with pytest.raises(AnalysisError):
        make_series([(0, 1)]).resample_max(0)


def test_repr_mentions_name_and_size():
    series = make_series([(0, 1)])
    series.name = "queue"
    assert "queue" in repr(series)
    assert "n=1" in repr(series)
