"""Unit tests for the two-level LoadBalancer and DirectDispatcher."""

import numpy as np
import pytest

from repro.core import (
    BalancerConfig,
    DirectDispatcher,
    LoadBalancer,
    MemberState,
    ModifiedGetEndpoint,
    OriginalGetEndpoint,
    StateConfig,
    TotalRequestPolicy,
    CurrentLoadPolicy,
    get_bundle,
    TABLE1_BUNDLES,
)
from repro.errors import ConfigurationError, NoCandidateError
from repro.osmodel import Host
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer
from repro.workload import Request, get_interaction


def make_backends(env, count=4, threads=4):
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    backends = []
    for i in range(count):
        name = "tomcat{}".format(i + 1)
        backends.append(TomcatServer(env, name, Host(env, name), mysql,
                                     max_threads=threads))
    return backends


def make_balancer(env, backends=None, policy=None, mechanism=None,
                  **kwargs):
    backends = backends or make_backends(env)
    return LoadBalancer(
        env, "apache1.lb", backends,
        policy=policy or TotalRequestPolicy(),
        mechanism=mechanism or ModifiedGetEndpoint(),
        rng=np.random.default_rng(0),
        **kwargs,
    )


def dispatch_n(env, balancer, n, spacing=0.01):
    done = []

    def proc(env, i):
        yield env.timeout(i * spacing)
        request = Request(env, i, get_interaction("ViewStory"), i)
        yield from balancer.dispatch(request)
        done.append(request)

    for i in range(n):
        env.process(proc(env, i))
    env.run()
    return done


class TestDispatch:
    def test_round_trip_annotates_request(self):
        env = Environment()
        balancer = make_balancer(env)
        done = dispatch_n(env, balancer, 1)
        request = done[0]
        assert request.served_by == "tomcat1"
        assert request.dispatched_at is not None
        assert balancer.dispatches == 1

    def test_even_distribution_total_request(self):
        env = Environment()
        balancer = make_balancer(env)
        done = dispatch_n(env, balancer, 40)
        counts = balancer.distribution_between(0, env.now + 1)
        assert set(counts.values()) == {10}

    def test_even_distribution_current_load(self):
        env = Environment()
        balancer = make_balancer(env, policy=CurrentLoadPolicy())
        # Concurrent dispatches: the pick-time increment spreads them.
        dispatch_n(env, balancer, 40, spacing=0.0)
        counts = balancer.distribution_between(0, env.now + 1)
        assert set(counts.values()) == {10}

    def test_current_load_ties_favor_first_index(self):
        env = Environment()
        balancer = make_balancer(env, policy=CurrentLoadPolicy())
        # Strictly sequential dispatches always see an all-zero tie, so
        # the first index wins every time (mod_jk behaves the same way;
        # real concurrency is what spreads the load).
        dispatch_n(env, balancer, 10, spacing=0.05)
        counts = balancer.distribution_between(0, env.now + 1)
        assert counts["tomcat1"] == 10

    def test_dispatch_and_pick_traces(self):
        env = Environment()
        balancer = make_balancer(env)
        dispatch_n(env, balancer, 8)
        assert len(balancer.dispatch_trace) == 8
        assert len(balancer.pick_trace) == 8
        picks = balancer.picks_between(0, env.now + 1)
        assert sum(picks.values()) == 8

    def test_traces_disabled(self):
        env = Environment()
        balancer = make_balancer(
            env, config=BalancerConfig(trace_dispatches=False))
        dispatch_n(env, balancer, 2)
        assert balancer.dispatch_trace is None
        with pytest.raises(ConfigurationError):
            balancer.distribution_between(0, 1)
        with pytest.raises(ConfigurationError):
            balancer.picks_between(0, 1)

    def test_member_counters(self):
        env = Environment()
        balancer = make_balancer(env)
        dispatch_n(env, balancer, 12)
        for member in balancer.members:
            assert member.dispatched == 3
            assert member.completed == 3
            assert member.inflight == 0

    def test_member_named(self):
        env = Environment()
        balancer = make_balancer(env)
        assert balancer.member_named("tomcat2").index == 1
        with pytest.raises(ConfigurationError):
            balancer.member_named("nope")

    def test_needs_backends(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            LoadBalancer(env, "lb", [], policy=TotalRequestPolicy(),
                         mechanism=ModifiedGetEndpoint(),
                         rng=np.random.default_rng(0))


class TestBusyHandling:
    def test_failed_endpoint_marks_busy_and_moves_on(self):
        env = Environment()
        backends = make_backends(env, count=2)
        balancer = make_balancer(
            env, backends=backends,
            config=BalancerConfig(pool_size=1))
        # Exhaust tomcat1's endpoint pool.
        member1 = balancer.members[0]
        member1.try_acquire()
        done = dispatch_n(env, balancer, 1)
        # Dispatch succeeded on the other backend despite tomcat1 being
        # the best-ranked candidate.
        assert done[0].served_by == "tomcat2"
        assert member1.state is MemberState.BUSY
        assert balancer.endpoint_failures == 1

    def test_all_error_raises_no_candidate(self):
        env = Environment()
        balancer = make_balancer(env)
        for member in balancer.members:
            member.mark_error()
        failures = []

        def proc(env):
            request = Request(env, 1, get_interaction("ViewStory"), 0)
            try:
                yield from balancer.dispatch(request)
            except NoCandidateError:
                failures.append(env.now)

        env.process(proc(env))
        env.run()
        assert failures == [0.0]

    def test_error_member_recovers_after_window(self):
        env = Environment()
        backends = make_backends(env, count=1)
        balancer = make_balancer(
            env, backends=backends,
            state_config=StateConfig(error_recovery=0.5))
        balancer.members[0].mark_error()

        def proc(env):
            yield env.timeout(1.0)
            request = Request(env, 1, get_interaction("ViewStory"), 0)
            yield from balancer.dispatch(request)
            return request.served_by

        p = env.process(proc(env))
        env.run()
        assert p.value == "tomcat1"
        assert balancer.members[0].state is MemberState.AVAILABLE

    def test_error_reprobe_failure_keeps_member_in_error(self):
        """§IV-A re-probe path: after error_recovery an Error member is
        probed again, and a *failed* probe leaves it in Error (no bounce
        through Busy) while the request proceeds on a survivor.  Round
        robin guarantees the dead member is probed exactly once before
        the cursor moves on."""
        from repro.core import RoundRobinPolicy

        env = Environment()
        backends = make_backends(env, count=2)
        backends[0].crash()
        balancer = make_balancer(
            env, backends=backends, policy=RoundRobinPolicy(),
            state_config=StateConfig(error_recovery=0.5))
        balancer.members[0].mark_error()

        def proc(env):
            yield env.timeout(1.0)  # recovery window elapsed
            request = Request(env, 1, get_interaction("ViewStory"), 0)
            yield from balancer.dispatch(request)
            return request.served_by

        p = env.process(proc(env))
        env.run()
        # The dead member was eligible for a re-probe, the probe failed,
        # and it stayed Error instead of bouncing through Busy.
        assert balancer.members[0].state is MemberState.ERROR
        assert p.value == "tomcat2"

    def test_error_reprobe_success_after_backend_recovers(self):
        env = Environment()
        backends = make_backends(env, count=1)
        backends[0].crash()
        balancer = make_balancer(
            env, backends=backends,
            state_config=StateConfig(error_recovery=0.5))
        balancer.members[0].mark_error()

        def revive(env):
            yield env.timeout(2.0)
            backends[0].recover()

        def proc(env):
            yield env.timeout(3.0)
            request = Request(env, 1, get_interaction("ViewStory"), 0)
            yield from balancer.dispatch(request)
            return request.served_by

        env.process(revive(env))
        p = env.process(proc(env))
        env.run()
        assert p.value == "tomcat1"
        assert balancer.members[0].state is MemberState.AVAILABLE

    def test_repeated_busy_escalates_to_error_and_no_candidate(self):
        env = Environment()
        backends = make_backends(env, count=1)
        balancer = make_balancer(
            env, backends=backends,
            config=BalancerConfig(pool_size=1),
            state_config=StateConfig(busy_recheck=0.01,
                                     max_busy_retries=2,
                                     error_recovery=60.0))
        balancer.members[0].try_acquire()  # permanently exhausted
        failures = []

        def proc(env):
            request = Request(env, 1, get_interaction("ViewStory"), 0)
            try:
                yield from balancer.dispatch(request)
            except NoCandidateError:
                failures.append(env.now)

        env.process(proc(env))
        env.run(until=10.0)
        assert len(failures) == 1


class TestDirectDispatcher:
    def test_forwards_to_single_backend(self):
        env = Environment()
        backends = make_backends(env, count=1)
        dispatcher = DirectDispatcher(env, backends[0])

        def proc(env):
            request = Request(env, 1, get_interaction("ViewStory"), 0)
            yield from dispatcher.dispatch(request)
            return request.served_by

        p = env.process(proc(env))
        env.run()
        assert p.value == "tomcat1"
        assert dispatcher.dispatches == 1


class TestRemedyBundles:
    def test_table1_has_six_rows(self):
        assert len(TABLE1_BUNDLES) == 6

    def test_bundle_lookup_and_factories(self):
        bundle = get_bundle("current_load_modified")
        assert bundle.policy_name == "current_load"
        assert bundle.mechanism_name == "modified"
        assert bundle.is_remedied
        assert isinstance(bundle.make_policy(), CurrentLoadPolicy)
        assert isinstance(bundle.make_mechanism(), ModifiedGetEndpoint)

    def test_original_bundle_not_remedied(self):
        assert not get_bundle("original_total_request").is_remedied

    def test_unknown_bundle(self):
        with pytest.raises(ConfigurationError):
            get_bundle("nope")

    def test_policies_not_shared_between_factories(self):
        bundle = get_bundle("current_load")
        assert bundle.make_policy() is not bundle.make_policy()
