"""Unit tests for the network substrate."""

import pytest

from repro.errors import ConfigurationError
from repro.netmodel import (
    GaveUp,
    Link,
    ListenSocket,
    RetransmissionPolicy,
    TcpSender,
)
from repro.sim import Environment


class TestRetransmissionPolicy:
    def test_defaults_produce_paper_clusters(self):
        policy = RetransmissionPolicy()
        # Uniform 1 s timer: retransmit completions land at ~1, 2, 3 s.
        assert policy.rto_after(0) == 1.0
        assert policy.rto_after(1) == 1.0
        assert policy.rto_after(2) == 1.0

    def test_exponential_backoff(self):
        policy = RetransmissionPolicy(initial_rto=0.5, backoff=2.0)
        assert policy.rto_after(0) == 0.5
        assert policy.rto_after(1) == 1.0
        assert policy.rto_after(2) == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetransmissionPolicy(initial_rto=0)
        with pytest.raises(ConfigurationError):
            RetransmissionPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetransmissionPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetransmissionPolicy().rto_after(-1)


class TestListenSocket:
    def test_offer_and_accept(self):
        env = Environment()
        socket = ListenSocket(env, backlog=4, name="apache1")
        assert socket.offer("request")

        def consumer(env):
            item = yield socket.accept()
            return item

        p = env.process(consumer(env))
        env.run()
        assert p.value == "request"
        assert socket.accepted == 1
        assert socket.dropped == 0

    def test_overflow_drops_and_logs(self):
        env = Environment()
        seen = []
        socket = ListenSocket(env, backlog=2, name="apache1",
                              on_drop=seen.append)
        results = [socket.offer(i) for i in range(4)]
        assert results == [True, True, False, False]
        assert socket.dropped == 2
        assert seen == [2, 3]
        assert [item for _, item in socket.drop_log] == [2, 3]

    def test_drops_between(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1)

        def producer(env):
            socket.offer("a")
            socket.offer("dropped-at-0")
            yield env.timeout(5)
            socket.offer("dropped-at-5")

        env.process(producer(env))
        env.run()
        assert socket.drops_between(0, 1) == 1
        assert socket.drops_between(4, 6) == 1
        assert socket.drops_between(1, 4) == 0

    def test_queue_metrics(self):
        env = Environment()
        socket = ListenSocket(env, backlog=10)
        for i in range(7):
            socket.offer(i)
        assert socket.queue_length == 7
        assert socket.peak_length == 7
        assert socket.backlog == 10


class TestLink:
    def test_delay_takes_latency(self):
        env = Environment()
        link = Link(env, latency=0.001)

        def proc(env):
            yield link.delay()
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(0.001)
        assert link.messages == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link(Environment(), latency=-1)


class TestTcpSender:
    def test_first_send_accepted_means_zero_retransmissions(self):
        env = Environment()
        socket = ListenSocket(env, backlog=5)
        sender = TcpSender(env)

        def proc(env):
            retransmissions = yield from sender.send(socket, "req")
            return (retransmissions, env.now)

        p = env.process(proc(env))
        env.run()
        assert p.value == (0, 0.0)
        assert sender.packets_sent == 1
        assert sender.packets_dropped == 0

    def test_drop_then_retransmit_after_rto(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1)
        socket.offer("squatter")  # fills the backlog
        sender = TcpSender(env)

        def drainer(env):
            # Free the backlog slot shortly before the 1 s retransmit.
            yield env.timeout(0.5)
            yield socket.accept()

        def proc(env):
            retransmissions = yield from sender.send(socket, "req")
            return (retransmissions, env.now)

        env.process(drainer(env))
        p = env.process(proc(env))
        env.run()
        assert p.value == (1, pytest.approx(1.0))
        assert sender.packets_dropped == 1

    def test_two_drops_complete_near_two_seconds(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1)
        socket.offer("squatter")
        sender = TcpSender(env)

        def drainer(env):
            yield env.timeout(1.5)  # after the first retransmit at t=1
            yield socket.accept()

        def proc(env):
            retransmissions = yield from sender.send(socket, "req")
            return (retransmissions, env.now)

        env.process(drainer(env))
        p = env.process(proc(env))
        env.run()
        assert p.value == (2, pytest.approx(2.0))

    def test_gave_up_after_max_retries(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1)
        socket.offer("squatter")
        sender = TcpSender(env, RetransmissionPolicy(max_retries=2))

        def proc(env):
            try:
                yield from sender.send(socket, "req")
            except GaveUp:
                return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(2.0)  # retransmits at 1 and 2
        assert sender.gave_up == 1
        assert sender.packets_sent == 3

    def test_exponential_backoff_timing(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1)
        socket.offer("squatter")
        sender = TcpSender(
            env, RetransmissionPolicy(initial_rto=0.5, backoff=2.0))

        def drainer(env):
            yield env.timeout(1.4)  # misses retries at 0.5 and 1.5? no:
            # attempts: t=0 (drop), t=0.5 (drop), t=1.5 (accepted)
            yield socket.accept()

        def proc(env):
            retransmissions = yield from sender.send(socket, "req")
            return (retransmissions, env.now)

        env.process(drainer(env))
        p = env.process(proc(env))
        env.run()
        assert p.value == (2, pytest.approx(1.5))
