"""Trace-structure golden test + the zero-cost-when-off contract.

Companion to :mod:`tests.test_golden_trace`, one level up the stack:
where the golden *event* trace pins the kernel's dispatch schedule,
the golden *span* structure pins what the request tracer builds on top
of it — how many requests were traced, how many spans they produced,
and the exact parent/child shape of every tree (timing-independent
signatures, hashed).

The zero-cost tests pin the other half of the tracing contract: the
tracer never creates or schedules events, so the committed golden
event hashes are reproduced *byte-identically with tracing enabled* —
turning tracing on cannot perturb a simulation.
"""

import hashlib
from dataclasses import replace

import pytest

from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.sim.core import Environment
from repro.tracing import decompose

from tests.test_golden_trace import SCENARIO_EVENTS, SCENARIO_SHA256, trace_hash

#: Golden span-structure values for the seed-99 current_load fixture
#: (the same scenario the golden event trace pins).
STRUCTURE_TRACES = 751
STRUCTURE_COMPLETED = 751
STRUCTURE_SPANS = 7410
STRUCTURE_SHA256 = (
    "c29f6e273fee69c694c66ac256069d18c5414b0bb6eadd2154f0a49e2a29775d")

#: The shape every uncontended request takes through the full stack.
PLAIN_SIGNATURE = (
    "request(apache.queue_wait,apache.service(balancer.dispatch("
    "balancer.endpoint_wait,balancer.send(tomcat.queue_wait,"
    "tomcat.service(mysql.pool_wait,mysql.service)))))")


def scenario_config(trace_requests=True):
    profile = replace(ScaleProfile.smoke(), clients=120,
                      flush_threshold_bytes=32e3)
    return ExperimentConfig(
        bundle_key="current_load", profile=profile, duration=6.0,
        seed=99, trace_lb_values=False, trace_dispatches=False,
        trace_requests=trace_requests)


@pytest.fixture(scope="module")
def traced_scenario():
    return ExperimentRunner(scenario_config()).run()


def structure_hash(traces):
    payload = "\n".join(
        "{} {}".format(trace.request_id, trace.signature())
        for trace in sorted(traces, key=lambda trace: trace.request_id))
    return hashlib.sha256(payload.encode()).hexdigest()


class TestGoldenSpanStructure:
    def test_trace_and_span_counts_match_golden(self, traced_scenario):
        traces = traced_scenario.traces()
        assert len(traces) == STRUCTURE_TRACES
        completed = [trace for trace in traces if trace.completed]
        assert len(completed) == STRUCTURE_COMPLETED
        assert sum(trace.span_count()
                   for trace in traces) == STRUCTURE_SPANS

    def test_structure_signature_matches_golden(self, traced_scenario):
        assert structure_hash(
            traced_scenario.traces()) == STRUCTURE_SHA256

    def test_most_requests_take_the_plain_path(self, traced_scenario):
        signatures = [trace.signature()
                      for trace in traced_scenario.traces()]
        plain = sum(1 for signature in signatures
                    if signature == PLAIN_SIGNATURE)
        assert plain > 0.5 * len(signatures)

    def test_bucket_sums_equal_durations(self, traced_scenario):
        """The decomposer's conservation law, across the whole run."""
        for trace in traced_scenario.traces():
            if not trace.completed:
                continue
            path = decompose(trace)
            assert sum(path.buckets.values()) == pytest.approx(
                trace.duration, abs=1e-9), trace.request_id

    def test_spans_nest_inside_their_parents(self, traced_scenario):
        """Every span opens no earlier than its parent (durations are
        clipped at decomposition, but open times must nest exactly)."""
        for trace in traced_scenario.traces():
            for span in trace.root.walk():
                if span.parent is not None:
                    assert span.start >= span.parent.start

    def test_every_trace_is_finalized(self, traced_scenario):
        for trace in traced_scenario.traces():
            for span in trace.root.walk():
                assert span.end is not None


class TestZeroCostWhenOff:
    def test_environment_tracer_defaults_to_none(self):
        assert Environment().tracer is None

    def test_event_schedule_identical_with_tracing_on(self):
        """The committed golden *event* hash is reproduced even with
        request tracing enabled: the tracer is pure observation."""
        env = Environment()
        records = []
        env.trace = lambda when, event: records.append(
            (when, type(event).__name__))
        ExperimentRunner(scenario_config(trace_requests=True)).run(env=env)
        assert len(records) == SCENARIO_EVENTS
        assert trace_hash(records) == SCENARIO_SHA256

    def test_results_identical_with_tracing_on(self):
        traced = ExperimentRunner(scenario_config(True)).run()
        untraced = ExperimentRunner(scenario_config(False)).run()
        assert traced.stats().count == untraced.stats().count
        assert traced.stats().mean == untraced.stats().mean
        assert traced.dropped_packets() == untraced.dropped_packets()
