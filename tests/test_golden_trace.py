"""Golden-trace determinism: the kernel's full event schedule is stable.

A small but varied scenario (processes, timeouts, a shared Resource, a
Store ping-pong, a priority interrupt, seeded randomness) is run with
the :attr:`Environment.trace` hook installed; the hash of the complete
``(time, event type)`` dispatch sequence must match a committed golden
value.  Any change to event ordering — tie-breaking, priority handling,
scheduling order — shows up here, which is what protects the "kernel
optimisations keep traces bit-identical" contract.

Two independent fixtures localise a breakage:

* the *kernel* trace exercises only ``repro.sim`` primitives — if it
  diverges, the kernel itself changed;
* the *scenario* trace runs a full ``current_load`` experiment (seed
  99, millibottlenecks included) through :class:`ExperimentRunner` — if
  only this one diverges, the kernel is fine and the breakage lives in
  the model/policy stack above it.
"""

import hashlib
from dataclasses import replace

import numpy as np

from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.sim.core import Environment
from repro.sim.queues import Store
from repro.sim.resources import Resource

GOLDEN_SHA256 = (
    "6279124ad207d5b53637591e405557a2e2693c045878800eac9c563eef4c0ba8")
GOLDEN_EVENTS = 741

#: Full-stack fixture: current_load policy, seed 99, two flush stalls.
SCENARIO_SHA256 = (
    "717cee562c17efcc061d5fab3b3a2ee18acdee7373846a7d24288bd7a8d1293e")
SCENARIO_EVENTS = 17113


def build_scenario(env, rng):
    pool = Resource(env, capacity=2)
    store = Store(env, capacity=4)

    def worker(env, index):
        for _ in range(20):
            with pool.request() as req:
                yield req
                yield env.timeout(float(rng.exponential(0.01)))
            yield store.put(index)
            yield env.timeout(float(rng.uniform(0.0, 0.005)))

    def consumer(env):
        while True:
            yield store.get()
            yield env.timeout(0.003)

    def interrupter(env, victim):
        yield env.timeout(0.5)
        victim.interrupt("poke")

    def patient(env):
        try:
            yield env.timeout(10.0)
        except Exception:
            yield env.timeout(0.001)

    for index in range(6):
        env.process(worker(env, index))
    env.process(consumer(env))
    env.process(interrupter(env, env.process(patient(env))))


def trace_run(seed=13, until=5.0):
    env = Environment()
    records = []
    env.trace = lambda when, event: records.append(
        (when, type(event).__name__))
    build_scenario(env, np.random.default_rng(seed))
    env.run(until=until)
    return records


def trace_hash(records):
    payload = "\n".join(
        "{!r} {}".format(when, name) for when, name in records)
    return hashlib.sha256(payload.encode()).hexdigest()


def scenario_trace_run(seed=99, until=6.0):
    """Trace a small full-stack current_load experiment.

    The profile is tuned so the run includes what the paper cares
    about: a ramp-up, steady dispatching under the current_load policy,
    and two millibottleneck flush stalls inside the traced window.
    """
    env = Environment()
    records = []
    env.trace = lambda when, event: records.append(
        (when, type(event).__name__))
    profile = replace(ScaleProfile.smoke(), clients=120,
                      flush_threshold_bytes=32e3)
    config = ExperimentConfig(
        bundle_key="current_load", profile=profile, duration=until,
        seed=seed, trace_lb_values=False, trace_dispatches=False)
    ExperimentRunner(config).run(env=env)
    return records


class TestGoldenTrace:
    def test_two_runs_produce_identical_traces(self):
        assert trace_run() == trace_run()

    def test_trace_matches_committed_golden(self):
        records = trace_run()
        assert len(records) == GOLDEN_EVENTS
        assert trace_hash(records) == GOLDEN_SHA256

    def test_different_seed_changes_the_trace(self):
        assert trace_hash(trace_run(seed=14)) != GOLDEN_SHA256


class TestScenarioGoldenTrace:
    """Full-stack fixture: localises breakage above the kernel."""

    def test_two_runs_produce_identical_traces(self):
        assert scenario_trace_run() == scenario_trace_run()

    def test_trace_matches_committed_golden(self):
        records = scenario_trace_run()
        assert len(records) == SCENARIO_EVENTS
        assert trace_hash(records) == SCENARIO_SHA256

    def test_different_seed_changes_the_trace(self):
        assert trace_hash(scenario_trace_run(seed=100)) != SCENARIO_SHA256
