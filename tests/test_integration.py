"""End-to-end integration tests: the paper's phenomena, asserted.

Each fixture runs one full experiment (module-scoped, so the suite
runs each configuration once); tests then assert the qualitative
claims of the corresponding paper sections.
"""

import pytest

from repro.analysis import (
    adaptive_threshold,
    detect,
    evenness,
    find_peaks,
    funnel_fraction,
    match_ground_truth,
    pearson,
    drops_of,
    segment,
    tier_series,
)
from repro.cluster import ExperimentRunner
from repro.cluster.scenarios import (
    baseline_no_millibottleneck,
    policy_run,
    single_node_millibottleneck,
)
from repro.metrics import ResponseTimeDistribution

# Long enough for several stall cycles AND for dropped packets to
# retransmit through the 1 s RTO (possibly more than once — the flush
# stagger resonates with the timer, which is what produces the 2 s/3 s
# clusters) and complete inside the horizon.
DURATION = 12.0
SEED = 20170601  # ICDCS 2017


@pytest.fixture(scope="module")
def baseline():
    return ExperimentRunner(
        baseline_no_millibottleneck(duration=DURATION, seed=SEED)).run()


@pytest.fixture(scope="module")
def original():
    return ExperimentRunner(
        policy_run("original_total_request", duration=DURATION,
                   seed=SEED)).run()


@pytest.fixture(scope="module")
def modified():
    return ExperimentRunner(
        policy_run("total_request_modified", duration=DURATION,
                   seed=SEED)).run()


@pytest.fixture(scope="module")
def current_load():
    return ExperimentRunner(
        policy_run("current_load", duration=DURATION, seed=SEED)).run()


@pytest.fixture(scope="module")
def single_node():
    return ExperimentRunner(
        single_node_millibottleneck(duration=DURATION, seed=SEED)).run()


class TestFig1Baseline:
    """§II-B: the load balancer works without millibottlenecks."""

    def test_no_millibottlenecks_occurred(self, baseline):
        assert baseline.system.millibottleneck_records() == []

    def test_vlrt_negligible(self, baseline):
        stats = baseline.stats()
        assert stats.vlrt_count == 0
        assert stats.normal_fraction > 0.95

    def test_average_rt_single_digit_ms(self, baseline):
        assert baseline.stats().mean_ms < 10.0

    def test_point_in_time_rt_is_flat(self, baseline):
        rt = baseline.point_in_time_rt()
        assert rt.max() < 0.1  # no spikes anywhere

    def test_workload_evenly_distributed(self, baseline):
        counts = baseline.recorder.served_by_counts(1.0, DURATION)
        assert evenness(counts) < 1.05

    def test_no_packet_drops(self, baseline):
        assert baseline.dropped_packets() == 0


class TestFig3to5OriginalPolicies:
    """§III-C: instability under the stock policies."""

    def test_vlrt_requests_appear(self, original):
        stats = original.stats()
        assert stats.vlrt_fraction > 0.01
        assert stats.mean_ms > 10 * 3.5  # far worse than baseline

    def test_rt_distribution_is_bimodal(self, original):
        """Fig. 4: most requests <10 ms, VLRT cluster near 1 s."""
        dist = ResponseTimeDistribution()
        dist.add_all(original.recorder.response_times)
        clusters = dist.vlrt_clusters()
        assert clusters[1.0] > 0
        assert dist.mass_between(0.001, 0.010) > 0.5 * dist.total

    def test_vlrt_caused_by_retransmissions(self, original):
        vlrt = original.recorder.vlrt_requests()
        retransmitted = [r for r in vlrt if r.retransmissions > 0]
        assert len(retransmitted) > 0.9 * len(vlrt)

    def test_cpu_moderate_despite_vlrt(self, original):
        """Fig. 5: every server averages below ~50 % CPU."""
        for name, cpu in original.average_cpu().items():
            assert cpu < 0.55, name

    def test_drops_at_web_tier(self, original):
        assert original.dropped_packets() > 0


class TestFig6and10Instability:
    """§III-C / §V-A: the funnel onto the stalled Tomcat."""

    def stall_of(self, result):
        records = [r for r in result.system.millibottleneck_records()
                   if r.started_at > 2.0]  # past ramp-up
        assert records
        return records[0]

    def test_picks_funnel_into_stalled_member(self, original):
        record = self.stall_of(original)
        window = (record.started_at + 0.05, record.ended_at)
        fractions = [funnel_fraction(balancer, record.host, window)
                     for balancer in original.system.balancers]
        # Late in the stall, almost every pick goes to the stalled
        # server on every Apache.
        assert all(fraction > 0.6 for fraction in fractions)

    def test_lb_value_lowest_during_stall(self, original):
        record = self.stall_of(original)
        probe = (record.started_at + record.ended_at) / 2
        for balancer in original.system.balancers:
            values = {member.name: member.lb_trace.value_at(probe)
                      for member in balancer.members}
            stalled_value = values.pop(record.host)
            assert stalled_value <= min(values.values())

    def test_lb_value_spikes_in_recovery(self, original):
        """Fig. 10(b)'s red peak: the stalled member's lb_value rises
        fastest right after recovery."""
        record = self.stall_of(original)
        phases = segment(record, recovery=0.3)
        start, end = phases.recovery
        for balancer in original.system.balancers:
            deltas = {}
            for member in balancer.members:
                deltas[member.name] = (member.lb_trace.value_at(end)
                                       - member.lb_trace.value_at(start))
            assert max(deltas, key=deltas.get) == record.host

    def test_apache_tier_queue_spikes_during_stall(self, original):
        record = self.stall_of(original)
        apache_tier = tier_series(original.queue_series, "apache")
        window = apache_tier.slice(record.started_at,
                                   record.ended_at + 0.3)
        normal = apache_tier.slice(1.5, record.started_at - 0.5)
        assert window.max() > 4 * max(normal.mean(), 1.0)


class TestFig8and9MechanismRemedy:
    """§IV-C: modified get_endpoint avoids the stalled candidate."""

    def test_no_drops_and_no_vlrt(self, modified):
        assert modified.dropped_packets() == 0
        assert modified.stats().vlrt_fraction < 0.005

    def test_dispatches_avoid_stalled_member(self, modified):
        records = [r for r in modified.system.millibottleneck_records()
                   if r.started_at > 2.0]
        record = records[0]
        # After the balancer notices (first pool exhaustion), nothing
        # more is dispatched to the stalled member.
        window = (record.started_at + 0.05, record.ended_at)
        for balancer in modified.system.balancers:
            counts = balancer.distribution_between(*window)
            healthy = sum(count for name, count in counts.items()
                          if name != record.host)
            # A stray dispatch can slip through when an in-flight
            # request completes mid-stall (its reply only needed the
            # database) and briefly frees an endpoint; the funnel is
            # still gone.
            assert counts[record.host] <= max(2, 0.1 * healthy)
            assert healthy > 5

    def test_apache_queues_stay_small(self, modified, original):
        """Fig. 8: the remedy cuts the queued requests dramatically."""
        original_peak = tier_series(original.queue_series, "apache").max()
        modified_peak = tier_series(modified.queue_series, "apache").max()
        assert modified_peak < original_peak / 3


class TestFig12and13PolicyRemedy:
    """§V-B: current_load avoids the scheduling instability."""

    def test_no_drops_and_no_vlrt(self, current_load):
        assert current_load.dropped_packets() == 0
        assert current_load.stats().vlrt_fraction < 0.005

    def test_avg_rt_improvement_factor(self, current_load, original):
        """§VI: current_load improves average RT by ~12x (ours is
        allowed to be anywhere above 5x)."""
        factor = original.stats().mean / current_load.stats().mean
        assert factor > 5

    def test_tomcat_tier_queues_small(self, current_load):
        """Fig. 12/13(a): no huge spike in the Tomcat tier."""
        for tomcat in current_load.system.tomcats:
            assert current_load.queue_series[tomcat.name].max() < 40

    def test_requests_rerouted_to_healthy(self, current_load):
        records = [r for r in current_load.system.millibottleneck_records()
                   if r.started_at > 2.0]
        record = records[0]
        window = (record.started_at + 0.05, record.ended_at)
        for balancer in current_load.system.balancers:
            counts = balancer.distribution_between(*window)
            total = sum(counts.values())
            assert total > 0
            assert counts[record.host] / total < 0.2

    def test_combined_equivalent_to_single_remedy(self, current_load):
        """§VI: overcoming limitations at both levels adds nothing."""
        combined = ExperimentRunner(
            policy_run("current_load_modified", duration=DURATION,
                       seed=SEED)).run()
        assert combined.stats().mean == pytest.approx(
            current_load.stats().mean, rel=0.5)


class TestFig2Anatomy:
    """§III-B: the causal chain, without any load balancer."""

    def test_millibottlenecks_occur_on_both_hosts(self, single_node):
        hosts = {r.host for r in single_node.system.millibottleneck_records()}
        assert "tomcat1" in hosts
        assert "apache1" in hosts

    def test_stall_durations_are_milliseconds(self, single_node):
        for record in single_node.system.millibottleneck_records():
            assert 0.01 <= record.duration <= 0.5

    def test_vlrt_appear_without_balancer(self, single_node):
        assert single_node.stats().vlrt_count > 0

    def test_detector_matches_ground_truth(self, single_node):
        result = single_node
        for server_name in ("tomcat1", "apache1"):
            cpu = result.cpu_utilization(server_name)
            iowait = result.iowait(server_name)
            detections = detect(server_name, cpu, result.config.sample_window,
                                iowait=iowait)
            records = [r for r in result.system.millibottleneck_records()
                       if r.host == server_name]
            tp, fp, fn = match_ground_truth(detections, records)
            assert fn == 0, server_name  # every stall detected
            assert fp <= 1, server_name

    def test_detected_stalls_are_io_induced(self, single_node):
        cpu = single_node.cpu_utilization("tomcat1")
        iowait = single_node.iowait("tomcat1")
        for detection in detect("tomcat1", cpu,
                                single_node.config.sample_window,
                                iowait=iowait):
            assert detection.io_induced

    def test_dirty_drops_correlate_with_iowait(self, single_node):
        """Fig. 2(d)/(e): flush activity lines up with iowait."""
        dirty = single_node.dirty_series["tomcat1"]
        iowait = single_node.iowait("tomcat1")
        assert pearson(drops_of(dirty), iowait) > 0.5

    def test_lagged_queue_vlrt_link_recovers_rto(self, single_node):
        """The queue->VLRT link is delayed by the retransmission
        timer; scanning lags recovers ~1 s from the data alone."""
        from repro.analysis import best_lag
        lag, r = best_lag(single_node.queue_series["apache1"],
                          single_node.vlrt_windows(),
                          max_lag=2.0, step=0.05)
        assert 0.85 <= lag <= 1.3
        assert r > 0.4

    def test_queue_peaks_coincide_with_stalls(self, single_node):
        apache_queue = single_node.queue_series["apache1"]
        threshold = adaptive_threshold(apache_queue)
        peaks = find_peaks(apache_queue, threshold, "apache1")
        assert peaks
        records = single_node.system.millibottleneck_records()
        for peak in peaks:
            assert any(record.started_at - 0.2 < peak.peak_at
                       < record.ended_at + 0.6
                       for record in records)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = ExperimentRunner(
            policy_run("current_load", duration=3.0, seed=5)).run()
        second = ExperimentRunner(
            policy_run("current_load", duration=3.0, seed=5)).run()
        assert first.stats() == second.stats()
        assert first.dropped_packets() == second.dropped_packets()

    def test_different_seed_different_trace(self):
        first = ExperimentRunner(
            policy_run("current_load", duration=3.0, seed=5)).run()
        second = ExperimentRunner(
            policy_run("current_load", duration=3.0, seed=6)).run()
        assert first.stats().count != second.stats().count
