"""Unit tests for the load balancing policies."""

import numpy as np
import pytest

from repro.core import (
    CurrentLoadPolicy,
    EwmaLatencyPolicy,
    JoinIdleQueuePolicy,
    POLICIES,
    PrequalPolicy,
    PrequalProbeConfig,
    RandomPolicy,
    RoundRobinPolicy,
    StickyConfig,
    StickySessionPolicy,
    TotalRequestPolicy,
    TotalTrafficPolicy,
    TwoChoicesPolicy,
    WeightedLeastConnPolicy,
    make_policy,
)
from repro.core.member import BalancerMember
from repro.errors import ConfigurationError
from repro.osmodel import Host
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer
from repro.workload import Request, get_interaction


@pytest.fixture
def members():
    env = Environment()
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    out = []
    for i in range(4):
        name = "tomcat{}".format(i + 1)
        tomcat = TomcatServer(env, name, Host(env, name), mysql,
                              max_threads=2)
        out.append(BalancerMember(env, tomcat, index=i))
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def make_request(env_owner):
    env = env_owner.env
    return Request(env, 1, get_interaction("ViewStory"), 0)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {
            "total_request", "total_traffic", "current_load",
            "round_robin", "random", "two_choices", "jsq_d",
            "ewma_latency", "prequal", "jiq", "weighted_least_conn",
            "sticky"}

    def test_make_policy(self):
        assert isinstance(make_policy("current_load"), CurrentLoadPolicy)
        with pytest.raises(ConfigurationError):
            make_policy("nope")

    def test_cumulative_flags(self):
        assert TotalRequestPolicy.cumulative
        assert TotalTrafficPolicy.cumulative
        assert not CurrentLoadPolicy.cumulative


class TestTotalRequest(object):
    def test_select_lowest_lb_value(self, members, rng):
        policy = TotalRequestPolicy()
        members[2].lb_value = -1
        assert policy.select(members, rng) is members[2]

    def test_ties_break_by_index(self, members, rng):
        policy = TotalRequestPolicy()
        assert policy.select(members, rng) is members[0]

    def test_dispatch_increments(self, members):
        policy = TotalRequestPolicy()
        request = make_request(members[0])
        policy.on_dispatch(members[0], request)
        assert members[0].lb_value == 1.0
        policy.on_complete(members[0], request)
        assert members[0].lb_value == 1.0  # completion does nothing

    def test_round_robin_emerges_in_steady_state(self, members, rng):
        """With dispatch-time increments and ties broken by index, the
        policy distributes perfectly evenly."""
        policy = TotalRequestPolicy()
        picks = []
        for _ in range(20):
            member = policy.select(members, rng)
            policy.on_dispatch(member, make_request(member))
            picks.append(member.index)
        assert picks[:8] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert all(member.lb_value == 5 for member in members)


class TestTotalTraffic:
    def test_completion_adds_traffic_bytes(self, members):
        policy = TotalTrafficPolicy()
        request = make_request(members[0])
        policy.on_dispatch(members[0], request)
        assert members[0].lb_value == 0.0  # nothing at dispatch
        policy.on_complete(members[0], request)
        assert members[0].lb_value == request.traffic_bytes

    def test_stalled_member_stays_lowest(self, members, rng):
        """The §V-A instability: a member that completes nothing keeps
        the lowest lb_value and is picked forever."""
        policy = TotalTrafficPolicy()
        for _ in range(10):
            member = policy.select(members, rng)
            request = make_request(member)
            policy.on_dispatch(member, request)
            if member.index != 0:  # member 0 is "stalled": no completion
                policy.on_complete(member, request)
        # After warm-up, member 0 has lb 0 and keeps winning.
        assert policy.select(members, rng) is members[0]


class TestCurrentLoad:
    def test_pick_and_complete_balance(self, members):
        policy = CurrentLoadPolicy()
        request = make_request(members[0])
        policy.on_pick(members[0], request)
        assert members[0].lb_value == 1.0
        policy.on_complete(members[0], request)
        assert members[0].lb_value == 0.0

    def test_never_negative(self, members):
        policy = CurrentLoadPolicy()
        request = make_request(members[0])
        policy.on_complete(members[0], request)
        policy.on_complete(members[0], request)
        assert members[0].lb_value == 0.0

    def test_abandoned_pick_is_refunded(self, members):
        policy = CurrentLoadPolicy()
        request = make_request(members[0])
        policy.on_pick(members[0], request)
        policy.on_pick_abandoned(members[0], request)
        assert members[0].lb_value == 0.0

    def test_stalled_member_rises_and_is_avoided(self, members, rng):
        """The §V-B remedy: picks (even stuck ones) weigh the stalled
        member down, so healthy members win."""
        policy = CurrentLoadPolicy()
        stalled = members[0]
        # Two workers pick the stalled member and get stuck (no
        # completion, no abandonment yet).
        policy.on_pick(stalled, make_request(stalled))
        policy.on_pick(stalled, make_request(stalled))
        picks = [policy.select(members, rng) for _ in range(6)]
        assert stalled not in picks

    def test_property_random_ops_keep_lb_value_nonnegative(self, members):
        rng = np.random.default_rng(0)
        policy = CurrentLoadPolicy()
        member = members[0]
        for _ in range(500):
            op = rng.integers(3)
            request = make_request(member)
            if op == 0:
                policy.on_pick(member, request)
            elif op == 1:
                policy.on_complete(member, request)
            else:
                policy.on_pick_abandoned(member, request)
            assert member.lb_value >= 0


class TestRoundRobin:
    def test_cycles_members(self, members, rng):
        policy = RoundRobinPolicy()
        picks = [policy.select(members, rng).index for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_ineligible(self, members, rng):
        policy = RoundRobinPolicy()
        eligible = [members[0], members[2]]
        picks = [policy.select(eligible, rng).index for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_recovered_member_gets_next_pick(self, members, rng):
        """Regression: a cursor-based round robin advances past members
        that are ineligible at pick time, so a member recovering from
        an Error window whose eligibility keeps missing the cursor can
        be starved forever.  Least-recently-served gives the recovered
        member the very next pick."""
        policy = RoundRobinPolicy()
        healthy = members[1:]
        for _ in range(9):  # member 0 is in its Error window
            policy.select(healthy, rng)
        assert policy.select(members, rng) is members[0]
        # ... and the cycle continues fairly afterwards.
        picks = [policy.select(members, rng).index for _ in range(8)]
        assert sorted(picks[:4]) == [0, 1, 2, 3]
        assert sorted(picks[4:]) == [0, 1, 2, 3]


class TestRandom:
    def test_covers_all_members(self, members, rng):
        policy = RandomPolicy()
        picks = {policy.select(members, rng).index for _ in range(100)}
        assert picks == {0, 1, 2, 3}


class TestTwoChoices:
    def test_prefers_less_loaded(self, members, rng):
        policy = TwoChoicesPolicy()
        members[0].inflight = 10
        members[1].inflight = 10
        members[2].inflight = 0
        members[3].inflight = 10
        picks = [policy.select(members, rng) for _ in range(50)]
        # member 2 must win every comparison it appears in; roughly
        # half the samples include it.
        assert picks.count(members[2]) > 10
        for pick in picks:
            assert pick.inflight in (0, 10)

    def test_single_member(self, members, rng):
        policy = TwoChoicesPolicy()
        assert policy.select(members[:1], rng) is members[0]


class TestEwmaLatency:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaLatencyPolicy(alpha=0)
        with pytest.raises(ConfigurationError):
            EwmaLatencyPolicy(alpha=1.5)

    def test_tracks_and_prefers_fast_members(self, members, rng):
        policy = EwmaLatencyPolicy(alpha=0.5)
        slow, fast = members[0], members[1]
        for member, latency in [(slow, 0.5), (fast, 0.01)]:
            request = make_request(member)
            request.dispatched_at = member.env.now
            member.env._now = latency  # simulate elapsed time
            policy.on_complete(member, request)
            member.env._now = 0.0
        assert slow.ewma_response_time > fast.ewma_response_time
        assert policy.select([slow, fast], rng) is fast

    def test_unknown_members_treated_as_fast(self, members, rng):
        policy = EwmaLatencyPolicy()
        members[3].ewma_response_time = 0.2
        pick = policy.select(members, rng)
        assert pick.index == 0  # no history sorts first

    def test_ewma_decays_history(self, members):
        policy = EwmaLatencyPolicy(alpha=0.5)
        member = members[0]
        member.ewma_response_time = 1.0
        request = make_request(member)
        request.dispatched_at = 0.0
        policy.on_complete(member, request)  # observed 0.0
        assert member.ewma_response_time == pytest.approx(0.5)


class TestPrequal:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PrequalProbeConfig(interval=0)
        with pytest.raises(ConfigurationError):
            PrequalProbeConfig(d=0)
        with pytest.raises(ConfigurationError):
            PrequalProbeConfig(staleness=-1)
        with pytest.raises(ConfigurationError):
            PrequalProbeConfig(hot_quantile=1.5)
        with pytest.raises(ConfigurationError):
            PrequalProbeConfig(pool=0)
        with pytest.raises(ConfigurationError):
            PrequalProbeConfig(latency_alpha=0)

    def test_configure_rejects_affinity(self):
        with pytest.raises(ConfigurationError):
            PrequalPolicy().configure(affinity={"fallback": "random"})

    def test_configure_accepts_mapping(self):
        policy = PrequalPolicy()
        policy.configure(probe={"interval": 0.1, "d": 3})
        assert policy.config.interval == 0.1
        assert policy.config.d == 3
        with pytest.raises(ConfigurationError):
            policy.configure(probe={"bogus_knob": 1})

    def test_cold_members_beat_hot_members(self, members, rng):
        """Hot/cold lexicographic rank: the probed-RIF quantile splits
        the pool; cold members sort by latency, hot by RIF."""
        policy = PrequalPolicy()
        # RIFs [0, 1, 2, 9] with hot_quantile .75 -> threshold 2, so
        # only member 3 is hot.  Member 1 has the best cold latency.
        for member, rif, latency in [(members[0], 0, 0.5),
                                     (members[1], 1, 0.01),
                                     (members[2], 2, 0.2),
                                     (members[3], 9, 0.001)]:
            policy.record_probe(member, rif, at=0.0, latency=latency)
        assert policy.select(members, rng) is members[1]
        # Without member 1, the next-fastest cold member wins — never
        # the hot one, however fast it probed.
        assert policy.select(
            [members[0], members[2], members[3]], rng) is members[2]

    def test_stale_probes_are_ignored(self, members, rng):
        policy = PrequalPolicy()
        # A glowing probe report for member 1 ... taken too long ago.
        policy.record_probe(members[1], 0, at=0.0, latency=0.0)
        members[1].inflight = 5
        env = members[0].env
        env._now = policy.config.staleness + 0.1
        try:
            # Fresh pool is empty, so the JSQ(d) fallback over
            # instantaneous in-flight picks member 0 instead.
            assert policy.select(members[:2], rng) is members[0]
            # At probe time the same report would have won.
            env._now = policy.config.staleness - 0.1
            assert policy.select(members[:2], rng) is members[1]
        finally:
            env._now = 0.0

    def test_fallback_without_probes_is_jsq(self, members, rng):
        policy = PrequalPolicy()
        members[0].inflight = 3
        members[1].inflight = 1
        assert policy.select(members[:2], rng) is members[1]

    def test_probe_pool_is_bounded(self, members, rng):
        policy = PrequalPolicy(PrequalProbeConfig(pool=2))
        for at, member in enumerate(members[:3]):
            policy.record_probe(member, 0, at=float(at), latency=0.0)
        assert len(policy._probes) == 2
        assert members[0].index not in policy._probes  # oldest evicted

    def test_completion_feeds_latency_ewma(self, members):
        policy = PrequalPolicy()
        member = members[0]
        request = make_request(member)
        request.dispatched_at = 0.0
        member.env._now = 0.4
        policy.on_complete(member, request)
        member.env._now = 0.0
        assert policy._ewma[member.index] == pytest.approx(0.4)


class TestJoinIdleQueue:
    def test_completion_marks_idle_and_wins_next_pick(self, members, rng):
        policy = JoinIdleQueuePolicy()
        for member in members:
            member.inflight = 2
        members[2].inflight = 0
        policy.on_complete(members[2], make_request(members[2]))
        assert policy.select(members, rng) is members[2]

    def test_never_picks_busy_while_idle_exists(self, members, rng):
        policy = JoinIdleQueuePolicy()
        for member in members:
            policy.on_complete(member, make_request(member))
        members[0].inflight = 4  # became busy after enqueueing
        pick = policy.select(members, rng)
        assert pick.inflight == 0

    def test_pick_consumes_the_idle_slot(self, members, rng):
        policy = JoinIdleQueuePolicy()
        policy.on_complete(members[1], make_request(members[1]))
        first = policy.select(members, rng)
        policy.on_pick(first, make_request(first))
        assert first is members[1]
        # The queue is drained; the fallback samples by in-flight.
        members[1].inflight = 9
        assert policy.select(members, rng) is not members[1]

    def test_abandoned_pick_requeues(self, members, rng):
        policy = JoinIdleQueuePolicy()
        request = make_request(members[1])
        policy.on_complete(members[1], request)
        pick = policy.select(members, rng)
        policy.on_pick(pick, request)
        policy.on_pick_abandoned(pick, request)
        assert policy.select(members, rng) is members[1]

    def test_state_transition_evicts(self, members, rng):
        from repro.core import MemberState

        policy = JoinIdleQueuePolicy()
        policy.on_complete(members[1], make_request(members[1]))
        members[1].state = MemberState.ERROR
        policy.on_member_state(members[1])
        members[2].inflight = 1
        members[3].inflight = 1
        members[0].inflight = 1
        pick = policy.select(members, rng)
        assert pick is not members[1] or members[1].index not in policy._idle_set

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JoinIdleQueuePolicy(d=0)


class TestWeightedLeastConn:
    def test_reduces_to_least_conn_at_unit_weights(self, members, rng):
        policy = WeightedLeastConnPolicy()
        members[0].inflight = 2
        members[1].inflight = 1
        assert policy.select(members[:2], rng) is members[1]

    def test_heavier_member_absorbs_more(self, members, rng):
        policy = WeightedLeastConnPolicy()
        members[0].weight = 2.0
        picks = []
        for _ in range(3):
            member = policy.select(members[:2], rng)
            member.inflight += 1
            picks.append(member.index)
        # Weight 2 vs 1: member 0 takes two picks before member 1's
        # (inflight+1)/weight catches up.
        assert picks == [0, 0, 1]


class TestStickySession:
    def test_no_request_uses_fallback(self, members, rng):
        policy = StickySessionPolicy()
        members[1].lb_value = -1  # current_load fallback ranks by lb
        assert policy.select(members, rng) is members[1]

    def test_pins_and_returns_pinned(self, members, rng):
        policy = StickySessionPolicy()
        request = make_request(members[0])
        first = policy.select(members, rng, request)
        # Make the pinned member look terrible; affinity still wins.
        first.lb_value = 100
        assert policy.select(members, rng, request) is first
        assert policy.violations == 0

    def test_violation_and_repin_on_ineligible_member(self, members, rng):
        policy = StickySessionPolicy()
        request = make_request(members[0])
        pinned = policy.select(members, rng, request)
        eligible = [m for m in members if m is not pinned]
        moved = policy.select(eligible, rng, request)
        assert moved is not pinned
        assert policy.violations == 1
        # The session re-pinned: the new member now holds the affinity.
        moved.lb_value = 100
        assert policy.select(members, rng, request) is moved
        assert policy.violations == 1

    def test_distinct_clients_pin_independently(self, members, rng):
        env = members[0].env
        policy = StickySessionPolicy()
        r1 = Request(env, 1, get_interaction("ViewStory"), 7)
        r2 = Request(env, 2, get_interaction("ViewStory"), 8)
        members[0].lb_value = 1
        a = policy.select(members, rng, r1)
        members[1].lb_value = 2
        b = policy.select(members, rng, r2)
        assert a is not b or a is policy._pins[7]
        assert policy._pins[7] is a
        assert policy._pins[8] is b

    def test_fallback_validation(self):
        with pytest.raises(ConfigurationError):
            StickyConfig(fallback="sticky")
        with pytest.raises(ConfigurationError):
            StickySessionPolicy(StickyConfig(fallback="nope"))

    def test_configure_swaps_fallback(self):
        policy = StickySessionPolicy()
        policy.configure(affinity={"fallback": "random"})
        assert policy.config.fallback == "random"
        with pytest.raises(ConfigurationError):
            policy.configure(probe={"d": 2})
