"""Unit tests for the load balancing policies."""

import numpy as np
import pytest

from repro.core import (
    CurrentLoadPolicy,
    EwmaLatencyPolicy,
    POLICIES,
    RandomPolicy,
    RoundRobinPolicy,
    TotalRequestPolicy,
    TotalTrafficPolicy,
    TwoChoicesPolicy,
    make_policy,
)
from repro.core.member import BalancerMember
from repro.errors import ConfigurationError
from repro.osmodel import Host
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer
from repro.workload import Request, get_interaction


@pytest.fixture
def members():
    env = Environment()
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    out = []
    for i in range(4):
        name = "tomcat{}".format(i + 1)
        tomcat = TomcatServer(env, name, Host(env, name), mysql,
                              max_threads=2)
        out.append(BalancerMember(env, tomcat, index=i))
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def make_request(env_owner):
    env = env_owner.env
    return Request(env, 1, get_interaction("ViewStory"), 0)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {
            "total_request", "total_traffic", "current_load",
            "round_robin", "random", "two_choices", "jsq_d",
            "ewma_latency"}

    def test_make_policy(self):
        assert isinstance(make_policy("current_load"), CurrentLoadPolicy)
        with pytest.raises(ConfigurationError):
            make_policy("nope")

    def test_cumulative_flags(self):
        assert TotalRequestPolicy.cumulative
        assert TotalTrafficPolicy.cumulative
        assert not CurrentLoadPolicy.cumulative


class TestTotalRequest(object):
    def test_select_lowest_lb_value(self, members, rng):
        policy = TotalRequestPolicy()
        members[2].lb_value = -1
        assert policy.select(members, rng) is members[2]

    def test_ties_break_by_index(self, members, rng):
        policy = TotalRequestPolicy()
        assert policy.select(members, rng) is members[0]

    def test_dispatch_increments(self, members):
        policy = TotalRequestPolicy()
        request = make_request(members[0])
        policy.on_dispatch(members[0], request)
        assert members[0].lb_value == 1.0
        policy.on_complete(members[0], request)
        assert members[0].lb_value == 1.0  # completion does nothing

    def test_round_robin_emerges_in_steady_state(self, members, rng):
        """With dispatch-time increments and ties broken by index, the
        policy distributes perfectly evenly."""
        policy = TotalRequestPolicy()
        picks = []
        for _ in range(20):
            member = policy.select(members, rng)
            policy.on_dispatch(member, make_request(member))
            picks.append(member.index)
        assert picks[:8] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert all(member.lb_value == 5 for member in members)


class TestTotalTraffic:
    def test_completion_adds_traffic_bytes(self, members):
        policy = TotalTrafficPolicy()
        request = make_request(members[0])
        policy.on_dispatch(members[0], request)
        assert members[0].lb_value == 0.0  # nothing at dispatch
        policy.on_complete(members[0], request)
        assert members[0].lb_value == request.traffic_bytes

    def test_stalled_member_stays_lowest(self, members, rng):
        """The §V-A instability: a member that completes nothing keeps
        the lowest lb_value and is picked forever."""
        policy = TotalTrafficPolicy()
        for _ in range(10):
            member = policy.select(members, rng)
            request = make_request(member)
            policy.on_dispatch(member, request)
            if member.index != 0:  # member 0 is "stalled": no completion
                policy.on_complete(member, request)
        # After warm-up, member 0 has lb 0 and keeps winning.
        assert policy.select(members, rng) is members[0]


class TestCurrentLoad:
    def test_pick_and_complete_balance(self, members):
        policy = CurrentLoadPolicy()
        request = make_request(members[0])
        policy.on_pick(members[0], request)
        assert members[0].lb_value == 1.0
        policy.on_complete(members[0], request)
        assert members[0].lb_value == 0.0

    def test_never_negative(self, members):
        policy = CurrentLoadPolicy()
        request = make_request(members[0])
        policy.on_complete(members[0], request)
        policy.on_complete(members[0], request)
        assert members[0].lb_value == 0.0

    def test_abandoned_pick_is_refunded(self, members):
        policy = CurrentLoadPolicy()
        request = make_request(members[0])
        policy.on_pick(members[0], request)
        policy.on_pick_abandoned(members[0], request)
        assert members[0].lb_value == 0.0

    def test_stalled_member_rises_and_is_avoided(self, members, rng):
        """The §V-B remedy: picks (even stuck ones) weigh the stalled
        member down, so healthy members win."""
        policy = CurrentLoadPolicy()
        stalled = members[0]
        # Two workers pick the stalled member and get stuck (no
        # completion, no abandonment yet).
        policy.on_pick(stalled, make_request(stalled))
        policy.on_pick(stalled, make_request(stalled))
        picks = [policy.select(members, rng) for _ in range(6)]
        assert stalled not in picks

    def test_property_random_ops_keep_lb_value_nonnegative(self, members):
        rng = np.random.default_rng(0)
        policy = CurrentLoadPolicy()
        member = members[0]
        for _ in range(500):
            op = rng.integers(3)
            request = make_request(member)
            if op == 0:
                policy.on_pick(member, request)
            elif op == 1:
                policy.on_complete(member, request)
            else:
                policy.on_pick_abandoned(member, request)
            assert member.lb_value >= 0


class TestRoundRobin:
    def test_cycles_members(self, members, rng):
        policy = RoundRobinPolicy()
        picks = [policy.select(members, rng).index for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_ineligible(self, members, rng):
        policy = RoundRobinPolicy()
        eligible = [members[0], members[2]]
        picks = [policy.select(eligible, rng).index for _ in range(4)]
        assert picks == [0, 2, 0, 2]


class TestRandom:
    def test_covers_all_members(self, members, rng):
        policy = RandomPolicy()
        picks = {policy.select(members, rng).index for _ in range(100)}
        assert picks == {0, 1, 2, 3}


class TestTwoChoices:
    def test_prefers_less_loaded(self, members, rng):
        policy = TwoChoicesPolicy()
        members[0].inflight = 10
        members[1].inflight = 10
        members[2].inflight = 0
        members[3].inflight = 10
        picks = [policy.select(members, rng) for _ in range(50)]
        # member 2 must win every comparison it appears in; roughly
        # half the samples include it.
        assert picks.count(members[2]) > 10
        for pick in picks:
            assert pick.inflight in (0, 10)

    def test_single_member(self, members, rng):
        policy = TwoChoicesPolicy()
        assert policy.select(members[:1], rng) is members[0]


class TestEwmaLatency:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaLatencyPolicy(alpha=0)
        with pytest.raises(ConfigurationError):
            EwmaLatencyPolicy(alpha=1.5)

    def test_tracks_and_prefers_fast_members(self, members, rng):
        policy = EwmaLatencyPolicy(alpha=0.5)
        slow, fast = members[0], members[1]
        for member, latency in [(slow, 0.5), (fast, 0.01)]:
            request = make_request(member)
            request.dispatched_at = member.env.now
            member.env._now = latency  # simulate elapsed time
            policy.on_complete(member, request)
            member.env._now = 0.0
        assert slow.ewma_response_time > fast.ewma_response_time
        assert policy.select([slow, fast], rng) is fast

    def test_unknown_members_treated_as_fast(self, members, rng):
        policy = EwmaLatencyPolicy()
        members[3].ewma_response_time = 0.2
        pick = policy.select(members, rng)
        assert pick.index == 0  # no history sorts first

    def test_ewma_decays_history(self, members):
        policy = EwmaLatencyPolicy(alpha=0.5)
        member = members[0]
        member.ewma_response_time = 1.0
        request = make_request(member)
        request.dispatched_at = 0.0
        policy.on_complete(member, request)  # observed 0.0
        assert member.ewma_response_time == pytest.approx(0.5)
