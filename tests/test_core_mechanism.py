"""Unit tests for the get_endpoint mechanisms (Algorithm 1 and remedy)."""

import pytest

from repro.core import (
    DEFAULT_CACHE_ACQUIRE_TIMEOUT,
    DEFAULT_JK_SLEEP,
    MECHANISMS,
    ModifiedGetEndpoint,
    OriginalGetEndpoint,
    make_mechanism,
)
from repro.core.member import BalancerMember
from repro.errors import ConfigurationError
from repro.osmodel import Host
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer


def make_member(env, pool_size=2, preconnect=True):
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    tomcat = TomcatServer(env, "tomcat1", Host(env, "tomcat1"), mysql,
                          max_threads=2)
    return BalancerMember(env, tomcat, 0, pool_size=pool_size,
                          preconnect=preconnect), tomcat


def run_get_endpoint(env, mechanism, member):
    result = {}

    def proc(env):
        endpoint = yield from mechanism.get_endpoint(member)
        result["endpoint"] = endpoint
        result["time"] = env.now

    env.process(proc(env))
    env.run()
    return result


class TestRegistry:
    def test_defaults_match_mod_jk(self):
        assert DEFAULT_CACHE_ACQUIRE_TIMEOUT == pytest.approx(0.300)
        assert DEFAULT_JK_SLEEP == pytest.approx(0.100)

    def test_make_mechanism(self):
        assert isinstance(make_mechanism("original"), OriginalGetEndpoint)
        assert isinstance(make_mechanism("modified"), ModifiedGetEndpoint)
        with pytest.raises(ConfigurationError):
            make_mechanism("nope")
        assert set(MECHANISMS) == {"original", "modified"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OriginalGetEndpoint(cache_acquire_timeout=-1)
        with pytest.raises(ConfigurationError):
            OriginalGetEndpoint(jk_sleep=0)


class TestOriginal:
    def test_immediate_success_when_endpoint_free(self):
        env = Environment()
        member, _ = make_member(env)
        result = run_get_endpoint(env, OriginalGetEndpoint(), member)
        assert result["endpoint"] is not None
        assert result["time"] == 0.0

    def test_polls_until_timeout_then_fails(self):
        """Algorithm 1 with the defaults probes at 0/100/200 ms and
        returns false at 300 ms."""
        env = Environment()
        member, _ = make_member(env, pool_size=1)
        member.try_acquire()  # exhaust the pool, never released
        mechanism = OriginalGetEndpoint()
        result = run_get_endpoint(env, mechanism, member)
        assert result["endpoint"] is None
        assert result["time"] == pytest.approx(0.300)
        assert mechanism.timeouts == 1

    def test_succeeds_when_endpoint_frees_mid_poll(self):
        """A millibottleneck shorter than the timeout: the poll
        succeeds at the first probe after recovery — the worker was
        blocked, but the member never left the Available state."""
        env = Environment()
        member, _ = make_member(env, pool_size=1)
        endpoint = member.try_acquire()

        def releaser(env):
            yield env.timeout(0.150)
            endpoint.release()

        env.process(releaser(env))
        mechanism = OriginalGetEndpoint()
        result = run_get_endpoint(env, mechanism, member)
        assert result["endpoint"] is not None
        assert result["time"] == pytest.approx(0.200)  # next 100 ms probe
        assert mechanism.timeouts == 0
        assert mechanism.time_spent_polling == pytest.approx(0.200)

    def test_custom_timeout(self):
        env = Environment()
        member, _ = make_member(env, pool_size=1)
        member.try_acquire()
        mechanism = OriginalGetEndpoint(cache_acquire_timeout=0.05,
                                        jk_sleep=0.01)
        result = run_get_endpoint(env, mechanism, member)
        assert result["endpoint"] is None
        assert result["time"] == pytest.approx(0.05)


class TestModified:
    def test_immediate_success(self):
        env = Environment()
        member, _ = make_member(env)
        result = run_get_endpoint(env, ModifiedGetEndpoint(), member)
        assert result["endpoint"] is not None
        assert result["time"] == 0.0

    def test_immediate_failure_no_waiting(self):
        """§IV-C: no polling — the verdict lands in zero time."""
        env = Environment()
        member, _ = make_member(env, pool_size=1)
        member.try_acquire()
        mechanism = ModifiedGetEndpoint()
        result = run_get_endpoint(env, mechanism, member)
        assert result["endpoint"] is None
        assert result["time"] == 0.0
        assert mechanism.immediate_failures == 1

    def test_unresponsive_backend_fails_fresh_connections(self):
        env = Environment()
        member, tomcat = make_member(env, pool_size=2, preconnect=False)

        def stall(env):
            yield from tomcat.host.cpu.stall(1.0)

        env.process(stall(env))
        env.run(until=0.1)
        result = {}

        def probe(env):
            endpoint = yield from ModifiedGetEndpoint().get_endpoint(member)
            result["endpoint"] = endpoint

        env.process(probe(env))
        env.run(until=0.2)
        assert result["endpoint"] is None
