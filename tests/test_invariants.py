"""System-wide conservation and accounting invariants.

Every experiment, whatever the policy bundle, fault scenario or remedy
stack, must conserve requests and packets and keep its gauge counters
sane:

* **packet conservation** — every packet the client TCP stack sends is
  either accepted by a web-tier socket or counted as dropped
  (accept-queue overflow or network loss);
* **web-tier conservation** — every accepted request is completed,
  answered with a 503, or still inside the server (accept queue +
  busy workers) at the horizon;
* **client conservation** — attempts issued equal completions plus
  abandonments plus at most one in-flight request per closed-loop
  client;
* **balancer accounting** — per member, ``dispatched == completed +
  inflight`` with ``inflight`` never negative, during the run and
  after it;
* **drain** — with a finite workload and no faults, every in-flight
  counter returns to exactly zero and the identities close with no
  in-server remainder.

These are checked at the horizon for every Table-I policy bundle and
for every fault-zoo scenario crossed with the extreme remedy bundles,
and continuously (50 ms sampling) during a millibottleneck run.
"""

import pytest

from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.cluster.scenarios import (
    FAULT_SCENARIOS,
    ZONE_FAULT_KEYS,
    fault_specs,
)
from repro.cluster.topology import build_system
from repro.controlplane import CONTROLPLANE_BUNDLES
from repro.core.remedies import BUNDLES, get_bundle
from repro.netmodel.tcp import GaveUp, TcpSender
from repro.resilience import RESILIENCE_BUNDLES, get_resilience
from repro.sim.core import Environment
from repro.workload.mix import browsing_only_mix
from repro.workload.request import Request
from repro.workload.session import Session

import numpy as np

DURATION = 4.0
PROFILE = ScaleProfile.smoke()


def run_experiment(**overrides):
    config = ExperimentConfig(
        profile=PROFILE, duration=DURATION,
        trace_lb_values=False, trace_dispatches=False, **overrides)
    return ExperimentRunner(config).run()


# -- the invariant assertions (shared by every grid cell) ------------------

def assert_packet_conservation(result):
    population, system = result.population, result.system
    accepted = sum(apache.socket.accepted for apache in system.apaches)
    sent = population.sender.packets_sent
    dropped = population.sender.packets_dropped
    assert sent == accepted + dropped, (
        "packets leaked: sent {} != accepted {} + dropped {}".format(
            sent, accepted, dropped))
    socket_drops = sum(apache.socket.dropped for apache in system.apaches)
    # Network-loss faults drop packets the sockets never see.
    assert dropped >= socket_drops


def assert_web_tier_conservation(result):
    for apache in result.system.apaches:
        accepted = apache.socket.accepted
        # Shed responses (admission / bulkhead / leveling overflow) are
        # fast completions the control plane answered; leveled requests
        # parked in the queue count via in_server.
        accounted = (apache.requests_completed + apache.error_responses
                     + apache.shed_responses + apache.in_server)
        assert accepted == accounted, (
            "{}: accepted {} != completed {} + 503s {} + sheds {} "
            "+ in_server {}".format(
                apache.name, accepted, apache.requests_completed,
                apache.error_responses, apache.shed_responses,
                apache.in_server))
        assert apache.busy_workers >= 0
        assert apache.queue_length >= 0


def assert_client_conservation(result):
    population = result.population
    in_flight = (population.attempts_issued
                 - population.requests_completed
                 - population.requests_abandoned)
    # Closed-loop clients have at most one outstanding attempt each.
    assert 0 <= in_flight <= len(population)


def assert_balancer_accounting(result):
    for balancer in result.system.balancers:
        # Retired members (autoscaler scale-downs) keep their counters;
        # the identities must close over live and retired alike.
        members = (list(balancer.members)
                   + list(getattr(balancer, "retired_members", ())))
        for member in members:
            assert member.inflight >= 0, member.name
            assert member.dispatched == member.completed + member.inflight, (
                "{}: dispatched {} != completed {} + inflight {}".format(
                    member.name, member.dispatched, member.completed,
                    member.inflight))
    for tomcat in result.system.tomcats:
        assert tomcat.busy_threads >= 0
        assert tomcat.queue_length >= 0


def assert_all_invariants(result):
    assert_packet_conservation(result)
    assert_web_tier_conservation(result)
    assert_client_conservation(result)
    assert_balancer_accounting(result)


# -- the grid ---------------------------------------------------------------

@pytest.mark.parametrize("bundle_key", sorted(BUNDLES))
@pytest.mark.parametrize("seed", [42, 20170601])
def test_invariants_hold_for_every_policy_bundle(bundle_key, seed):
    """Table I: all six policy/mechanism bundles conserve requests."""
    result = run_experiment(bundle_key=bundle_key, seed=seed)
    assert_all_invariants(result)
    assert result.stats().count > 0


@pytest.mark.parametrize(
    "fault_key", sorted(set(FAULT_SCENARIOS) - ZONE_FAULT_KEYS))
@pytest.mark.parametrize("remedy_key", ["none", "full"])
def test_invariants_hold_for_every_fault_scenario(fault_key, remedy_key):
    """The fault zoo, bare and fully remedied, conserves requests.

    Zone faults have no target in the classic flat build; their
    invariants run against the geo topology in test_geo.py.
    """
    assert remedy_key in RESILIENCE_BUNDLES
    result = run_experiment(
        bundle_key="current_load_modified", seed=7,
        faults=fault_specs(fault_key, DURATION),
        resilience=get_resilience(remedy_key))
    assert_all_invariants(result)


@pytest.mark.parametrize("remedy_key", sorted(CONTROLPLANE_BUNDLES))
@pytest.mark.parametrize("fault_key", ["none", "packet_loss",
                                       "transient_crash"])
def test_invariants_hold_for_every_controlplane_bundle(fault_key,
                                                       remedy_key):
    """Control-plane remedies — sheds, leveling queues, bulkheads and
    replica churn included — conserve requests under faults.  Shed
    responses enter the web-tier identity; dynamic replicas enter the
    balancer identity via ``retired_members``."""
    result = run_experiment(
        bundle_key="current_load_modified", seed=7,
        faults=fault_specs(fault_key, DURATION),
        controlplane=CONTROLPLANE_BUNDLES[remedy_key])
    assert_all_invariants(result)


def test_invariants_hold_with_aggressive_replica_churn():
    """An autoscaler flapping between watermarks every interval keeps
    every conservation identity intact, including requests in flight
    on replicas that retire under them."""
    from repro.controlplane import AutoscalerConfig, ControlPlaneConfig

    result = run_experiment(
        bundle_key="current_load_modified", seed=7,
        faults=fault_specs("transient_crash", DURATION),
        controlplane=ControlPlaneConfig(autoscaler=AutoscalerConfig(
            interval=0.25, warmup=0.25, cooldown=0.25,
            high_watermark=0.4, low_watermark=0.2, max_replicas=6)))
    assert_all_invariants(result)
    scaler = result.system.autoscalers[0]
    assert scaler.scale_ups + scaler.scale_downs > 0


def test_invariants_hold_continuously_under_millibottlenecks():
    """Gauges and accounting identities, sampled every 50 ms of a run
    that includes flush stalls, drops and retransmissions."""
    from repro.netmodel.tcp import RetransmissionPolicy
    from repro.workload.generator import ClientPopulation

    env = Environment()
    rng = np.random.default_rng(99)
    system = build_system(
        env, PROFILE, bundle=get_bundle("original_total_request"),
        rng=rng, tomcat_millibottlenecks=True,
        apache_millibottlenecks=False)
    population = ClientPopulation(
        env, sockets=[apache.socket for apache in system.apaches],
        total_clients=PROFILE.clients, mix=browsing_only_mix(), rng=rng,
        think_time=PROFILE.think_time,
        retransmission=RetransmissionPolicy(),
        ramp_up=PROFILE.ramp_up)
    violations = []

    def monitor():
        while True:
            yield env.timeout(0.05)
            for balancer in system.balancers:
                for member in balancer.members:
                    if member.inflight < 0:
                        violations.append((env.now, member.name,
                                           "inflight", member.inflight))
                    if member.dispatched != (member.completed
                                             + member.inflight):
                        violations.append((env.now, member.name,
                                           "accounting", member.dispatched))
            for server in system.servers:
                if server.in_server < 0:
                    violations.append((env.now, server.name,
                                       "in_server", server.in_server))
            for apache in system.apaches:
                sent = population.sender.packets_sent
                if sent < apache.socket.accepted:
                    violations.append((env.now, apache.name, "packets",
                                       sent))

    env.process(monitor())
    env.run(until=DURATION)
    assert violations == []
    # The horizon identities hold on the hand-built system too.
    accepted = sum(apache.socket.accepted for apache in system.apaches)
    assert population.sender.packets_sent == (
        accepted + population.sender.packets_dropped)
    for apache in system.apaches:
        assert apache.socket.accepted == (
            apache.requests_completed + apache.error_responses
            + apache.in_server)


def test_drain_returns_every_counter_to_zero():
    """A finite workload against a fault-free system drains to zero:
    in-flight counters, queues and busy counts all return to rest and
    the conservation identities close exactly."""
    env = Environment()
    rng = np.random.default_rng(5)
    system = build_system(
        env, PROFILE, bundle=get_bundle("current_load_modified"),
        rng=rng, tomcat_millibottlenecks=False,
        apache_millibottlenecks=False)
    sender = TcpSender(env)
    mix = browsing_only_mix()
    outcomes = {"completed": 0, "abandoned": 0, "issued": 0}

    def finite_client(client_id, socket, requests):
        session = Session(mix, rng)
        for index in range(requests):
            request = Request(env, client_id * 1000 + index,
                              session.next_interaction(), client_id)
            outcomes["issued"] += 1
            try:
                yield from sender.send(socket, request)
            except GaveUp:
                outcomes["abandoned"] += 1
                continue
            yield request.completion
            outcomes["completed"] += 1
            yield env.timeout(float(rng.exponential(0.02)))

    for client_id in range(12):
        socket = system.apaches[client_id % len(system.apaches)].socket
        env.process(finite_client(client_id, socket, requests=8))
    env.run()  # no horizon: run to natural quiescence

    assert outcomes["issued"] == 12 * 8
    assert outcomes["completed"] + outcomes["abandoned"] == 12 * 8
    # Packet conservation, exact.
    accepted = sum(apache.socket.accepted for apache in system.apaches)
    assert sender.packets_sent == accepted + sender.packets_dropped
    # Every tier drained.
    for apache in system.apaches:
        assert apache.busy_workers == 0, apache.name
        assert apache.queue_length == 0, apache.name
        assert (apache.socket.accepted
                == apache.requests_completed + apache.error_responses)
    for tomcat in system.tomcats:
        assert tomcat.busy_threads == 0, tomcat.name
        assert tomcat.queue_length == 0, tomcat.name
    assert system.mysql.in_server == 0
    # Every balancer member returned to zero in-flight with exact
    # dispatch accounting.
    for balancer in system.balancers:
        for member in balancer.members:
            assert member.inflight == 0, member.name
            assert member.dispatched == member.completed, member.name
    assert (sum(member.completed for balancer in system.balancers
                for member in balancer.members)
            == outcomes["completed"])
