"""Unit tests for Resource, PriorityResource, and Container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, PriorityResource, Resource


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_immediate_grant_when_free():
    env = Environment()
    res = Resource(env, capacity=2)

    def proc(env):
        req = res.request()
        assert req.triggered  # granted synchronously
        yield req
        return res.count

    p = env.process(proc(env))
    env.run()
    assert p.value == 1


def test_fifo_queueing():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, tag, hold):
        with res.request() as req:
            yield req
            order.append((tag, env.now))
            yield env.timeout(hold)

    for tag in range(3):
        env.process(worker(env, tag, 1.0))
    env.run()
    assert order == [(0, 0.0), (1, 1.0), (2, 2.0)]


def test_counts_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=2)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    for _ in range(5):
        env.process(holder(env))
    env.run(until=1)
    assert res.count == 2
    assert res.available == 0
    assert res.queue_length == 3
    assert res.capacity == 2


def test_release_admits_next_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def first(env):
        req = res.request()
        yield req
        yield env.timeout(2)
        res.release(req)

    def second(env):
        yield env.timeout(0.5)
        with res.request() as req:
            yield req
            granted.append(env.now)

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert granted == [2.0]


def test_release_unowned_request_raises():
    env = Environment()
    res = Resource(env)

    def proc(env):
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    env.process(proc(env))
    env.run()


def test_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def hog(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        outcome = yield req | env.timeout(0.3)
        assert req not in outcome
        req.cancel()
        return env.now

    env.process(hog(env))
    p = env.process(impatient(env))
    env.run()
    assert p.value == 0.3
    assert res.queue_length == 0


def test_cancel_granted_request_raises():
    env = Environment()
    res = Resource(env)

    def proc(env):
        req = res.request()
        yield req
        with pytest.raises(SimulationError):
            req.cancel()
        res.release(req)

    env.process(proc(env))
    env.run()


def test_cancel_or_release_handles_both_states():
    env = Environment()
    res = Resource(env, capacity=1)

    def hog(env):
        req = res.request()
        yield req
        yield env.timeout(5)
        req.cancel_or_release()  # granted -> release

    def waiter(env):
        yield env.timeout(1)
        req = res.request()
        outcome = yield req | env.timeout(0.1)
        req.cancel_or_release()  # pending -> cancel
        return req.triggered

    env.process(hog(env))
    p = env.process(waiter(env))
    env.run()
    assert p.value is False
    assert res.count == 0
    assert res.queue_length == 0


def test_cancelled_request_is_skipped_on_release():
    env = Environment()
    res = Resource(env, capacity=1)
    served = []

    def hog(env):
        req = res.request()
        yield req
        yield env.timeout(1)
        res.release(req)

    def quitter(env):
        req = res.request()
        yield env.timeout(0.5)
        req.cancel()

    def patient(env):
        with res.request() as req:
            yield req
            served.append(env.now)

    env.process(hog(env))
    env.process(quitter(env))
    env.process(patient(env))
    env.run()
    assert served == [1.0]


def test_request_records_issue_time():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env):
        yield env.timeout(2.5)
        req = res.request()
        yield req
        return req.issued_at

    p = env.process(proc(env))
    env.run()
    assert p.value == 2.5


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def hog(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    def worker(env, prio, tag):
        yield env.timeout(0.1)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(0.1)

    env.process(hog(env))
    env.process(worker(env, 5, "low"))
    env.process(worker(env, 1, "high"))
    env.process(worker(env, 3, "mid"))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_break_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def hog(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    def worker(env, tag):
        yield env.timeout(0.1)
        with res.request(priority=2) as req:
            yield req
            order.append(tag)

    env.process(hog(env))
    for tag in ["a", "b", "c"]:
        env.process(worker(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_container_levels():
    env = Environment()
    box = Container(env, capacity=100, init=10)
    assert box.level == 10
    assert box.capacity == 100

    def proc(env):
        yield box.put(40)
        assert box.level == 50
        yield box.get(25)
        assert box.level == 25

    env.process(proc(env))
    env.run()


def test_container_get_waits_for_amount():
    env = Environment()
    box = Container(env)
    times = []

    def consumer(env):
        yield box.get(10)
        times.append(env.now)

    def producer(env):
        for _ in range(5):
            yield env.timeout(1)
            yield box.put(3)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    # 3 puts of 3 reach 9 at t=3; the 4th put reaches 12 >= 10 at t=4.
    assert times == [4.0]
    assert box.level == pytest.approx(5.0)


def test_container_put_waits_for_room():
    env = Environment()
    box = Container(env, capacity=10, init=8)
    times = []

    def producer(env):
        yield box.put(5)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(2)
        yield box.get(4)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [2.0]
    assert box.level == pytest.approx(9.0)


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
    box = Container(env)
    with pytest.raises(ValueError):
        box.put(0)
    with pytest.raises(ValueError):
        box.get(-3)


def test_resource_repr():
    env = Environment()
    res = Resource(env, capacity=3)
    assert "capacity=3" in repr(res)
