"""Unit tests for the RUBBoS workload substrate."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.metrics import ResponseTimeRecorder
from repro.netmodel import ListenSocket
from repro.sim import Environment
from repro.workload import (
    BROWSING_ONLY_WEIGHTS,
    INTERACTIONS,
    Client,
    ClientPopulation,
    Request,
    Session,
    WorkloadMix,
    browsing_only_mix,
    get_interaction,
    read_write_mix,
)


class TestInteractions:
    def test_exactly_24_interactions(self):
        assert len(INTERACTIONS) == 24

    def test_lookup(self):
        interaction = get_interaction("ViewStory")
        assert interaction.name == "ViewStory"
        assert not interaction.is_write

    def test_unknown_lookup_raises(self):
        with pytest.raises(WorkloadError):
            get_interaction("NoSuchPage")

    def test_write_interactions_exist(self):
        writes = [i for i in INTERACTIONS.values() if i.is_write]
        assert {"StoreComment", "StoreStory", "RegisterUser",
                "AcceptStory", "RejectStory", "ModerateComment"} == {
                    i.name for i in writes}

    def test_demands_are_positive(self):
        for interaction in INTERACTIONS.values():
            assert interaction.apache_cpu > 0
            assert interaction.tomcat_cpu > 0
            assert interaction.mysql_cpu > 0
            assert interaction.log_bytes > 0
            assert interaction.traffic_bytes == (
                interaction.request_bytes + interaction.response_bytes)

    def test_app_tier_dominates_web_tier_cpu(self):
        # The servlet container does the dynamic-page work.
        for interaction in INTERACTIONS.values():
            assert interaction.tomcat_cpu > interaction.apache_cpu

    def test_writes_log_more(self):
        write_logs = min(i.log_bytes for i in INTERACTIONS.values()
                         if i.is_write)
        read_logs = max(i.log_bytes for i in INTERACTIONS.values()
                        if not i.is_write)
        assert write_logs > read_logs


class TestMixes:
    def test_browsing_only_has_no_writes(self):
        assert browsing_only_mix().write_fraction == 0.0

    def test_read_write_is_about_ten_percent_writes(self):
        assert 0.05 <= read_write_mix().write_fraction <= 0.15

    def test_transition_matrix_is_stochastic(self):
        for mix in (browsing_only_mix(), read_write_mix()):
            matrix = mix.transition_matrix
            assert matrix.shape == (24, 24)
            assert np.all(matrix >= 0)
            assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_initial_distribution_sums_to_one(self):
        dist = read_write_mix().initial_distribution()
        assert np.isclose(dist.sum(), 1.0)

    def test_affinity_boost_visible(self):
        mix = read_write_mix()
        i = mix.states.index("PostCommentForm")
        j = mix.states.index("StoreComment")
        # The form overwhelmingly leads to the store action.
        assert mix.transition_matrix[i, j] > 0.3

    def test_zero_weight_states_never_sampled_initially(self):
        mix = browsing_only_mix()
        rng = np.random.default_rng(0)
        names = {mix.first_state(rng) for _ in range(500)}
        for name in names:
            assert BROWSING_ONLY_WEIGHTS[name] > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadMix("bad", {"ViewStory": 1.0})  # missing others
        with pytest.raises(WorkloadError):
            WorkloadMix("bad", dict(BROWSING_ONLY_WEIGHTS,
                                    NotAPage=1.0))
        with pytest.raises(WorkloadError):
            WorkloadMix("bad", {name: 0.0 for name in INTERACTIONS})


class TestSession:
    def test_walk_stays_in_state_space(self):
        session = Session(read_write_mix(), np.random.default_rng(7))
        for _ in range(200):
            interaction = session.next_interaction()
            assert interaction.name in INTERACTIONS
        assert session.interactions_issued() == 200

    def test_current_tracks_last_interaction(self):
        session = Session(read_write_mix(), np.random.default_rng(7))
        assert session.current is None
        interaction = session.next_interaction()
        assert session.current == interaction.name

    def test_browsing_session_never_writes(self):
        session = Session(browsing_only_mix(), np.random.default_rng(3))
        for _ in range(500):
            assert not session.next_interaction().is_write

    def test_deterministic_given_seed(self):
        def walk(seed):
            session = Session(read_write_mix(), np.random.default_rng(seed))
            return [session.next_interaction().name for _ in range(50)]
        assert walk(5) == walk(5)
        assert walk(5) != walk(6)


class TestRequest:
    def test_metadata_lifecycle(self):
        env = Environment()
        request = Request(env, 1, get_interaction("ViewStory"), client_id=9)
        assert request.created_at == 0.0
        assert request.served_by is None
        assert request.retransmissions == 0
        assert not request.completion.triggered
        assert request.traffic_bytes == request.interaction.traffic_bytes
        assert "ViewStory" in repr(request)


class FakeBackend:
    """Accepts requests from a socket and completes them after a delay."""

    def __init__(self, env, socket, delay=0.002):
        self.env = env
        self.socket = socket
        self.delay = delay
        self.processed = 0
        env.process(self._run())

    def _run(self):
        while True:
            request = yield self.socket.accept()
            yield self.env.timeout(self.delay)
            self.processed += 1
            request.served_by = "fake"
            request.completion.succeed(request)


class TestClient:
    def test_closed_loop_issues_and_records(self):
        env = Environment()
        socket = ListenSocket(env, backlog=100)
        backend = FakeBackend(env, socket)
        recorder = ResponseTimeRecorder()
        client = Client(env, 0, socket, read_write_mix(), recorder,
                        np.random.default_rng(1), think_time=0.05)
        env.run(until=5.0)
        assert client.requests_completed > 10
        assert len(recorder) == client.requests_completed
        assert backend.processed == client.requests_completed
        # Closed loop: never more than one outstanding request.
        assert all(r.served_by == "fake" for r in recorder.requests)

    def test_think_time_validation(self):
        env = Environment()
        socket = ListenSocket(env, backlog=10)
        with pytest.raises(ValueError):
            Client(env, 0, socket, read_write_mix(), ResponseTimeRecorder(),
                   np.random.default_rng(1), think_time=0)

    def test_abandoned_requests_counted(self):
        env = Environment()
        socket = ListenSocket(env, backlog=1)
        socket.offer("squatter-that-never-leaves")
        recorder = ResponseTimeRecorder()
        client = Client(env, 0, socket, read_write_mix(), recorder,
                        np.random.default_rng(1), think_time=0.2)
        env.run(until=30.0)
        assert client.requests_abandoned > 0
        assert client.requests_completed == 0
        assert len(recorder) == 0


class TestClientPopulation:
    def test_spawns_and_splits_clients(self):
        env = Environment()
        sockets = [ListenSocket(env, backlog=100) for _ in range(2)]
        for socket in sockets:
            FakeBackend(env, socket)
        population = ClientPopulation(
            env, sockets, total_clients=10, mix=read_write_mix(),
            rng=np.random.default_rng(2), think_time=0.05, ramp_up=0.1)
        env.run(until=3.0)
        assert len(population) == 10
        per_socket = [sum(1 for c in population.clients
                          if c.socket is s) for s in sockets]
        assert per_socket == [5, 5]
        assert population.requests_completed > 50
        assert population.packets_dropped == 0

    def test_validation(self):
        env = Environment()
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            ClientPopulation(env, [], 10, read_write_mix(),
                             np.random.default_rng(0))
        socket = ListenSocket(env, backlog=10)
        with pytest.raises(ConfigurationError):
            ClientPopulation(env, [socket], 0, read_write_mix(),
                             np.random.default_rng(0))

    def test_request_ids_unique(self):
        env = Environment()
        socket = ListenSocket(env, backlog=100)
        FakeBackend(env, socket)
        population = ClientPopulation(
            env, [socket], total_clients=5, mix=read_write_mix(),
            rng=np.random.default_rng(3), think_time=0.05)
        env.run(until=2.0)
        ids = [r.request_id for r in population.recorder.requests]
        assert len(ids) == len(set(ids))
