"""Unit tests for processes, interrupts, and condition events."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return "result"

    p = env.process(proc(env))
    env.run()
    assert p.value == "result"
    assert not p.is_alive


def test_process_is_alive_while_running():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run(until=1)
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_waits_for_process():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return "child-value"

    def parent(env):
        value = yield env.process(child(env))
        return (env.now, value)

    p = env.process(parent(env))
    env.run()
    assert p.value == (2.0, "child-value")


def test_yield_non_event_raises_inside_process():
    env = Environment()

    def proc(env):
        try:
            yield 42
        except SimulationError:
            return "caught"
        return "not caught"

    p = env.process(proc(env))
    env.run()
    assert p.value == "caught"


def test_exception_in_process_propagates():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise ValueError("inside process")

    env.process(proc(env))
    with pytest.raises(ValueError, match="inside process"):
        env.run()


def test_waiting_parent_receives_child_exception():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise KeyError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "handled"

    p = env.process(parent(env))
    env.run()
    assert p.value == "handled"


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(10)
        except Interrupt as interrupt:
            return (env.now, interrupt.cause)

    def attacker(env, victim_proc):
        yield env.timeout(3)
        victim_proc.interrupt("preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == (3.0, "preempted")


def test_interrupt_cause_str():
    assert "why" in str(Interrupt("why"))


def test_interrupted_process_can_keep_waiting():
    env = Environment()

    def victim(env):
        timeout = env.timeout(10)
        try:
            yield timeout
        except Interrupt:
            # Resume waiting for the original event.
            yield timeout
            return env.now

    def attacker(env, victim_proc):
        yield env.timeout(1)
        victim_proc.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == 10.0


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def selfish(env):
        this = env.active_process
        with pytest.raises(SimulationError):
            this.interrupt()
        yield env.timeout(0)

    env.process(selfish(env))
    env.run()


def test_old_target_does_not_resume_after_interrupt():
    env = Environment()
    resumed = []

    def victim(env):
        try:
            yield env.timeout(5)
        except Interrupt:
            pass
        yield env.timeout(100)
        resumed.append("late")

    def attacker(env, victim_proc):
        yield env.timeout(1)
        victim_proc.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run(until=50)
    # The original 5s timeout fired at t=5 but must not resume the victim,
    # which by then waits on the 100s timeout.
    assert resumed == []
    assert v.is_alive


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == (3.0, ["a", "b"])


def test_any_of_returns_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(3, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, t1 in result, t2 in result)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, True, False)


def test_and_or_operators():
    env = Environment()

    def proc(env):
        a = env.timeout(1)
        b = env.timeout(2)
        yield a & b
        first = env.now
        c = env.timeout(1)
        d = env.timeout(5)
        yield c | d
        return (first, env.now)

    p = env.process(proc(env))
    env.run()
    assert p.value == (2.0, 3.0)


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_condition_value_mapping_api():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(1, value="y")
        result = yield env.all_of([t1, t2])
        assert result[t1] == "x"
        assert result == {t1: "x", t2: "y"}
        assert set(result.keys()) == {t1, t2}
        assert list(result) == result.keys()
        with pytest.raises(KeyError):
            _ = result[env.event()]
        return True

    p = env.process(proc(env))
    env.run()
    assert p.value is True


def test_nested_conditions_flatten_value():
    env = Environment()

    def proc(env):
        a = env.timeout(1, value=1)
        b = env.timeout(2, value=2)
        c = env.timeout(3, value=3)
        result = yield (a & b) & c
        return sorted(result.values())

    p = env.process(proc(env))
    env.run()
    assert p.value == [1, 2, 3]


def test_condition_failure_propagates():
    env = Environment()
    gate = env.event()

    def proc(env):
        try:
            yield gate & env.timeout(10)
        except RuntimeError:
            return "failed fast"

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("broken"))

    p = env.process(proc(env))
    env.process(failer(env))
    env.run()
    assert p.value == "failed fast"


def test_condition_rejects_foreign_environment():
    env1, env2 = Environment(), Environment()
    with pytest.raises(SimulationError):
        AllOf(env1, [env1.event(), env2.event()])


def test_active_process_visible_inside_process():
    env = Environment()
    captured = []

    def proc(env):
        captured.append(env.active_process)
        yield env.timeout(0)

    p = env.process(proc(env))
    assert env.active_process is None
    env.run()
    assert captured == [p]
    assert env.active_process is None
