"""Property-based tests for the balancer core and network layer."""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CurrentLoadPolicy,
    JoinIdleQueuePolicy,
    PrequalPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    StickySessionPolicy,
    TotalRequestPolicy,
    TotalTrafficPolicy,
    TwoChoicesPolicy,
    WeightedLeastConnPolicy,
)
from repro.core.member import BalancerMember
from repro.metrics import CompletedRequest, ResponseTimeRecorder
from repro.metrics.stats import ResponseTimeStats
from repro.netmodel import RetransmissionPolicy
from repro.osmodel import Host
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer
from repro.workload import Request, get_interaction


def build_members(count=4):
    env = Environment()
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    members = []
    for i in range(count):
        name = "tomcat{}".format(i + 1)
        tomcat = TomcatServer(env, name, Host(env, name), mysql,
                              max_threads=2)
        members.append(BalancerMember(env, tomcat, index=i,
                                      trace_lb_values=False))
    return env, members


def fresh_request(env, i=0):
    return Request(env, i, get_interaction("ViewStory"), 0)


policy_factories = st.sampled_from([
    TotalRequestPolicy, TotalTrafficPolicy, CurrentLoadPolicy,
    RoundRobinPolicy, RandomPolicy, TwoChoicesPolicy,
    PrequalPolicy, JoinIdleQueuePolicy, WeightedLeastConnPolicy,
    StickySessionPolicy,
])


@given(policy_factories,
       st.lists(st.integers(min_value=0, max_value=3),
                min_size=1, max_size=200),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=60)
def test_every_policy_always_returns_an_eligible_member(
        policy_factory, ops, seed):
    """Whatever sequence of pick/dispatch/complete events occurs, the
    policy's select() must return one of the offered members."""
    env, members = build_members()
    policy = policy_factory()
    rng = np.random.default_rng(seed)
    outstanding = []
    for op in ops:
        if op in (0, 1):  # pick and dispatch
            member = policy.select(members, rng)
            assert member in members
            request = fresh_request(env)
            request.dispatched_at = 0.0
            policy.on_pick(member, request)
            policy.on_dispatch(member, request)
            member.inflight += 1
            outstanding.append((member, request))
        elif op == 2 and outstanding:  # complete oldest
            member, request = outstanding.pop(0)
            member.inflight -= 1
            policy.on_complete(member, request)
        elif op == 3 and outstanding:  # abandon newest
            member, request = outstanding.pop()
            member.inflight -= 1
            policy.on_pick_abandoned(member, request)
        assert all(member.lb_value >= 0 for member in members)
        assert all(member.inflight >= 0 for member in members)


@given(st.lists(st.integers(min_value=0, max_value=3),
                min_size=4, max_size=400))
@settings(max_examples=60)
def test_current_load_lb_value_tracks_outstanding_picks(ops):
    """current_load's lb_value equals picks minus completions (never
    below zero) for any interleaving."""
    env, members = build_members(1)
    member = members[0]
    policy = CurrentLoadPolicy()
    pending = 0
    for op in ops:
        request = fresh_request(env)
        if op in (0, 1):
            policy.on_pick(member, request)
            pending += 1
        elif op == 2 and pending:
            policy.on_complete(member, request)
            pending -= 1
        elif op == 3 and pending:
            policy.on_pick_abandoned(member, request)
            pending -= 1
        assert member.lb_value == pending


@given(st.floats(min_value=0.01, max_value=5.0),
       st.floats(min_value=1.0, max_value=3.0),
       st.integers(min_value=0, max_value=8))
def test_retransmission_timers_are_monotone(initial_rto, backoff,
                                            attempts):
    """Total elapsed time to the n-th retransmit grows monotonically
    and matches the geometric sum."""
    policy = RetransmissionPolicy(initial_rto=initial_rto,
                                  backoff=backoff, max_retries=10)
    total = 0.0
    previous = 0.0
    for attempt in range(attempts):
        rto = policy.rto_after(attempt)
        assert rto >= previous * (1.0 if backoff == 1.0 else 0.999)
        previous = rto
        total += rto
    expected = sum(initial_rto * backoff ** k for k in range(attempts))
    assert total == pytest.approx(expected)


@given(st.lists(st.floats(min_value=1e-6, max_value=100.0,
                          allow_nan=False),
                min_size=1, max_size=300))
def test_response_time_stats_consistency(samples):
    """Counts partition, percentiles order, mean within [min, max]."""
    stats = ResponseTimeStats.from_samples(samples)
    assert stats.count == len(samples)
    mid_range = sum(1 for s in samples if 0.01 <= s <= 1.0)
    assert stats.vlrt_count + stats.normal_count + mid_range == stats.count
    # Float-summation rounding can put the mean a few ULPs outside the
    # sample range for near-identical samples.
    assert min(samples) * (1 - 1e-12) <= stats.mean
    assert stats.mean <= max(samples) * (1 + 1e-12)
    assert stats.median <= stats.p95 + 1e-12
    assert stats.p95 <= stats.p99 + 1e-12
    assert stats.p999 <= stats.max + 1e-12
    assert stats.vlrt_fraction == pytest.approx(
        stats.vlrt_count / stats.count)


# -- the modern-policy zoo ---------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=3),
                min_size=1, max_size=200),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=60)
def test_jiq_never_picks_busy_while_an_idle_member_exists(ops, seed):
    """JIQ's defining invariant: as long as some member is idle (zero
    in flight), a pick never lands on a busy one."""
    env, members = build_members()
    policy = JoinIdleQueuePolicy()
    for member in members:
        policy.on_member_added(member)
    rng = np.random.default_rng(seed)
    outstanding = []
    for op in ops:
        if op in (0, 1):  # pick and dispatch
            member = policy.select(members, rng)
            if any(m.inflight == 0 for m in members):
                assert member.inflight == 0
            request = fresh_request(env)
            request.dispatched_at = 0.0
            policy.on_pick(member, request)
            policy.on_dispatch(member, request)
            member.inflight += 1
            outstanding.append((member, request))
        elif op == 2 and outstanding:  # complete oldest
            member, request = outstanding.pop(0)
            member.inflight -= 1
            policy.on_complete(member, request)
        elif op == 3 and outstanding:  # abandon newest
            member, request = outstanding.pop()
            member.inflight -= 1
            policy.on_pick_abandoned(member, request)


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=50),
    st.floats(min_value=0, max_value=5, allow_nan=False)),
    min_size=1, max_size=16))
@settings(max_examples=80)
def test_prequal_rank_is_a_total_order_respecting_hot_cold(entries):
    """rank_key induces a strict total order in which every cold member
    (RIF at or below the hot-quantile threshold) precedes every hot
    member; cold sorts by latency, hot by RIF."""
    policy = PrequalPolicy()
    rifs = sorted(rif for rif, _ in entries)
    threshold = rifs[int(policy.config.hot_quantile * (len(rifs) - 1))]
    keyed = [(policy.rank_key(SimpleNamespace(index=i), rif, latency,
                              threshold), i, rif, latency)
             for i, (rif, latency) in enumerate(entries)]
    keys = [key for key, _, _, _ in keyed]
    assert len(set(keys)) == len(keys)  # strict: index breaks all ties
    ranked = sorted(keyed)
    cold = [(i, rif, lat) for _, i, rif, lat in ranked
            if rif <= threshold]
    hot = [(i, rif, lat) for _, i, rif, lat in ranked if rif > threshold]
    assert cold  # the minimum RIF is never above the quantile threshold
    # Every cold member outranks every hot member.
    assert [i for _, i, rif, _ in ranked if rif <= threshold] \
        == [i for i, _, _ in cold]
    assert ranked[:len(cold)] == [
        (policy.rank_key(SimpleNamespace(index=i), rif, lat, threshold),
         i, rif, lat) for i, rif, lat in cold]
    # Cold order is by probed latency; hot order is by probed RIF.
    assert cold == sorted(cold, key=lambda e: (e[2], e[1], e[0]))
    assert hot == sorted(hot, key=lambda e: (e[1], e[2], e[0]))


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                          st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=120),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=60)
def test_sticky_violations_fire_exactly_when_the_pin_is_ineligible(
        requests, seed):
    """The violation counter increments iff a pinned client's member is
    missing from the eligible list — and an eligible pin is honoured."""
    env, members = build_members()
    policy = StickySessionPolicy()
    rng = np.random.default_rng(seed)
    subsets = [members, members[:2], members[2:], members[1:]]
    pins = {}
    for serial, (client, subset_choice) in enumerate(requests):
        eligible = subsets[subset_choice]
        request = Request(env, serial, get_interaction("ViewStory"),
                          client)
        before = policy.violations
        member = policy.select(eligible, rng, request)
        assert member in eligible
        pinned = pins.get(client)
        if pinned is not None and pinned in eligible:
            assert member is pinned
            assert policy.violations == before
        elif pinned is not None:
            assert policy.violations == before + 1
        else:
            assert policy.violations == before
        pins[client] = member


@given(st.lists(st.integers(min_value=1, max_value=4),
                min_size=2, max_size=4),
       st.integers(min_value=1, max_value=120))
@settings(max_examples=60)
def test_weighted_least_conn_keeps_loads_proportional_to_weights(
        weights, picks):
    """Greedy (inflight+1)/weight selection keeps every pair of members
    within one slot of perfect weight proportionality."""
    env, members = build_members(len(weights))
    for member, weight in zip(members, weights):
        member.weight = float(weight)
    policy = WeightedLeastConnPolicy()
    rng = np.random.default_rng(1)
    for _ in range(picks):
        member = policy.select(members, rng)
        member.inflight += 1
    for a in members:
        for b in members:
            assert (a.inflight / a.weight - b.inflight / b.weight
                    <= 1.0 / b.weight + 1e-9)


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=50, allow_nan=False),
    st.floats(min_value=1e-4, max_value=5, allow_nan=False)),
    min_size=1, max_size=100))
@settings(max_examples=50)
def test_recorder_windows_conserve_vlrt_counts(pairs):
    """Summing VLRT windows always reproduces the total VLRT count."""
    recorder = ResponseTimeRecorder()
    for i, (start, duration) in enumerate(pairs):
        recorder.record(CompletedRequest(i, "ViewStory", start,
                                         start + duration))
    series = recorder.vlrt_windows()
    assert sum(series.values) == sum(
        1 for _, duration in pairs if duration > 1.0)
