"""Property-based tests for the balancer core and network layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CurrentLoadPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    TotalRequestPolicy,
    TotalTrafficPolicy,
    TwoChoicesPolicy,
)
from repro.core.member import BalancerMember
from repro.metrics import CompletedRequest, ResponseTimeRecorder
from repro.metrics.stats import ResponseTimeStats
from repro.netmodel import RetransmissionPolicy
from repro.osmodel import Host
from repro.sim import Environment
from repro.tiers import MySqlServer, TomcatServer
from repro.workload import Request, get_interaction


def build_members(count=4):
    env = Environment()
    mysql = MySqlServer(env, "mysql1", Host(env, "mysql1"))
    members = []
    for i in range(count):
        name = "tomcat{}".format(i + 1)
        tomcat = TomcatServer(env, name, Host(env, name), mysql,
                              max_threads=2)
        members.append(BalancerMember(env, tomcat, index=i,
                                      trace_lb_values=False))
    return env, members


def fresh_request(env, i=0):
    return Request(env, i, get_interaction("ViewStory"), 0)


policy_factories = st.sampled_from([
    TotalRequestPolicy, TotalTrafficPolicy, CurrentLoadPolicy,
    RoundRobinPolicy, RandomPolicy, TwoChoicesPolicy,
])


@given(policy_factories,
       st.lists(st.integers(min_value=0, max_value=3),
                min_size=1, max_size=200),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=60)
def test_every_policy_always_returns_an_eligible_member(
        policy_factory, ops, seed):
    """Whatever sequence of pick/dispatch/complete events occurs, the
    policy's select() must return one of the offered members."""
    env, members = build_members()
    policy = policy_factory()
    rng = np.random.default_rng(seed)
    outstanding = []
    for op in ops:
        if op in (0, 1):  # pick and dispatch
            member = policy.select(members, rng)
            assert member in members
            request = fresh_request(env)
            request.dispatched_at = 0.0
            policy.on_pick(member, request)
            policy.on_dispatch(member, request)
            member.inflight += 1
            outstanding.append((member, request))
        elif op == 2 and outstanding:  # complete oldest
            member, request = outstanding.pop(0)
            member.inflight -= 1
            policy.on_complete(member, request)
        elif op == 3 and outstanding:  # abandon newest
            member, request = outstanding.pop()
            member.inflight -= 1
            policy.on_pick_abandoned(member, request)
        assert all(member.lb_value >= 0 for member in members)
        assert all(member.inflight >= 0 for member in members)


@given(st.lists(st.integers(min_value=0, max_value=3),
                min_size=4, max_size=400))
@settings(max_examples=60)
def test_current_load_lb_value_tracks_outstanding_picks(ops):
    """current_load's lb_value equals picks minus completions (never
    below zero) for any interleaving."""
    env, members = build_members(1)
    member = members[0]
    policy = CurrentLoadPolicy()
    pending = 0
    for op in ops:
        request = fresh_request(env)
        if op in (0, 1):
            policy.on_pick(member, request)
            pending += 1
        elif op == 2 and pending:
            policy.on_complete(member, request)
            pending -= 1
        elif op == 3 and pending:
            policy.on_pick_abandoned(member, request)
            pending -= 1
        assert member.lb_value == pending


@given(st.floats(min_value=0.01, max_value=5.0),
       st.floats(min_value=1.0, max_value=3.0),
       st.integers(min_value=0, max_value=8))
def test_retransmission_timers_are_monotone(initial_rto, backoff,
                                            attempts):
    """Total elapsed time to the n-th retransmit grows monotonically
    and matches the geometric sum."""
    policy = RetransmissionPolicy(initial_rto=initial_rto,
                                  backoff=backoff, max_retries=10)
    total = 0.0
    previous = 0.0
    for attempt in range(attempts):
        rto = policy.rto_after(attempt)
        assert rto >= previous * (1.0 if backoff == 1.0 else 0.999)
        previous = rto
        total += rto
    expected = sum(initial_rto * backoff ** k for k in range(attempts))
    assert total == pytest.approx(expected)


@given(st.lists(st.floats(min_value=1e-6, max_value=100.0,
                          allow_nan=False),
                min_size=1, max_size=300))
def test_response_time_stats_consistency(samples):
    """Counts partition, percentiles order, mean within [min, max]."""
    stats = ResponseTimeStats.from_samples(samples)
    assert stats.count == len(samples)
    mid_range = sum(1 for s in samples if 0.01 <= s <= 1.0)
    assert stats.vlrt_count + stats.normal_count + mid_range == stats.count
    # Float-summation rounding can put the mean a few ULPs outside the
    # sample range for near-identical samples.
    assert min(samples) * (1 - 1e-12) <= stats.mean
    assert stats.mean <= max(samples) * (1 + 1e-12)
    assert stats.median <= stats.p95 + 1e-12
    assert stats.p95 <= stats.p99 + 1e-12
    assert stats.p999 <= stats.max + 1e-12
    assert stats.vlrt_fraction == pytest.approx(
        stats.vlrt_count / stats.count)


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=50, allow_nan=False),
    st.floats(min_value=1e-4, max_value=5, allow_nan=False)),
    min_size=1, max_size=100))
@settings(max_examples=50)
def test_recorder_windows_conserve_vlrt_counts(pairs):
    """Summing VLRT windows always reproduces the total VLRT count."""
    recorder = ResponseTimeRecorder()
    for i, (start, duration) in enumerate(pairs):
        recorder.record(CompletedRequest(i, "ViewStory", start,
                                         start + duration))
    series = recorder.vlrt_windows()
    assert sum(series.values) == sum(
        1 for _, duration in pairs if duration > 1.0)
