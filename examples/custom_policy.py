#!/usr/bin/env python3
"""Write your own millibottleneck-aware policy against the public API.

The paper's conclusion invites exactly this: "Other load balancers in
N-tier systems can take advantage of our remedies."  This example
implements a custom policy — rank by requests in flight, but *veto* any
candidate whose host looks unresponsive right now (a free health probe,
in the spirit of the paper's 'consider recent utilisation changes') —
plugs it into the balancer through `policy_factory`, and races it
against the stock policies and the paper's remedies.

Run:  python examples/custom_policy.py
"""

import numpy as np

from repro import ScaleProfile
from repro.analysis import table
from repro.cluster.topology import build_system
from repro.core import (
    BalancerConfig,
    OriginalGetEndpoint,
    Policy,
    make_mechanism,
    make_policy,
)
from repro.netmodel import RetransmissionPolicy
from repro.sim import Environment
from repro.workload import ClientPopulation, read_write_mix


class ResponsiveCurrentLoadPolicy(Policy):
    """current_load plus an instantaneous responsiveness veto.

    Ranking: requests in flight (as Algorithm 4).  Selection: among the
    eligible candidates, any whose host is mid-stall (no CPU slice
    available for even a handshake) is deprioritised by a large
    penalty, so it is only picked when every backend is stalled.
    """

    name = "responsive_current_load"
    cumulative = False

    STALL_PENALTY = 1e6

    def select(self, eligible, rng):
        def key(member):
            penalty = 0.0 if member.server.responsive else self.STALL_PENALTY
            return (member.lb_value + penalty, member.index)
        return min(eligible, key=key)

    def on_pick(self, member, request):
        member.lb_value = member.lb_value + 1

    def on_pick_abandoned(self, member, request):
        self._decrement(member)

    def on_complete(self, member, request):
        self._decrement(member)

    @staticmethod
    def _decrement(member):
        member.lb_value = max(0.0, member.lb_value - 1)


def run(policy_factory, mechanism_factory, label, duration=10.0, seed=3):
    env = Environment()
    rng = np.random.default_rng(seed)
    profile = ScaleProfile()
    system = build_system(
        env, profile,
        rng=rng,
        policy_factory=policy_factory,
        mechanism_factory=mechanism_factory,
        balancer_config=BalancerConfig(
            pool_size=profile.connection_pool_size,
            trace_lb_values=False, trace_dispatches=False),
    )
    population = ClientPopulation(
        env, [apache.socket for apache in system.apaches],
        total_clients=profile.clients, mix=read_write_mix(), rng=rng,
        think_time=profile.think_time,
        retransmission=RetransmissionPolicy())
    env.run(until=duration)
    stats = population.recorder.stats()
    drops = sum(apache.socket.dropped for apache in system.apaches)
    return [label, stats.count, "{:.2f}".format(stats.mean_ms),
            "{:.2f}%".format(100 * stats.vlrt_fraction), drops]


def main() -> None:
    print("Racing a custom policy against the paper's (10 simulated "
          "seconds each)...")
    rows = [
        run(lambda: make_policy("total_request"),
            lambda: make_mechanism("original"),
            "total_request (stock)"),
        run(lambda: make_policy("current_load"),
            lambda: make_mechanism("original"),
            "current_load (paper's policy remedy)"),
        run(ResponsiveCurrentLoadPolicy,
            lambda: OriginalGetEndpoint(),
            "responsive_current_load (custom)"),
        run(lambda: make_policy("two_choices"),
            lambda: make_mechanism("original"),
            "two_choices (randomized baseline)"),
        run(lambda: make_policy("ewma_latency"),
            lambda: make_mechanism("original"),
            "ewma_latency (latency-feedback baseline)"),
    ]
    print()
    print(table(["policy", "requests", "avg RT (ms)", "%VLRT", "drops"],
                rows))
    print()
    print("Policies that react to *current* state (current_load, the "
          "custom veto policy,\ntwo_choices) sidestep the funnel; the "
          "cumulative stock policy does not.")


if __name__ == "__main__":
    main()
