#!/usr/bin/env python3
"""Anatomy of a millibottleneck — the paper's §III-B / Fig. 2 analysis.

Runs the no-balancer configuration (1 Apache / 1 Tomcat / 1 MySQL) with
dirty-page flushing enabled and walks the full diagnostic chain on
*observables only*, then checks it against the simulator's ground
truth:

  dirty-page drops -> iowait saturation -> transient CPU saturation
  -> queue peaks -> VLRT requests

Run:  python examples/millibottleneck_anatomy.py
"""

from repro import ExperimentRunner
from repro.analysis import (
    adaptive_threshold,
    best_lag,
    causal_chain_report,
    detect,
    find_peaks,
    match_ground_truth,
    timeline,
)
from repro.cluster.scenarios import single_node_millibottleneck


def main() -> None:
    config = single_node_millibottleneck(duration=14.0, seed=7)
    print("Running the no-balancer configuration with flushing on...")
    result = ExperimentRunner(config).run()

    print()
    print("Fine-grained (50 ms) timelines, exactly as in Fig. 2:")
    print(timeline(result.vlrt_windows(), label="(a) VLRT/50ms"))
    print(timeline(result.queue_series["apache1"], label="(b) apache1 q"))
    print(timeline(result.queue_series["tomcat1"], label="(b) tomcat1 q"))
    print(timeline(result.queue_series["mysql1"], label="(b) mysql1 q"))
    print(timeline(result.cpu_utilization("tomcat1"),
                   label="(c) tomcat1 cpu"))
    print(timeline(result.iowait("tomcat1"), label="(d) tomcat1 iowait"))
    print(timeline(result.dirty_series["tomcat1"], label="(e) dirty bytes"))

    print()
    print("Causal-chain correlations (each '~' of the Fig. 2 chain):")
    chain = causal_chain_report(
        dirty=result.dirty_series["tomcat1"],
        iowait=result.iowait("tomcat1"),
        cpu=result.cpu_utilization("tomcat1"),
        queue=result.queue_series["tomcat1"],
        vlrt=result.vlrt_windows(),
    )
    for link, r in chain.items():
        print("  {:20s} r = {:+.2f}".format(link, r))
    # The queue->VLRT link is delayed by the TCP retransmission timer:
    # a packet dropped during a spike completes ~1 s later.  Scanning
    # lags recovers that timer from the data alone.
    lag, r = best_lag(result.queue_series["apache1"],
                      result.vlrt_windows(), max_lag=2.0, step=0.05)
    print("  queue~vlrt (lagged)  r = {:+.2f} at lag {:.2f} s "
          "(the TCP retransmission timer)".format(r, lag))

    print()
    print("Millibottleneck detection from observables vs ground truth:")
    for server in ("tomcat1", "apache1"):
        detections = detect(
            server,
            result.cpu_utilization(server),
            config.sample_window,
            iowait=result.iowait(server),
            dirty=result.dirty_series[server],
        )
        records = [r for r in result.system.millibottleneck_records()
                   if r.host == server]
        tp, fp, fn = match_ground_truth(detections, records)
        print("  {}: detected {} (true {}, spurious {}, missed {})".format(
            server, len(detections), tp, fp, fn))
        for detection in detections:
            print("    t={:.2f}s  {:.0f} ms  iowait {:.0%}  "
                  "dirty drop {:.1f} MB".format(
                      detection.started_at, 1000 * detection.duration,
                      detection.iowait_level, detection.dirty_drop / 1e6))

    print()
    print("Queue peaks and their attribution (per-server queue analysis):")
    apache_queue = result.queue_series["apache1"]
    tomcat_queue = result.queue_series["tomcat1"]
    apache_peaks = find_peaks(apache_queue,
                              adaptive_threshold(apache_queue), "apache1")
    tomcat_peaks = find_peaks(tomcat_queue,
                              adaptive_threshold(tomcat_queue), "tomcat1")
    for peak in apache_peaks:
        pushback = any(peak.overlaps(down, slack=0.1)
                       for down in tomcat_peaks)
        cause = ("push-back wave from the Tomcat tier" if pushback
                 else "Apache's own millibottleneck")
        print("  apache1 peak of {:.0f} at t={:.2f}s <- {}".format(
            peak.peak_value, peak.peak_at, cause))

    stats = result.stats()
    print()
    print("Bottom line: {} VLRT requests out of {} ({:.2f}%), with all "
          "servers far from sustained saturation — no load balancer "
          "involved.".format(stats.vlrt_count, stats.count,
                             100 * stats.vlrt_fraction))


if __name__ == "__main__":
    main()
