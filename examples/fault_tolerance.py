#!/usr/bin/env python3
"""Millibottlenecks vs. crashes: why the 3-state machine has Error.

The paper's remedy treats an unresponsive candidate as Busy because "it
is hard to distinguish millibottleneck from permanent failure" (§IV-C).
This example runs both kinds of trouble in one experiment:

* tomcat1 keeps having real millibottlenecks (dirty-page flushes);
* tomcat3 crashes outright at t = 5 s and never comes back.

Watch the balancer handle each correctly: the flushing server is
briefly Busy and keeps serving, the dead server escalates to Error and
is excluded — while clients never see the difference.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import ScaleProfile
from repro.analysis import table
from repro.cluster import FaultInjector, build_system
from repro.core import MemberState, StateConfig, get_bundle
from repro.core.balancer import BalancerConfig
from repro.netmodel import RetransmissionPolicy
from repro.sim import Environment
from repro.workload import ClientPopulation, read_write_mix

DURATION = 14.0


def main() -> None:
    env = Environment()
    rng = np.random.default_rng(11)
    profile = ScaleProfile()
    system = build_system(
        env, profile,
        bundle=get_bundle("current_load_modified"),
        rng=rng,
        tomcat_millibottlenecks=True,
        balancer_config=BalancerConfig(
            pool_size=profile.connection_pool_size,
            trace_lb_values=False, trace_dispatches=True),
        state_config=StateConfig(busy_recheck=0.1, max_busy_retries=8,
                                 error_recovery=30.0),
    )
    population = ClientPopulation(
        env, [apache.socket for apache in system.apaches],
        total_clients=profile.clients, mix=read_write_mix(), rng=rng,
        think_time=profile.think_time,
        retransmission=RetransmissionPolicy())
    injector = FaultInjector(env)
    injector.crash_at(system.tomcats[2], at=5.0)  # tomcat3 dies

    print("Running {}s with millibottlenecks on all Tomcats and a "
          "permanent crash of tomcat3 at t=5s...".format(DURATION))
    env.run(until=DURATION)

    stats = population.recorder.stats()
    print()
    print("client view: {} requests, avg RT {:.2f} ms, VLRT {:.2f}%, "
          "drops {}".format(stats.count, stats.mean_ms,
                            100 * stats.vlrt_fraction,
                            sum(a.socket.dropped for a in system.apaches)))

    print()
    print("dispatches per backend, before vs after the crash "
          "(apache1's balancer):")
    balancer = system.balancers[0]
    before = balancer.distribution_between(1.0, 5.0)
    after = balancer.distribution_between(5.5, DURATION)
    rows = [[name, before[name], after[name]] for name in sorted(before)]
    print(table(["backend", "t in [1, 5)", "t in [5.5, {:.0f})".format(
        DURATION)], rows))

    print()
    print("final member states on apache1 "
          "(Busy episodes from millibottlenecks have healed;")
    print("only the crashed server is Error):")
    for member in balancer.members:
        marker = ""
        if member.state is MemberState.ERROR:
            marker = "   <- crashed at t=5s, correctly ejected"
        elif member.server.host.millibottlenecks:
            marker = "   <- had {} millibottlenecks, never ejected".format(
                len(member.server.host.millibottlenecks))
        print("  {:8s} {:9s}{}".format(member.name, member.state.value,
                                       marker))

    stalls = [record for record in system.millibottleneck_records()]
    print()
    print("{} millibottlenecks occurred across the tier during the run; "
          "none escalated to Error.".format(len(stalls)))


if __name__ == "__main__":
    main()
