#!/usr/bin/env python3
"""Reproduce Table I: all six policy/mechanism combinations.

Runs the paper's cross product — {total_request, total_traffic,
current_load} x {original, modified get_endpoint} — under identical
workload, seed and millibottleneck schedule, then prints our Table I
next to the paper's numbers and the qualitative shape checks.

Run:  python examples/policy_comparison.py            (~1 minute)
      python examples/policy_comparison.py --quick    (~30 s)
"""

import sys

from repro import TABLE1_BUNDLES, compare_policies
from repro.analysis import (
    improvement_factors,
    shape_check,
    table1,
    table1_with_paper,
)


def main() -> None:
    duration = 10.0 if "--quick" in sys.argv else 16.0
    keys = [bundle.key for bundle in TABLE1_BUNDLES]
    print("Running {} experiments of {:.0f} simulated seconds each...".format(
        len(keys), duration))
    results = compare_policies(keys, duration=duration, seed=20170605)

    print()
    print(table1(results))
    print()
    print("Side by side with the paper (absolute numbers differ — their "
          "testbed is 18 Emulab nodes,")
    print("ours a scaled simulator — but the ordering and the collapse "
          "under the remedies match):")
    print()
    print(table1_with_paper(results))

    print()
    print("Average-RT improvement over the original total_request policy")
    print("(the paper's headline: 12x for current_load):")
    for key, factor in improvement_factors(results).items():
        print("  {:32s} {:6.1f}x".format(key, factor))

    print()
    print("Qualitative shape checks (all must hold for a faithful "
          "reproduction):")
    for claim, holds in shape_check(results).items():
        print("  [{}] {}".format("x" if holds else " ", claim))


if __name__ == "__main__":
    main()
