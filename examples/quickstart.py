#!/usr/bin/env python3
"""Quickstart: run one n-tier experiment and look at the long tail.

Builds the paper's 4 Apache / 4 Tomcat / 1 MySQL testbed (scaled), runs
the default mod_jk policy (total_request) for 10 simulated seconds with
millibottlenecks enabled, and prints the response-time picture.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, ExperimentRunner, ScaleProfile
from repro.analysis import timeline


def main() -> None:
    config = ExperimentConfig(
        bundle_key="original_total_request",  # mod_jk's default policy
        profile=ScaleProfile(),               # scaled Table III testbed
        duration=10.0,
        seed=42,
    )
    print("Running {} for {:.0f} simulated seconds "
          "({} clients, {} Apache / {} Tomcat / 1 MySQL)...".format(
              config.bundle_key, config.duration, config.profile.clients,
              config.profile.apache_count, config.profile.tomcat_count))
    result = ExperimentRunner(config).run()

    stats = result.stats()
    print()
    print("requests completed : {}".format(stats.count))
    print("average RT         : {:.2f} ms".format(stats.mean_ms))
    print("median RT          : {:.2f} ms".format(stats.median * 1000))
    print("99th percentile    : {:.2f} ms".format(stats.p99 * 1000))
    print("VLRT (>1 s)        : {} ({:.2f}%)".format(
        stats.vlrt_count, 100 * stats.vlrt_fraction))
    print("packets dropped    : {}".format(result.dropped_packets()))
    print("millibottlenecks   : {}".format(
        len(result.system.millibottleneck_records())))
    print()
    print("Point-in-time response time (worst request per 50 ms window;")
    print("the spikes are the paper's 'very long response time' requests):")
    print(timeline(result.point_in_time_rt(), label="response time",
                   unit=" s"))
    print()
    print("Who caused it?  Ground-truth flush stalls:")
    for record in result.system.millibottleneck_records()[:6]:
        print("  {} stalled {:.0f} ms at t={:.2f}s "
              "(flushed {:.1f} MB of dirty log pages)".format(
                  record.host, 1000 * record.duration, record.started_at,
                  record.bytes_flushed / 1e6))
    print()
    print("Next: examples/policy_comparison.py shows how the paper's "
          "remedies remove those spikes.")


if __name__ == "__main__":
    main()
