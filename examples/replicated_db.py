#!/usr/bin/env python3
"""Declarative topologies: a replicated database behind its own balancer.

The paper's testbed hard-wires 4 Apache / 4 Tomcat / 1 MySQL.  With
:class:`repro.TopologySpec` the shape is data: this example runs the
built-in ``replicated_db`` topology — 2 Apache / 2 Tomcat / **2 MySQL**,
with a ``current_load`` balancer per Tomcat fanning out over the DB
replicas — so the millibottleneck/policy interaction the paper studies
at the web→app boundary plays out one tier deeper too.

The same spec round-trips through JSON, which is what
``repro-lb run --topology spec.json`` consumes:

    repro-lb topology show replicated_db
    repro-lb run --topology replicated_db --duration 10

Run:  python examples/replicated_db.py
"""

from repro import ExperimentConfig, ExperimentRunner, TopologySpec
from repro.cluster.spec import get_topology


def main() -> None:
    spec = get_topology("replicated_db")
    print(spec.describe())
    print()

    # Any spec serialises to JSON and loads back unchanged — write it
    # next to your experiment scripts and run it from the CLI.
    assert TopologySpec.from_json(spec.to_json()) == spec

    config = ExperimentConfig(
        profile=spec.scale_profile(),  # workload knobs come from the spec
        topology=spec,
        duration=10.0,
        seed=42,
    )
    print("Running {!r} for {:.0f} simulated seconds "
          "({} clients)...".format(spec.name, config.duration,
                                   spec.workload.clients))
    result = ExperimentRunner(config).run()

    stats = result.stats()
    print()
    print("requests completed : {}".format(stats.count))
    print("average RT         : {:.2f} ms".format(stats.mean_ms))
    print("99th percentile    : {:.2f} ms".format(stats.p99 * 1000))
    print("VLRT (>1 s)        : {} ({:.2f}%)".format(
        stats.vlrt_count, 100 * stats.vlrt_fraction))
    print("millibottlenecks   : {}".format(
        len(result.system.millibottleneck_records())))
    print()
    print("Tiers are addressed by name — no more fixed apache/tomcat/"
          "mysql attributes:")
    for tier_name in result.system.tier_names:
        for server in result.system.tiers[tier_name]:
            print("  {:<10s} completed {:>5d} requests".format(
                server.name, server.requests_completed))
    print()
    print("Both MySQL replicas take traffic because every Tomcat runs "
          "its own balancer over them;")
    print("try repro-lb topology show four_tier for a 4-tier chain with "
          "a mid-tier millibottleneck.")


if __name__ == "__main__":
    main()
