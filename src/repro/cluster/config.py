"""Experiment configuration: the paper's Tables II/III and scaling.

The paper's testbed ran 70 000 clients against 4 Apache + 4 Tomcat +
1 MySQL on Emulab d710 nodes.  A pure-Python simulation cannot push
70 000 closed-loop clients in reasonable wall-clock time, so the
default :class:`ScaleProfile` scales the population and per-server
concurrency limits down together, preserving the ratios that govern
queueing behaviour:

* arrival rate per server vs. service capacity (utilisation);
* millibottleneck duration vs. the web tier's absorption capacity
  (free workers + accept backlog), which decides whether packets drop;
* millibottleneck duration vs. ``cache_acquire_timeout``, which
  decides whether the original mechanism's polling spans the stall.

``ScaleProfile.paper()`` keeps the full-scale Table III values for
users with patience.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.osmodel.profiles import MillibottleneckProfile


@dataclass(frozen=True)
class SoftwareStack:
    """Table II: the software stack of the paper's testbed."""

    web_server: str = "Apache Httpd 2.2.22"
    application_server: str = "Apache Tomcat 5.5.17"
    database_server: str = "MySQL 5.5.17"
    java: str = "JDK 7"
    connector: str = "mod_jk 1.2.32"
    operating_system: str = "Fedora 15 (kernel 3.3)"


@dataclass(frozen=True)
class HardwareConfig:
    """Table II: the d710 node hardware."""

    cpu: str = "Intel Xeon E5530, 2.40 GHz quad-core"
    cores: int = 4
    memory_gb: int = 12
    disk: str = "WD SATA 7,200 RPM, 500 GB"
    network: str = "1 Gbps"


@dataclass(frozen=True)
class PaperTierConfig:
    """Table III: full-scale software resource limits."""

    apache_max_clients: int = 200
    apache_threads_per_child: int = 100
    worker_connection_pool_size: int = 25
    tomcat_max_threads: int = 210
    db_connections_total: int = 48
    db_connections_per_servlet: int = 6
    mysql_query_cache_mb: int = 10


@dataclass(frozen=True)
class ScaleProfile:
    """All knobs of one simulated deployment.

    The default values are the *scaled* testbed used by the benchmark
    suite; see module docstring for the invariants the scaling keeps.
    """

    name: str = "scaled"
    # -- topology (Fig. 14) --------------------------------------------
    apache_count: int = 4
    tomcat_count: int = 4
    # -- workload ------------------------------------------------------
    clients: int = 2000
    think_time: float = 1.0
    ramp_up: float = 1.0
    # -- web tier ------------------------------------------------------
    apache_max_clients: int = 24
    apache_backlog: int = 32
    apache_cores: int = 4
    # -- app tier ------------------------------------------------------
    tomcat_max_threads: int = 16
    tomcat_cores: int = 4
    #: Endpoints per (Apache, Tomcat) pair.  The paper's ratio of web
    #: workers to pool size (per process: 100 threads vs 25 endpoints)
    #: is what makes pool exhaustion — not worker exhaustion — the
    #: first symptom of a stalled backend; the scaled profile keeps
    #: that ratio (24 workers vs 6 endpoints).
    connection_pool_size: int = 6
    # -- database tier -------------------------------------------------
    mysql_connections: int = 48
    mysql_cores: int = 4
    # -- millibottleneck machinery --------------------------------------
    #: Effective log write-back bandwidth of the app-tier spindle.
    #: Small, seek-heavy log writes on a 7200 RPM SATA disk sustain
    #: single-digit MB/s, which is what stretches a ~1 MB flush into a
    #: >100 ms stall.
    tomcat_disk_bandwidth: float = 8e6
    apache_disk_bandwidth: float = 8e6
    flush_interval: float = 4.0
    flush_threshold_bytes: float = 256e3
    #: First-flush offsets per Tomcat, so one server stalls at a time
    #: (matches the paper's zoom-ins where a single Tomcat has the
    #: millibottleneck).
    tomcat_flush_stagger: float = 1.0

    def __post_init__(self) -> None:
        if self.apache_count < 1 or self.tomcat_count < 1:
            raise ConfigurationError("need at least one server per tier")
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.think_time <= 0:
            raise ConfigurationError("think_time must be positive")

    # -- derived -----------------------------------------------------------
    def tomcat_flush_profile(self, index: int) -> MillibottleneckProfile:
        """Flush profile of the ``index``-th Tomcat (staggered phase)."""
        return MillibottleneckProfile(
            flush_interval=self.flush_interval,
            dirty_threshold_bytes=self.flush_threshold_bytes,
            phase=self.tomcat_flush_stagger * index,
        )

    def apache_flush_profile(self, index: int) -> MillibottleneckProfile:
        """Flush profile for Apache hosts (only the §III-B scenario
        enables web-tier flushing)."""
        return MillibottleneckProfile(
            flush_interval=self.flush_interval,
            dirty_threshold_bytes=self.flush_threshold_bytes,
            phase=self.tomcat_flush_stagger * index + 0.5,
        )

    def scaled(self, factor: float) -> "ScaleProfile":
        """A copy with the client population scaled by ``factor``.

        Concurrency limits scale along so the drop/absorption ratio is
        preserved, and so does the write-back bandwidth: more clients
        dirty more log bytes per flush interval, so keeping the stall
        *duration* invariant requires the disk to drain proportionally
        faster.  (Physically: a bigger deployment gets bigger disks.)
        """
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        return replace(
            self,
            name="{}x{:.2f}".format(self.name, factor),
            clients=max(1, int(self.clients * factor)),
            apache_max_clients=max(2, int(self.apache_max_clients * factor)),
            apache_backlog=max(2, int(self.apache_backlog * factor)),
            tomcat_max_threads=max(2, int(self.tomcat_max_threads * factor)),
            mysql_connections=max(2, int(self.mysql_connections * factor)),
            tomcat_disk_bandwidth=self.tomcat_disk_bandwidth * factor,
            apache_disk_bandwidth=self.apache_disk_bandwidth * factor,
        )

    @classmethod
    def paper(cls) -> "ScaleProfile":
        """The full Table III configuration (slow in pure Python)."""
        return cls(
            name="paper",
            clients=70000,
            think_time=7.0,
            apache_max_clients=200,
            apache_backlog=511,
            tomcat_max_threads=210,
            connection_pool_size=25,
            mysql_connections=48,
        )

    @classmethod
    def smoke(cls) -> "ScaleProfile":
        """A tiny profile for fast unit/integration tests."""
        return cls(
            name="smoke",
            clients=200,
            apache_count=2,
            tomcat_count=2,
            apache_max_clients=8,
            apache_backlog=10,
            tomcat_max_threads=8,
            mysql_connections=16,
        )

    @classmethod
    def single_node(cls) -> "ScaleProfile":
        """The §III-B configuration: 1 Apache / 1 Tomcat / 1 MySQL."""
        return cls(
            name="single_node",
            apache_count=1,
            tomcat_count=1,
            clients=500,
            apache_max_clients=24,
            apache_backlog=32,
            tomcat_max_threads=16,
            mysql_connections=24,
        )
