"""Topology, configuration, and experiment execution."""

from repro.cluster.config import (
    HardwareConfig,
    PaperTierConfig,
    ScaleProfile,
    SoftwareStack,
)
from repro.cluster.faults import CrashRecord, FaultInjector
from repro.cluster.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
    compare_policies,
)
from repro.cluster.scenarios import (
    FIGURE_DURATION,
    TABLE_DURATION,
    Scenario,
    baseline_no_millibottleneck,
    policy_run,
    single_node_millibottleneck,
    table1_run,
)
from repro.cluster.sweeps import Sweep
from repro.cluster.topology import NTierSystem, build_system

__all__ = [
    "ScaleProfile",
    "SoftwareStack",
    "HardwareConfig",
    "PaperTierConfig",
    "NTierSystem",
    "FaultInjector",
    "CrashRecord",
    "build_system",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "compare_policies",
    "Sweep",
    "Scenario",
    "baseline_no_millibottleneck",
    "single_node_millibottleneck",
    "policy_run",
    "table1_run",
    "FIGURE_DURATION",
    "TABLE_DURATION",
]
