"""Geo-scale headline experiment: does hierarchy contain the fault?

The paper showed a *single-cluster* balancer cannot route around a
millibottleneck it cannot see in time.  The geo question is whether a
zone-local **hierarchy** (per-zone balancers under a locality-first
zone router, :class:`~repro.core.balancer.ZoneRouter`) contains a
zone-scale fault better than one flat global balancer over the same
replicas — or whether spillover just ships the overload across a lossy
WAN and reproduces the VLRT signature with extra RTT.

:class:`GeoSuite` crosses the two ``geo`` builtins (hierarchical vs
flat) with three geo-scale fault timelines:

``zone_outage``
    Every east replica crashes together while the surviving zone's
    worker disks are starved (the millibottleneck knob) — the
    spillover traffic lands exactly where flushing stalls live.
``wan_degradation``
    The east-west backbone browns out: latency jumps and loss makes
    every cross-zone hop pay link-layer retransmissions.
``cache_failover``
    One cache replica crashes and comes back *cold*; the cell records
    request traces so the report can show whether VLRTs re-cluster one
    tier down (DB queue wait behind the suddenly-missing hit ratio).

Cells run serially (the report reads live ``system`` objects — zone
router spillover counters, WAN retransmit counts, cache hit ratios —
which do not survive a process pool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cluster.faults import (
    CrashFault,
    FaultSpec,
    WanDegradationFault,
    ZoneOutageFault,
)
from repro.cluster.runner import ExperimentConfig, ExperimentRunner
from repro.cluster.spec import TopologySpec
from repro.errors import ConfigurationError

__all__ = ["GEO_DURATION", "GEO_FAULTS", "TRACED_FAULTS", "GeoCell",
           "GeoReport", "GeoSuite"]

#: Default run length for geo cells (seconds) — long enough for the
#: fault window plus recovery, short enough for CI.
GEO_DURATION = 12.0

#: Disk bandwidth of the worker tier in the suite's topologies: well
#: under the 8 MB/s classic default, so a surviving zone that absorbs
#: spillover is flushing into a starved disk (the millibottleneck).
STARVED_DISK_BANDWIDTH = 3e6

#: Named geo-scale fault timelines, ``duration -> specs`` like
#: :data:`~repro.cluster.scenarios.FAULT_SCENARIOS`.
GEO_FAULTS: dict[str, Callable[[float], tuple[FaultSpec, ...]]] = {
    "zone_outage": lambda d: (
        ZoneOutageFault("east", at=0.25 * d, duration=0.3 * d,
                        jitter=0.02 * d),),
    "wan_degradation": lambda d: (
        WanDegradationFault("east", "west", at=0.25 * d,
                            duration=0.35 * d, latency=0.25, loss=0.05),),
    "cache_failover": lambda d: (
        CrashFault("cache1", at=0.25 * d, duration=0.2 * d),),
}

#: Fault keys whose cells record request traces, so the report can
#: decompose VLRT time into the new buckets (``wan.transit``,
#: ``cache.miss_penalty``, per-tier queue wait).
TRACED_FAULTS = frozenset({"cache_failover"})

#: The bucket columns traced cells report, as fractions of VLRT time.
_BUCKET_COLUMNS = ("wan.transit", "retransmission", "cache.miss_penalty",
                   "queue_wait.mysql")


@dataclass(frozen=True)
class GeoCell:
    """One point of the topology x fault grid."""

    topology_key: str  # "geo" (hierarchy) or "geo_flat"
    fault_key: str
    config: ExperimentConfig

    @property
    def label(self) -> str:
        return "{}|{}".format(self.topology_key, self.fault_key)


@dataclass(frozen=True)
class GeoReport:
    """Results of a suite run, one live ExperimentResult per cell."""

    cells: tuple[GeoCell, ...]
    results: tuple

    def rows(self) -> list[dict]:
        """One metrics dict per cell, grid keys included.

        ``spillovers`` counts dispatches the zone router had to send
        out-of-zone (always 0 for the flat topology — there is no
        router); ``wan_retransmits`` counts frames the WAN links lost
        and re-sent.  Traced cells add ``buckets``: the fraction of
        total VLRT latency each named bucket explains.
        """
        rows = []
        for cell, result in zip(self.cells, self.results):
            stats = result.stats()
            system = result.system
            caches = [server for server in system.servers
                      if hasattr(server, "effective_hit_ratio")]
            lookups = sum(c.hits + c.misses for c in caches)
            row = {
                "topology": cell.topology_key,
                "fault": cell.fault_key,
                "requests": stats.count,
                "vlrt_pct": 100.0 * stats.vlrt_fraction,
                "availability": result.availability(),
                "drops": result.dropped_packets(),
                "errors_503": result.error_responses(),
                "spillovers": sum(router.spillovers
                                  for router in system.zone_routers),
                "wan_retransmits": sum(link.wan_retransmits
                                       for link in system.wan_links),
                "cache_hit_pct": (100.0 * sum(c.hits for c in caches)
                                  / lookups if lookups else 0.0),
                "cold_restarts": sum(c.cold_restarts for c in caches),
                "buckets": None,
            }
            if result.tracer is not None:
                row["buckets"] = self._bucket_fractions(result)
            rows.append(row)
        return rows

    @staticmethod
    def _bucket_fractions(result) -> dict[str, float]:
        """Share of VLRT critical-path time per bucket of interest."""
        explanation = result.explain_vlrt()
        totals: dict[str, float] = {}
        grand = 0.0
        for path in explanation.paths:
            for bucket, seconds in path.buckets.items():
                totals[bucket] = totals.get(bucket, 0.0) + seconds
                grand += seconds
        if grand <= 0.0:
            return {bucket: 0.0 for bucket in _BUCKET_COLUMNS}
        return {bucket: totals.get(bucket, 0.0) / grand
                for bucket in _BUCKET_COLUMNS}

    def render(self) -> str:
        """The grid as a fixed-width text table."""
        header = ("{:<9s} {:<16s} {:>6s} {:>7s} {:>7s} {:>6s} {:>5s} "
                  "{:>6s} {:>8s} {:>8s}").format(
                      "topology", "fault", "reqs", "vlrt%", "avail%",
                      "drops", "503s", "spill", "wan_rtx", "hit%")
        lines = [header, "-" * len(header)]
        for row in self.rows():
            lines.append(
                "{:<9s} {:<16s} {:>6d} {:>7.3f} {:>7.2f} {:>6d} {:>5d} "
                "{:>6d} {:>8d} {:>8.1f}".format(
                    row["topology"], row["fault"], row["requests"],
                    row["vlrt_pct"], 100.0 * row["availability"],
                    row["drops"], row["errors_503"], row["spillovers"],
                    row["wan_retransmits"], row["cache_hit_pct"]))
            if row["buckets"] is not None:
                shares = "  ".join(
                    "{}={:.1f}%".format(bucket, 100.0 * share)
                    for bucket, share in row["buckets"].items())
                lines.append("          vlrt time: " + shares)
        return "\n".join(lines)


class GeoSuite:
    """Cross {hierarchy, flat} geo topologies with geo-scale faults.

    Both topologies share replica placement, WAN profile, workload and
    seed; the only difference is the balancer shape, so any difference
    in a row pair is attributable to hierarchy alone.
    """

    def __init__(self,
                 fault_keys: Optional[Sequence[str]] = None,
                 duration: float = GEO_DURATION,
                 seed: int = 42,
                 disk_bandwidth: float = STARVED_DISK_BANDWIDTH,
                 clients: int = 160) -> None:
        self.fault_keys = list(fault_keys if fault_keys is not None
                               else sorted(GEO_FAULTS))
        for key in self.fault_keys:
            if key not in GEO_FAULTS:
                raise ConfigurationError(
                    "unknown geo fault {!r}; available: {}".format(
                        key, ", ".join(sorted(GEO_FAULTS))))
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.duration = duration
        self.seed = seed
        self.topologies = {
            "geo": TopologySpec.geo(hierarchy=True,
                                    disk_bandwidth=disk_bandwidth,
                                    clients=clients),
            "geo_flat": TopologySpec.geo(hierarchy=False,
                                         disk_bandwidth=disk_bandwidth,
                                         clients=clients),
        }

    def cells(self) -> tuple[GeoCell, ...]:
        """The grid, topology-major, in deterministic order."""
        cells = []
        for topology_key in ("geo", "geo_flat"):
            spec = self.topologies[topology_key]
            for fault_key in self.fault_keys:
                cells.append(GeoCell(
                    topology_key=topology_key,
                    fault_key=fault_key,
                    config=ExperimentConfig(
                        profile=spec.scale_profile(),
                        topology=spec,
                        duration=self.duration,
                        seed=self.seed,
                        trace_lb_values=False,
                        trace_dispatches=False,
                        trace_requests=fault_key in TRACED_FAULTS,
                        faults=tuple(GEO_FAULTS[fault_key](self.duration)),
                    )))
        return tuple(cells)

    def run(self) -> GeoReport:
        """Run every cell serially and collect the report."""
        cells = self.cells()
        results = tuple(ExperimentRunner(cell.config).run()
                        for cell in cells)
        return GeoReport(cells=cells, results=results)
