"""N-tier topology builder (the paper's Fig. 14).

Builds the full system for one experiment: MySQL at the bottom, the
Tomcat tier with (optionally) millibottleneck-producing hosts, the
Apache tier, and one load balancer per Apache (or a direct dispatcher
for the no-balancer configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cluster.config import ScaleProfile
from repro.core.balancer import BalancerConfig, DirectDispatcher, LoadBalancer
from repro.core.mechanism import GetEndpointMechanism
from repro.core.policies import Policy
from repro.core.remedies import RemedyBundle
from repro.core.states import StateConfig
from repro.errors import ConfigurationError
from repro.osmodel.host import Host
from repro.osmodel.profiles import MillibottleneckProfile
from repro.tiers.apache import ApacheServer
from repro.tiers.mysql import MySqlServer
from repro.tiers.tomcat import TomcatServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience import ResilienceConfig
    from repro.resilience.hedge import HedgingDispatcher
    from repro.resilience.probes import HealthProber
    from repro.sim.core import Environment

#: Seed of the generator :func:`build_system` falls back to when the
#: caller does not inject one.  Experiments always inject the
#: config-seeded generator (see ``ExperimentRunner.run``); the explicit
#: fallback seed exists so ad-hoc construction in tests and notebooks is
#: reproducible too, never entropy-seeded.
DEFAULT_BUILD_SEED = 0


@dataclass
class NTierSystem:
    """All the servers of one experiment, fully wired."""

    env: "Environment"
    profile: ScaleProfile
    apaches: list[ApacheServer]
    tomcats: list[TomcatServer]
    mysql: MySqlServer
    balancers: list[LoadBalancer] = field(default_factory=list)
    direct_dispatchers: list[DirectDispatcher] = field(default_factory=list)
    #: Health-probe drivers, one per balancer (when probes configured).
    probers: list["HealthProber"] = field(default_factory=list)
    #: Hedging wrappers, one per balancer (when hedging configured).
    hedgers: list["HedgingDispatcher"] = field(default_factory=list)

    @property
    def hosts(self) -> list[Host]:
        """Every host of the deployment."""
        return ([server.host for server in self.apaches]
                + [server.host for server in self.tomcats]
                + [self.mysql.host])

    @property
    def servers(self):
        """Every tier server (web, app, db), in tier order."""
        return list(self.apaches) + list(self.tomcats) + [self.mysql]

    def server_named(self, name: str):
        for server in self.servers:
            if server.name == name:
                return server
        raise ConfigurationError("no server named " + name)

    def millibottleneck_records(self):
        """Ground-truth stall records across all hosts, time-ordered."""
        records = [record for host in self.hosts
                   for record in host.millibottlenecks]
        return sorted(records, key=lambda record: record.started_at)

    def total_dispatches(self) -> int:
        return (sum(balancer.dispatches for balancer in self.balancers)
                + sum(d.dispatches for d in self.direct_dispatchers))


def build_system(
    env: "Environment",
    profile: ScaleProfile,
    bundle: Optional[RemedyBundle] = None,
    rng: Optional[np.random.Generator] = None,
    tomcat_millibottlenecks: bool = True,
    apache_millibottlenecks: bool = False,
    policy_factory: Optional[Callable[[], Policy]] = None,
    mechanism_factory: Optional[Callable[[], GetEndpointMechanism]] = None,
    balancer_config: Optional[BalancerConfig] = None,
    state_config: Optional[StateConfig] = None,
    use_balancer: bool = True,
    resilience: Optional["ResilienceConfig"] = None,
) -> NTierSystem:
    """Build and wire an n-tier system.

    Either ``bundle`` or both factories must be given when
    ``use_balancer``; the no-balancer (§III-B) configuration requires a
    single Apache and a single Tomcat.

    ``rng`` should be the experiment's seeded generator; when omitted,
    a generator seeded with :data:`DEFAULT_BUILD_SEED` keeps even
    ad-hoc builds deterministic.

    ``resilience`` wires the remedy layer around each balancer:
    circuit breakers on the members, health probers, and a hedging
    wrapper between Apache and its balancer.  ``None`` (and the
    all-``None`` config) build a system event-for-event identical to
    the seed one.  The client-side retry remedy lives with the client
    population, not here.
    """
    if rng is None:
        rng = np.random.default_rng(DEFAULT_BUILD_SEED)

    # -- database tier ---------------------------------------------------
    mysql_host = Host(env, "mysql1", cores=profile.mysql_cores)
    mysql = MySqlServer(env, "mysql1", mysql_host,
                        max_connections=profile.mysql_connections)

    # -- application tier -----------------------------------------------
    tomcats = []
    for index in range(profile.tomcat_count):
        flush = (profile.tomcat_flush_profile(index)
                 if tomcat_millibottlenecks
                 else MillibottleneckProfile.disabled())
        host = Host(env, "tomcat{}".format(index + 1),
                    cores=profile.tomcat_cores,
                    disk_bandwidth=profile.tomcat_disk_bandwidth,
                    flush_profile=flush)
        tomcats.append(TomcatServer(
            env, host.name, host, mysql,
            max_threads=profile.tomcat_max_threads))

    # -- web tier ------------------------------------------------------
    apaches = []
    for index in range(profile.apache_count):
        flush = (profile.apache_flush_profile(index)
                 if apache_millibottlenecks
                 else MillibottleneckProfile.disabled())
        host = Host(env, "apache{}".format(index + 1),
                    cores=profile.apache_cores,
                    disk_bandwidth=profile.apache_disk_bandwidth,
                    flush_profile=flush)
        apaches.append(ApacheServer(
            env, host.name, host,
            max_clients=profile.apache_max_clients,
            backlog=profile.apache_backlog))

    system = NTierSystem(env=env, profile=profile, apaches=apaches,
                         tomcats=tomcats, mysql=mysql)

    # -- dispatchers -----------------------------------------------------
    if use_balancer:
        if bundle is not None:
            policy_factory = bundle.make_policy
            mechanism_factory = bundle.make_mechanism
        if policy_factory is None or mechanism_factory is None:
            raise ConfigurationError(
                "provide a RemedyBundle or policy/mechanism factories")
        config = balancer_config or BalancerConfig(
            pool_size=profile.connection_pool_size)
        for apache in apaches:
            balancer = LoadBalancer(
                env, apache.name + ".lb", tomcats,
                policy=policy_factory(),
                mechanism=mechanism_factory(),
                rng=rng,
                config=config,
                state_config=state_config,
            )
            dispatcher = _wire_resilience(env, system, balancer,
                                          resilience, rng)
            apache.attach_dispatcher(dispatcher)
            system.balancers.append(balancer)
    else:
        if profile.apache_count != 1 or profile.tomcat_count != 1:
            raise ConfigurationError(
                "the no-balancer configuration is 1 Apache / 1 Tomcat")
        dispatcher = DirectDispatcher(env, tomcats[0])
        apaches[0].attach_dispatcher(dispatcher)
        system.direct_dispatchers.append(dispatcher)

    return system


def _wire_resilience(env, system, balancer, resilience, rng):
    """Install the configured remedies around one balancer.

    Returns the dispatcher the Apache should use: the balancer itself,
    or its hedging wrapper.
    """
    if resilience is None:
        return balancer
    if resilience.breaker is not None:
        from repro.resilience.breaker import CircuitBreaker

        balancer.install_breakers([
            CircuitBreaker(env, resilience.breaker)
            for _ in balancer.members
        ])
    if resilience.probes is not None:
        from repro.resilience.probes import HealthProber

        system.probers.append(HealthProber(
            env, balancer.members, resilience.probes, rng=rng,
            name=balancer.name + ".prober"))
    if resilience.hedge is not None:
        from repro.resilience.hedge import HedgingDispatcher

        hedger = HedgingDispatcher(env, balancer, resilience.hedge)
        system.hedgers.append(hedger)
        return hedger
    return balancer
