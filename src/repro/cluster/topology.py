"""N-tier topology builder (the paper's Fig. 14, generalized).

:func:`build_from_spec` turns a declarative
:class:`~repro.cluster.spec.TopologySpec` into a fully wired
:class:`NTierSystem`: tiers are built back to front (each tier's
dispatchers need the next tier's servers), with one balancer — or
round-robin direct dispatcher — per upstream server at every
non-inline boundary.

:func:`build_system` is the classic entry point: it expresses the
paper's fixed 3-tier shape as :meth:`TopologySpec.classic` and builds
it through the generic path, producing a system event-for-event
identical to the historical hand-coded builder (the golden traces pin
this).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cluster.config import ScaleProfile
from repro.cluster.spec import TierSpec, TopologySpec
from repro.core.balancer import BalancerConfig, DirectDispatcher, LoadBalancer
from repro.core.mechanism import GetEndpointMechanism
from repro.core.policies import Policy
from repro.core.remedies import RemedyBundle, get_bundle
from repro.core.states import StateConfig
from repro.errors import ConfigurationError
from repro.osmodel.host import Host
from repro.tiers.base import (
    DispatchDownstream,
    FrontendTier,
    InlineDownstream,
    PooledTier,
    TierServer,
    WorkerTier,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience import ResilienceConfig
    from repro.resilience.hedge import HedgingDispatcher
    from repro.resilience.probes import HealthProber
    from repro.sim.core import Environment

#: Seed of the generator the builders fall back to when the caller does
#: not inject one.  Experiments always inject the config-seeded
#: generator (see ``ExperimentRunner.run``); the explicit fallback seed
#: exists so ad-hoc construction in tests and notebooks is reproducible
#: too, never entropy-seeded.
DEFAULT_BUILD_SEED = 0


@dataclass
class NTierSystem:
    """All the servers of one experiment, fully wired.

    Tiers are addressed generically — ``system.tiers["tomcat"]`` is the
    list of app-tier replicas, front-to-back order in ``tier_names`` —
    while ``apaches``/``tomcats``/``mysql`` remain as thin accessors
    for the classic 3-tier shape.
    """

    env: "Environment"
    profile: ScaleProfile
    tier_names: tuple[str, ...]
    tiers: dict[str, list[TierServer]]
    balancers: list[LoadBalancer] = field(default_factory=list)
    direct_dispatchers: list[DirectDispatcher] = field(default_factory=list)
    #: Health-probe drivers, one per balancer (when probes configured).
    probers: list["HealthProber"] = field(default_factory=list)
    #: Hedging wrappers, one per balancer (when hedging configured).
    hedgers: list["HedgingDispatcher"] = field(default_factory=list)
    #: The declarative spec the system was built from (when it was).
    spec: Optional[TopologySpec] = None

    # -- generic addressing ------------------------------------------------
    @property
    def frontends(self) -> list[TierServer]:
        """The client-facing tier's servers (they own accept sockets)."""
        return self.tiers[self.tier_names[0]]

    @property
    def servers(self) -> list[TierServer]:
        """Every tier server, front-to-back tier order."""
        return [server for name in self.tier_names
                for server in self.tiers[name]]

    @property
    def hosts(self) -> list[Host]:
        """Every host of the deployment, front-to-back tier order."""
        return [server.host for server in self.servers]

    def server_named(self, name: str) -> TierServer:
        for server in self.servers:
            if server.name == name:
                return server
        raise ConfigurationError("no server named " + name)

    # -- classic accessors -------------------------------------------------
    @property
    def apaches(self) -> list[TierServer]:
        """Classic alias for the web (first) tier."""
        return self.frontends

    @property
    def tomcats(self) -> list[TierServer]:
        """Classic alias for the app (second) tier."""
        return self.tiers[self.tier_names[1]]

    @property
    def mysql(self) -> TierServer:
        """Classic alias for the (first) database-tier server."""
        return self.tiers[self.tier_names[-1]][0]

    # -- aggregates --------------------------------------------------------
    def millibottleneck_records(self):
        """Ground-truth stall records across all hosts, time-ordered."""
        records = [record for host in self.hosts
                   for record in host.millibottlenecks]
        return sorted(records, key=lambda record: record.started_at)

    def total_dispatches(self) -> int:
        return (sum(balancer.dispatches for balancer in self.balancers)
                + sum(d.dispatches for d in self.direct_dispatchers))


# -- generic builder --------------------------------------------------------

def build_from_spec(
    env: "Environment",
    spec: TopologySpec,
    profile: Optional[ScaleProfile] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    balancer_config: Optional[BalancerConfig] = None,
    state_config: Optional[StateConfig] = None,
    policy_factory: Optional[Callable[[], Policy]] = None,
    mechanism_factory: Optional[Callable[[], GetEndpointMechanism]] = None,
    resilience: Optional["ResilienceConfig"] = None,
    default_bundle: Optional[RemedyBundle] = None,
) -> NTierSystem:
    """Build and wire the system a :class:`TopologySpec` describes.

    ``rng`` should be the experiment's seeded generator; when omitted,
    a generator seeded with :data:`DEFAULT_BUILD_SEED` keeps even
    ad-hoc builds deterministic.

    ``policy_factory``/``mechanism_factory`` and ``resilience``
    override the *frontend* boundary (they are how the classic
    ``build_system`` API plugs in); deeper boundaries take their
    bundles from the spec.  ``default_bundle`` backstops any balanced
    boundary whose spec names no bundle.
    """
    if rng is None:
        # SEED003 (baselined): this fallback seed coincides with the
        # fault injector's and prober's — acceptable for the ad-hoc
        # no-rng path, and reseeding would shift every golden trace.
        # Experiment runs always pass rng= (SEED001 enforces it).
        rng = np.random.default_rng(DEFAULT_BUILD_SEED)
    profile = profile or ScaleProfile()
    config = balancer_config or BalancerConfig(
        pool_size=profile.connection_pool_size)

    system = NTierSystem(
        env=env, profile=profile, spec=spec,
        tier_names=tuple(tier.name for tier in spec.tiers),
        tiers={tier.name: [] for tier in spec.tiers})

    downstream: list[TierServer] = []
    for depth in reversed(range(len(spec.tiers))):
        tier = spec.tiers[depth]
        boundary = (spec.boundaries[depth]
                    if depth < len(spec.boundaries) else None)
        servers = system.tiers[tier.name]
        if tier.service == "frontend":
            # Hosts and servers first, then one dispatcher per server —
            # the classic construction (and hence event) order.
            for index in range(tier.replicas):
                host = _make_host(env, tier, index)
                servers.append(FrontendTier(
                    env, host.name, host,
                    max_clients=tier.capacity, backlog=tier.backlog,
                    role=tier.name,
                    cpu_source=tier.effective_cpu_source))
            for server in servers:
                server.attach_dispatcher(_make_dispatcher(
                    env, system, server.name, boundary, downstream,
                    depth, config, state_config, rng,
                    policy_factory, mechanism_factory, resilience,
                    default_bundle))
        elif tier.service == "worker":
            for index in range(tier.replicas):
                host = _make_host(env, tier, index)
                if boundary is None:
                    tier_downstream = None
                elif boundary.mode == "inline":
                    tier_downstream = InlineDownstream(downstream[0])
                else:
                    tier_downstream = DispatchDownstream(_make_dispatcher(
                        env, system, host.name, boundary, downstream,
                        depth, config, state_config, rng,
                        policy_factory, mechanism_factory, resilience,
                        default_bundle))
                servers.append(WorkerTier(
                    env, host.name, host,
                    max_threads=tier.capacity,
                    downstream=tier_downstream,
                    role=tier.name,
                    cpu_source=tier.effective_cpu_source))
        else:  # pooled
            for index in range(tier.replicas):
                host = _make_host(env, tier, index)
                servers.append(PooledTier(
                    env, host.name, host,
                    max_connections=tier.capacity,
                    role=tier.name,
                    cpu_source=tier.effective_cpu_source))
        downstream = servers
    return system


def _make_host(env: "Environment", tier: TierSpec, index: int) -> Host:
    kwargs = {}
    if tier.disk_bandwidth is not None:
        kwargs["disk_bandwidth"] = tier.disk_bandwidth
    if tier.flush is not None:
        kwargs["flush_profile"] = tier.flush.profile(index)
    return Host(env, "{}{}".format(tier.name, index + 1),
                cores=tier.cores, **kwargs)


def _make_dispatcher(env, system, owner_name, boundary, downstream, depth,
                     config, state_config, rng,
                     policy_factory, mechanism_factory, resilience,
                     default_bundle):
    """One upstream server's dispatcher over the next tier's replicas."""
    if boundary.mode == "direct":
        dispatcher = DirectDispatcher(env, list(downstream),
                                      link_latency=config.link_latency)
        system.direct_dispatchers.append(dispatcher)
        return dispatcher
    make_policy, make_mechanism = _boundary_factories(
        boundary, depth, policy_factory, mechanism_factory, default_bundle)
    boundary_config = (replace(config, pool_size=boundary.pool_size)
                       if boundary.pool_size is not None else config)
    balancer = LoadBalancer(
        env, owner_name + ".lb", downstream,
        policy=make_policy(),
        mechanism=make_mechanism(),
        rng=rng,
        config=boundary_config,
        state_config=state_config,
    )
    system.balancers.append(balancer)
    return _wire_resilience(
        env, system, balancer,
        _boundary_resilience(boundary, depth, resilience), rng)


def _boundary_factories(boundary, depth, policy_factory, mechanism_factory,
                        default_bundle):
    """Resolve the policy/mechanism pair for one balanced boundary."""
    if depth == 0 and (policy_factory is not None
                       or mechanism_factory is not None):
        if policy_factory is None or mechanism_factory is None:
            raise ConfigurationError(
                "provide a RemedyBundle or policy/mechanism factories")
        return policy_factory, mechanism_factory
    if boundary.bundle is not None:
        bundle = get_bundle(boundary.bundle)
        return bundle.make_policy, bundle.make_mechanism
    if default_bundle is not None:
        return default_bundle.make_policy, default_bundle.make_mechanism
    raise ConfigurationError(
        "provide a RemedyBundle or policy/mechanism factories")


def _boundary_resilience(boundary, depth, resilience):
    """Resolve one boundary's resilience configuration."""
    if depth == 0 and resilience is not None:
        return resilience
    if boundary.resilience is not None:
        from repro.resilience import get_resilience

        return get_resilience(boundary.resilience)
    return None


# -- classic entry point ----------------------------------------------------

def build_system(
    env: "Environment",
    profile: ScaleProfile,
    bundle: Optional[RemedyBundle] = None,
    rng: Optional[np.random.Generator] = None,
    tomcat_millibottlenecks: bool = True,
    apache_millibottlenecks: bool = False,
    policy_factory: Optional[Callable[[], Policy]] = None,
    mechanism_factory: Optional[Callable[[], GetEndpointMechanism]] = None,
    balancer_config: Optional[BalancerConfig] = None,
    state_config: Optional[StateConfig] = None,
    use_balancer: bool = True,
    resilience: Optional["ResilienceConfig"] = None,
) -> NTierSystem:
    """Build and wire the paper's 3-tier system.

    Either ``bundle`` or both factories must be given when
    ``use_balancer``; with ``use_balancer=False`` every Apache
    round-robins directly over the Tomcat tier (the single-node §III-B
    configuration is the 1/1 special case).

    ``rng`` should be the experiment's seeded generator; when omitted,
    a generator seeded with :data:`DEFAULT_BUILD_SEED` keeps even
    ad-hoc builds deterministic.

    ``resilience`` wires the remedy layer around each balancer:
    circuit breakers on the members, health probers, and a hedging
    wrapper between Apache and its balancer.  ``None`` (and the
    all-``None`` config) build a system event-for-event identical to
    the seed one.  The client-side retry remedy lives with the client
    population, not here.
    """
    if bundle is not None:
        policy_factory = bundle.make_policy
        mechanism_factory = bundle.make_mechanism
    spec = TopologySpec.classic(
        profile,
        tomcat_millibottlenecks=tomcat_millibottlenecks,
        apache_millibottlenecks=apache_millibottlenecks,
        use_balancer=use_balancer,
    )
    return build_from_spec(
        env, spec, profile=profile, rng=rng,
        balancer_config=balancer_config,
        state_config=state_config,
        policy_factory=policy_factory if use_balancer else None,
        mechanism_factory=mechanism_factory if use_balancer else None,
        resilience=resilience,
    )


def _wire_resilience(env, system, balancer, resilience, rng):
    """Install the configured remedies around one balancer.

    Returns the dispatcher the upstream server should use: the
    balancer itself, or its hedging wrapper.
    """
    if resilience is None:
        return balancer
    if resilience.breaker is not None:
        from repro.resilience.breaker import CircuitBreaker

        balancer.install_breakers([
            CircuitBreaker(env, resilience.breaker)
            for _ in balancer.members
        ])
    if resilience.probes is not None:
        from repro.resilience.probes import HealthProber

        system.probers.append(HealthProber(
            env, balancer.members, resilience.probes, rng=rng,
            name=balancer.name + ".prober"))
    if resilience.hedge is not None:
        from repro.resilience.hedge import HedgingDispatcher

        hedger = HedgingDispatcher(env, balancer, resilience.hedge)
        system.hedgers.append(hedger)
        return hedger
    return balancer
