"""N-tier topology builder (the paper's Fig. 14, generalized).

:func:`build_from_spec` turns a declarative
:class:`~repro.cluster.spec.TopologySpec` into a fully wired
:class:`NTierSystem`: tiers are built back to front (each tier's
dispatchers need the next tier's servers), with one balancer — or
round-robin direct dispatcher — per upstream server at every
non-inline boundary.

:func:`build_system` is the classic entry point: it expresses the
paper's fixed 3-tier shape as :meth:`TopologySpec.classic` and builds
it through the generic path, producing a system event-for-event
identical to the historical hand-coded builder (the golden traces pin
this).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cluster.config import ScaleProfile
from repro.cluster.spec import LinkProfileSpec, TierSpec, TopologySpec
from repro.core.balancer import (
    BalancerConfig,
    DirectDispatcher,
    LoadBalancer,
    ZoneRouter,
)
from repro.core.mechanism import GetEndpointMechanism
from repro.core.policies import Policy
from repro.core.remedies import RemedyBundle, get_bundle
from repro.core.states import StateConfig
from repro.errors import ConfigurationError
from repro.netmodel.sockets import Link
from repro.osmodel.host import Host
from repro.tiers.base import (
    DispatchDownstream,
    FrontendTier,
    InlineDownstream,
    PooledTier,
    TierServer,
    WorkerTier,
)
from repro.tiers.cache import CacheTier
from repro.tiers.shard import ShardRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.admission import TokenBucketAdmission
    from repro.controlplane.autoscaler import ReactiveAutoscaler
    from repro.controlplane.bulkhead import Bulkhead
    from repro.controlplane.leveling import LevelingQueue
    from repro.resilience import ResilienceConfig
    from repro.resilience.hedge import HedgingDispatcher
    from repro.resilience.probes import HealthProber
    from repro.sim.core import Environment

#: Seed of the generator the builders fall back to when the caller does
#: not inject one.  Experiments always inject the config-seeded
#: generator (see ``ExperimentRunner.run``); the explicit fallback seed
#: exists so ad-hoc construction in tests and notebooks is reproducible
#: too, never entropy-seeded.
DEFAULT_BUILD_SEED = 0


@dataclass
class NTierSystem:
    """All the servers of one experiment, fully wired.

    Tiers are addressed generically — ``system.tiers["tomcat"]`` is the
    list of app-tier replicas, front-to-back order in ``tier_names`` —
    while ``apaches``/``tomcats``/``mysql`` remain as thin accessors
    for the classic 3-tier shape.
    """

    env: "Environment"
    profile: ScaleProfile
    tier_names: tuple[str, ...]
    tiers: dict[str, list[TierServer]]
    balancers: list[LoadBalancer] = field(default_factory=list)
    direct_dispatchers: list[DirectDispatcher] = field(default_factory=list)
    #: Health-probe drivers, one per balancer (when probes configured).
    probers: list["HealthProber"] = field(default_factory=list)
    #: Hedging wrappers, one per balancer (when hedging configured).
    hedgers: list["HedgingDispatcher"] = field(default_factory=list)
    #: The declarative spec the system was built from (when it was).
    spec: Optional[TopologySpec] = None
    #: Control-plane attachments (empty unless configured).
    autoscalers: list["ReactiveAutoscaler"] = field(default_factory=list)
    admissions: list["TokenBucketAdmission"] = field(default_factory=list)
    levelers: list["LevelingQueue"] = field(default_factory=list)
    bulkheads: list["Bulkhead"] = field(default_factory=list)
    #: Replicas removed by scale-down, per tier — kept for accounting
    #: and for in-flight requests that still hold references.
    retired: dict[str, list[TierServer]] = field(default_factory=dict)
    #: Dispatchers per boundary depth (boundary *d* feeds tier *d*+1);
    #: replicas added to tier *d*+1 join every dispatcher at depth *d*.
    dispatchers_by_depth: dict[int, list] = field(default_factory=dict)
    #: Zone routers (one per upstream server of a hierarchy boundary).
    zone_routers: list[ZoneRouter] = field(default_factory=list)
    #: Shard routers (one per upstream server of a sharded boundary).
    shard_routers: list[ShardRouter] = field(default_factory=list)
    #: Every WAN-profiled link of the deployment, for fault targeting.
    wan_links: list[Link] = field(default_factory=list)
    #: Per-tier replica builders captured by :func:`build_from_spec`;
    #: resolved through :func:`replica_factory_for`.
    _replica_factories: dict[str, Callable[[int], TierServer]] = field(
        default_factory=dict)

    # -- generic addressing ------------------------------------------------
    @property
    def frontends(self) -> list[TierServer]:
        """The client-facing tier's servers (they own accept sockets)."""
        return self.tiers[self.tier_names[0]]

    @property
    def servers(self) -> list[TierServer]:
        """Every tier server, front-to-back tier order."""
        return [server for name in self.tier_names
                for server in self.tiers[name]]

    @property
    def hosts(self) -> list[Host]:
        """Every host of the deployment, front-to-back tier order."""
        return [server.host for server in self.servers]

    def server_named(self, name: str) -> TierServer:
        for server in self.servers:
            if server.name == name:
                return server
        raise ConfigurationError("no server named " + name)

    # -- zones -------------------------------------------------------------
    @property
    def zone_names(self) -> tuple[str, ...]:
        """Declared zones, in spec order (empty when zone-free)."""
        if self.spec is None:
            return ()
        return tuple(zone.name for zone in self.spec.zones)

    def servers_in_zone(self, zone: str) -> list[TierServer]:
        """Every live server placed in ``zone``, tier order."""
        return [server for server in self.servers
                if getattr(server, "zone", None) == zone]

    # -- classic accessors -------------------------------------------------
    @property
    def apaches(self) -> list[TierServer]:
        """Classic alias for the web (first) tier."""
        return self.frontends

    @property
    def tomcats(self) -> list[TierServer]:
        """Classic alias for the app (second) tier."""
        return self.tiers[self.tier_names[1]]

    @property
    def mysql(self) -> TierServer:
        """Classic alias for the (first) database-tier server."""
        return self.tiers[self.tier_names[-1]][0]

    # -- aggregates --------------------------------------------------------
    def millibottleneck_records(self):
        """Ground-truth stall records across all hosts, time-ordered."""
        records = [record for host in self.hosts
                   for record in host.millibottlenecks]
        return sorted(records, key=lambda record: record.started_at)

    def total_dispatches(self) -> int:
        # Zone routers delegate to their inner balancers (already in
        # ``balancers``), so counting them too would double-count.
        return (sum(balancer.dispatches for balancer in self.balancers)
                + sum(d.dispatches for d in self.direct_dispatchers)
                + sum(s.dispatches for s in self.shard_routers))


# -- generic builder --------------------------------------------------------

def build_from_spec(
    env: "Environment",
    spec: TopologySpec,
    profile: Optional[ScaleProfile] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    balancer_config: Optional[BalancerConfig] = None,
    state_config: Optional[StateConfig] = None,
    policy_factory: Optional[Callable[[], Policy]] = None,
    mechanism_factory: Optional[Callable[[], GetEndpointMechanism]] = None,
    resilience: Optional["ResilienceConfig"] = None,
    default_bundle: Optional[RemedyBundle] = None,
) -> NTierSystem:
    """Build and wire the system a :class:`TopologySpec` describes.

    ``rng`` should be the experiment's seeded generator; when omitted,
    a generator seeded with :data:`DEFAULT_BUILD_SEED` keeps even
    ad-hoc builds deterministic.

    ``policy_factory``/``mechanism_factory`` and ``resilience``
    override the *frontend* boundary (they are how the classic
    ``build_system`` API plugs in); deeper boundaries take their
    bundles from the spec.  ``default_bundle`` backstops any balanced
    boundary whose spec names no bundle.
    """
    if rng is None:
        # SEED003 (baselined): this fallback seed coincides with the
        # fault injector's and prober's — acceptable for the ad-hoc
        # no-rng path, and reseeding would shift every golden trace.
        # Experiment runs always pass rng= (SEED001 enforces it).
        rng = np.random.default_rng(DEFAULT_BUILD_SEED)
    profile = profile or ScaleProfile()
    config = balancer_config or BalancerConfig(
        pool_size=profile.connection_pool_size)

    system = NTierSystem(
        env=env, profile=profile, spec=spec,
        tier_names=tuple(tier.name for tier in spec.tiers),
        tiers={tier.name: [] for tier in spec.tiers})

    downstream: list[TierServer] = []
    for depth in reversed(range(len(spec.tiers))):
        tier = spec.tiers[depth]
        boundary = (spec.boundaries[depth]
                    if depth < len(spec.boundaries) else None)
        servers = system.tiers[tier.name]
        if tier.service == "frontend":
            # Hosts and servers first, then one dispatcher per server —
            # the classic construction (and hence event) order.
            for index in range(tier.replicas):
                host = _make_host(env, tier, index)
                server = FrontendTier(
                    env, host.name, host,
                    max_clients=tier.capacity, backlog=tier.backlog,
                    role=tier.name,
                    cpu_source=tier.effective_cpu_source)
                server.zone = _zone_of(spec, tier, index)
                servers.append(server)
            for server in servers:
                server.attach_dispatcher(_make_dispatcher(
                    env, system, server.name, server.zone, boundary,
                    downstream, depth, config, state_config, rng,
                    policy_factory, mechanism_factory, resilience,
                    default_bundle))
            _wire_frontend_controlplane(env, system, tier, boundary,
                                        servers)
        elif tier.service in ("worker", "cache"):
            make_replica = _worker_factory(
                env, system, spec, depth, config, state_config, rng,
                policy_factory, mechanism_factory, resilience,
                default_bundle)
            for index in range(tier.replicas):
                make_replica(index)
        else:  # pooled
            make_replica = _pooled_factory(env, system, spec, depth)
            for index in range(tier.replicas):
                make_replica(index)
        downstream = servers
    # Autoscalers last: they resolve their tier's replica factory
    # eagerly, and every factory must exist by now.
    for tier in spec.tiers:
        if tier.autoscaler is not None:
            from repro.controlplane.autoscaler import ReactiveAutoscaler

            system.autoscalers.append(ReactiveAutoscaler(
                env, system, tier.name, tier.autoscaler))
    return system


def _worker_factory(env, system, spec, depth, config, state_config, rng,
                    policy_factory, mechanism_factory, resilience,
                    default_bundle):
    """A closure that builds one more replica of the worker tier at
    ``depth``, appends it to the system and joins it (cold) to every
    dispatcher feeding the tier.

    Used both for initial construction (when no upstream dispatchers
    exist yet — the builder runs back to front) and by the autoscaler
    at runtime (when they do).  Registered in
    ``system._replica_factories`` for :func:`replica_factory_for`.
    """
    tier = spec.tiers[depth]
    boundary = (spec.boundaries[depth]
                if depth < len(spec.boundaries) else None)
    downstream = (system.tiers[spec.tiers[depth + 1].name]
                  if depth + 1 < len(spec.tiers) else None)

    def make_replica(index: int) -> TierServer:
        host = _make_host(env, tier, index)
        zone = _zone_of(spec, tier, index)
        if boundary is None:
            tier_downstream = None
        elif boundary.mode == "inline":
            tier_downstream = InlineDownstream(downstream[0])
        else:
            tier_downstream = DispatchDownstream(_make_dispatcher(
                env, system, host.name, zone, boundary, downstream,
                depth, config, state_config, rng,
                policy_factory, mechanism_factory, resilience,
                default_bundle))
        if tier.service == "cache":
            cache = tier.effective_cache
            server = CacheTier(
                env, host.name, host,
                max_threads=tier.capacity,
                rng=rng,
                downstream=tier_downstream,
                role=tier.name,
                cpu_source=tier.effective_cpu_source,
                hit_ratio=cache.hit_ratio,
                ttl=cache.ttl,
                churn=cache.churn,
                warmup=cache.warmup,
                hit_cpu_fraction=cache.hit_cpu_fraction)
        else:
            server = WorkerTier(
                env, host.name, host,
                max_threads=tier.capacity,
                downstream=tier_downstream,
                role=tier.name,
                cpu_source=tier.effective_cpu_source)
        server.zone = zone
        _join_tier(system, tier.name, depth, server)
        return server

    system._replica_factories[tier.name] = make_replica
    return make_replica


def _pooled_factory(env, system, spec, depth):
    """Replica factory for a pooled tier (see :func:`_worker_factory`)."""
    tier = spec.tiers[depth]

    def make_replica(index: int) -> TierServer:
        host = _make_host(env, tier, index)
        server = PooledTier(
            env, host.name, host,
            max_connections=tier.capacity,
            role=tier.name,
            cpu_source=tier.effective_cpu_source)
        server.zone = _zone_of(spec, tier, index)
        if tier.bulkhead is not None:
            from repro.controlplane.bulkhead import Bulkhead

            bulkhead = Bulkhead(env, tier.bulkhead,
                                name=server.name + ".bulkhead")
            server.install_bulkhead(bulkhead)
            system.bulkheads.append(bulkhead)
        _join_tier(system, tier.name, depth, server)
        return server

    system._replica_factories[tier.name] = make_replica
    return make_replica


def _join_tier(system: NTierSystem, tier_name: str, depth: int,
               server: TierServer) -> None:
    """Append ``server`` to its tier and join every feeding dispatcher.

    During initial construction the dispatcher registry at ``depth - 1``
    is still empty (tiers build back to front), so this is a plain
    append; at runtime a scaled-up replica joins every upstream
    balancer cold (``preconnect=False`` — no established connections).
    """
    system.tiers[tier_name].append(server)
    for dispatcher in system.dispatchers_by_depth.get(depth - 1, ()):
        if isinstance(dispatcher, LoadBalancer):
            dispatcher.add_member(server, preconnect=False)
        else:
            dispatcher.add_backend(server)


def _wire_frontend_controlplane(env, system, tier, boundary,
                                servers) -> None:
    """Attach spec-declared control-plane mechanisms to a frontend tier."""
    if (tier.admission is None and tier.bulkhead is None
            and (boundary is None or boundary.leveling is None)):
        return
    from repro.controlplane.admission import TokenBucketAdmission
    from repro.controlplane.bulkhead import Bulkhead

    for server in servers:
        if tier.admission is not None:
            controller = TokenBucketAdmission(
                env, tier.admission, name=server.name + ".admission")
            server.install_admission(controller)
            system.admissions.append(controller)
        if tier.bulkhead is not None:
            bulkhead = Bulkhead(env, tier.bulkhead,
                                name=server.name + ".bulkhead")
            server.install_bulkhead(bulkhead)
            system.bulkheads.append(bulkhead)
        if boundary is not None and boundary.leveling is not None:
            system.levelers.append(
                server.install_leveling(boundary.leveling))


def replica_factory_for(system: NTierSystem,
                        tier_name: str) -> Callable[[int], TierServer]:
    """The builder for one more replica of ``tier_name``.

    Only spec-built worker and pooled tiers have one; frontends cannot
    scale at runtime (clients bind their sockets when the population is
    created).
    """
    if system.spec is None:
        raise ConfigurationError(
            "replica factories exist only on spec-built systems")
    try:
        return system._replica_factories[tier_name]
    except KeyError:
        raise ConfigurationError(
            "tier {!r} has no replica factory (frontend tiers cannot "
            "be scaled at runtime)".format(tier_name)) from None


def retire_replica(system: NTierSystem, tier_name: str,
                   server: TierServer) -> None:
    """Remove ``server`` from rotation without losing its work.

    The replica leaves its tier list and every upstream dispatcher, but
    moves to ``system.retired`` — in-flight requests complete through
    the references their dispatch already holds, and the server's
    counters stay available for conservation accounting.
    """
    servers = system.tiers[tier_name]
    if server not in servers:
        raise ConfigurationError(
            "{} is not a live replica of {}".format(server.name, tier_name))
    if len(servers) == 1:
        raise ConfigurationError(
            "cannot retire the last replica of " + tier_name)
    servers.remove(server)
    system.retired.setdefault(tier_name, []).append(server)
    depth = system.tier_names.index(tier_name)
    for dispatcher in system.dispatchers_by_depth.get(depth - 1, ()):
        if isinstance(dispatcher, LoadBalancer):
            if any(member.name == server.name
                   for member in dispatcher.members):
                dispatcher.retire_member(server.name)
        elif isinstance(dispatcher, ZoneRouter):
            if any(member.name == server.name
                   for balancer in dispatcher.zone_balancers.values()
                   for member in balancer.members):
                dispatcher.retire_member(server.name)
        elif server in dispatcher.backends:
            dispatcher.remove_backend(server)


def _zone_of(spec: TopologySpec, tier: TierSpec,
             index: int) -> Optional[str]:
    """The zone of the ``index``-th replica of ``tier``.

    Explicit placement wins; otherwise replicas round-robin across the
    declared zones.  Zone-free topologies place nothing (``None``).
    """
    if tier.placement is not None:
        return tier.placement[index]
    if spec.zones:
        return spec.zones[index % len(spec.zones)].name
    return None


def _wan_profile_between(spec: TopologySpec, zone_a: str,
                         zone_b: str) -> LinkProfileSpec:
    """Resolve the WAN profile of one cross-zone pair.

    Most specific wins: an explicit :class:`ZoneLinkSpec` for the pair,
    then either zone's default link (upstream side first), then the
    built-in WAN default.
    """
    pair = tuple(sorted((zone_a, zone_b)))
    for zone_link in spec.zone_links:
        if zone_link.pair == pair:
            return zone_link.link
    for name in (zone_a, zone_b):
        for zone in spec.zones:
            if zone.name == name and zone.link is not None:
                return zone.link
    return LinkProfileSpec()


def _link_factory_for(env, system, owner_name: str,
                      owner_zone: Optional[str], boundary, rng,
                      link_latency: float = 0.0002):
    """Build the member-link factory for one upstream server's dispatcher.

    Returns ``None`` when every hop is intra-zone with no boundary
    override — the dispatcher then builds its legacy fixed-latency
    links and the construction stays byte-identical to the zone-free
    world.
    """
    spec = system.spec
    zoned = spec is not None and bool(spec.zones)
    if not zoned and boundary.link is None:
        return None

    def make_link(server) -> Link:
        target_zone = getattr(server, "zone", None)
        profile_spec = None
        pair = None
        if zoned and owner_zone is not None and target_zone is not None \
                and owner_zone != target_zone:
            pair = tuple(sorted((owner_zone, target_zone)))
            profile_spec = (boundary.link
                            if boundary.link is not None
                            else _wan_profile_between(
                                spec, owner_zone, target_zone))
        elif not zoned and boundary.link is not None:
            # Zone-free topology with an explicit boundary link: every
            # hop on the boundary is a (uniform) WAN hop.
            profile_spec = boundary.link
        if profile_spec is None:
            return Link(env, link_latency,
                        name="{}->{}".format(owner_name, server.name))
        link_name = "{}=>{}".format(owner_name, server.name)
        link = Link(env, profile_spec.latency, name=link_name,
                    profile=profile_spec.runtime(name=link_name),
                    rng=rng, zone_pair=pair)
        system.wan_links.append(link)
        return link

    return make_link


def _make_host(env: "Environment", tier: TierSpec, index: int) -> Host:
    kwargs = {}
    if tier.disk_bandwidth is not None:
        kwargs["disk_bandwidth"] = tier.disk_bandwidth
    if tier.flush is not None:
        kwargs["flush_profile"] = tier.flush.profile(index)
    return Host(env, "{}{}".format(tier.name, index + 1),
                cores=tier.cores, **kwargs)


def _make_dispatcher(env, system, owner_name, owner_zone, boundary,
                     downstream, depth, config, state_config, rng,
                     policy_factory, mechanism_factory, resilience,
                     default_bundle):
    """One upstream server's dispatcher over the next tier's replicas."""
    link_factory = _link_factory_for(env, system, owner_name, owner_zone,
                                     boundary, rng,
                                     link_latency=config.link_latency)
    if boundary.mode == "direct":
        dispatcher = DirectDispatcher(env, list(downstream),
                                      link_latency=config.link_latency,
                                      link_factory=link_factory)
        system.direct_dispatchers.append(dispatcher)
        system.dispatchers_by_depth.setdefault(depth, []).append(dispatcher)
        return _maybe_level(env, system, owner_name, boundary, depth,
                            dispatcher)
    if boundary.mode == "sharded":
        shard = boundary.effective_shard
        dispatcher = ShardRouter(
            env, owner_name + ".shards", list(downstream),
            rng=rng,
            virtual_nodes=shard.virtual_nodes,
            key_space=shard.key_space,
            skew=shard.skew,
            link_factory=link_factory,
            link_latency=config.link_latency)
        system.shard_routers.append(dispatcher)
        system.dispatchers_by_depth.setdefault(depth, []).append(dispatcher)
        return _maybe_level(env, system, owner_name, boundary, depth,
                            dispatcher)
    make_policy, make_mechanism = _boundary_factories(
        boundary, depth, policy_factory, mechanism_factory, default_bundle)
    boundary_config = (replace(config, pool_size=boundary.pool_size)
                       if boundary.pool_size is not None else config)
    weights = (system.spec.tiers[depth + 1].weights
               if system.spec is not None else None)
    boundary_resilience = _boundary_resilience(boundary, depth, resilience)

    def make_balancer(name, servers, zone_weights):
        policy = make_policy()
        if boundary.probe is not None or boundary.affinity is not None:
            # configure() raises when the policy cannot consume the
            # tuning (probe knobs on total_request, affinity on
            # prequal, ...), so a spec cannot silently carry dead
            # configuration.
            policy.configure(probe=boundary.probe,
                             affinity=boundary.affinity)
        balancer = LoadBalancer(
            env, name, servers,
            policy=policy,
            mechanism=make_mechanism(),
            rng=rng,
            config=boundary_config,
            state_config=state_config,
            weights=zone_weights,
            link_factory=link_factory,
        )
        system.balancers.append(balancer)
        return balancer

    if boundary.hierarchy:
        if boundary_resilience is not None \
                and boundary_resilience.hedge is not None:
            raise ConfigurationError(
                "hedging is not supported on zone-hierarchy boundaries "
                "— hedge through the zone-local balancers instead")
        # Group the downstream replicas by zone, preserving replica
        # order inside each zone; one zone-local balancer per group
        # under a global locality-first router.
        groups: dict[str, list] = {}
        group_weights: dict[str, list] = {}
        for index, server in enumerate(downstream):
            zone = getattr(server, "zone", None)
            groups.setdefault(zone, []).append(server)
            if weights is not None:
                group_weights.setdefault(zone, []).append(weights[index])
        zone_balancers = {}
        for zone in sorted(groups):
            balancer = make_balancer(
                "{}.{}.lb".format(owner_name, zone), groups[zone],
                group_weights.get(zone))
            _wire_resilience(env, system, balancer, boundary_resilience,
                             rng)
            zone_balancers[zone] = balancer
        home_zone = (owner_zone if owner_zone in zone_balancers
                     else sorted(zone_balancers)[0])
        router = ZoneRouter(env, owner_name + ".zones", zone_balancers,
                            home_zone=home_zone)
        system.zone_routers.append(router)
        # Membership churn routes through the router (it forwards to
        # the owning zone's balancer).
        system.dispatchers_by_depth.setdefault(depth, []).append(router)
        return _maybe_level(env, system, owner_name, boundary, depth,
                            router)
    balancer = make_balancer(owner_name + ".lb", downstream, weights)
    # Membership churn applies to the balancer itself, never a wrapper.
    system.dispatchers_by_depth.setdefault(depth, []).append(balancer)
    dispatcher = _wire_resilience(
        env, system, balancer, boundary_resilience, rng)
    return _maybe_level(env, system, owner_name, boundary, depth,
                        dispatcher)


def _maybe_level(env, system, owner_name, boundary, depth, dispatcher):
    """Wrap a mid-tier dispatcher in its boundary's leveling queue.

    The frontend boundary (depth 0) integrates leveling natively inside
    :class:`~repro.tiers.base.FrontendTier` — the worker answers the
    client while drains dispatch — so only deeper boundaries take the
    request/reply wrapper.
    """
    if depth == 0 or boundary.leveling is None:
        return dispatcher
    from repro.controlplane.leveling import LevelingDispatcher

    leveled = LevelingDispatcher(env, dispatcher, boundary.leveling,
                                 name=owner_name + ".leveling")
    system.levelers.append(leveled.queue)
    return leveled


def _boundary_factories(boundary, depth, policy_factory, mechanism_factory,
                        default_bundle):
    """Resolve the policy/mechanism pair for one balanced boundary."""
    if depth == 0 and (policy_factory is not None
                       or mechanism_factory is not None):
        if policy_factory is None or mechanism_factory is None:
            raise ConfigurationError(
                "provide a RemedyBundle or policy/mechanism factories")
        return policy_factory, mechanism_factory
    if boundary.bundle is not None:
        bundle = get_bundle(boundary.bundle)
        return bundle.make_policy, bundle.make_mechanism
    if default_bundle is not None:
        return default_bundle.make_policy, default_bundle.make_mechanism
    raise ConfigurationError(
        "provide a RemedyBundle or policy/mechanism factories")


def _boundary_resilience(boundary, depth, resilience):
    """Resolve one boundary's resilience configuration."""
    if depth == 0 and resilience is not None:
        return resilience
    if boundary.resilience is not None:
        from repro.resilience import get_resilience

        return get_resilience(boundary.resilience)
    return None


# -- classic entry point ----------------------------------------------------

def build_system(
    env: "Environment",
    profile: ScaleProfile,
    bundle: Optional[RemedyBundle] = None,
    rng: Optional[np.random.Generator] = None,
    tomcat_millibottlenecks: bool = True,
    apache_millibottlenecks: bool = False,
    policy_factory: Optional[Callable[[], Policy]] = None,
    mechanism_factory: Optional[Callable[[], GetEndpointMechanism]] = None,
    balancer_config: Optional[BalancerConfig] = None,
    state_config: Optional[StateConfig] = None,
    use_balancer: bool = True,
    resilience: Optional["ResilienceConfig"] = None,
) -> NTierSystem:
    """Build and wire the paper's 3-tier system.

    Either ``bundle`` or both factories must be given when
    ``use_balancer``; with ``use_balancer=False`` every Apache
    round-robins directly over the Tomcat tier (the single-node §III-B
    configuration is the 1/1 special case).

    ``rng`` should be the experiment's seeded generator; when omitted,
    a generator seeded with :data:`DEFAULT_BUILD_SEED` keeps even
    ad-hoc builds deterministic.

    ``resilience`` wires the remedy layer around each balancer:
    circuit breakers on the members, health probers, and a hedging
    wrapper between Apache and its balancer.  ``None`` (and the
    all-``None`` config) build a system event-for-event identical to
    the seed one.  The client-side retry remedy lives with the client
    population, not here.
    """
    if bundle is not None:
        policy_factory = bundle.make_policy
        mechanism_factory = bundle.make_mechanism
    spec = TopologySpec.classic(
        profile,
        tomcat_millibottlenecks=tomcat_millibottlenecks,
        apache_millibottlenecks=apache_millibottlenecks,
        use_balancer=use_balancer,
    )
    return build_from_spec(
        env, spec, profile=profile, rng=rng,
        balancer_config=balancer_config,
        state_config=state_config,
        policy_factory=policy_factory if use_balancer else None,
        mechanism_factory=mechanism_factory if use_balancer else None,
        resilience=resilience,
    )


def _wire_resilience(env, system, balancer, resilience, rng):
    """Install the configured remedies around one balancer.

    Returns the dispatcher the upstream server should use: the
    balancer itself, or its hedging wrapper.
    """
    if resilience is None:
        return balancer
    if resilience.breaker is not None:
        from repro.resilience.breaker import CircuitBreaker

        balancer.install_breakers([
            CircuitBreaker(env, resilience.breaker)
            for _ in balancer.members
        ])
    if resilience.probes is not None:
        from repro.resilience.probes import HealthProber

        system.probers.append(HealthProber(
            env, balancer.members, resilience.probes, rng=rng,
            name=balancer.name + ".prober"))
    if resilience.hedge is not None:
        from repro.resilience.hedge import HedgingDispatcher

        hedger = HedgingDispatcher(env, balancer, resilience.hedge)
        system.hedgers.append(hedger)
        return hedger
    return balancer
