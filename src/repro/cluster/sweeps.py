"""Parameter sweeps over experiment configurations.

A :class:`Sweep` runs the cross product of parameter overrides against
a base :class:`~repro.cluster.runner.ExperimentConfig` and collects one
summary row per run — the machinery behind the ablation benchmarks,
exposed as a public API so users can run their own sweeps:

    sweep = Sweep(policy_run("original_total_request", trace=False))
    sweep.over("profile.tomcat_disk_bandwidth", [40e6, 8e6, 5e6])
    sweep.over("seed", [1, 2, 3])
    rows = sweep.run()
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Callable, Optional

from repro.cluster.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
)
from repro.errors import ConfigurationError


def _apply_override(config: ExperimentConfig, path: str,
                    value: Any) -> ExperimentConfig:
    """Return a config copy with the dotted ``path`` replaced.

    Supports top-level fields (``"seed"``) and profile fields
    (``"profile.clients"``).
    """
    parts = path.split(".")
    if len(parts) == 1:
        if not hasattr(config, parts[0]):
            raise ConfigurationError("unknown config field: " + path)
        return replace(config, **{parts[0]: value})
    if len(parts) == 2 and parts[0] == "profile":
        if not hasattr(config.profile, parts[1]):
            raise ConfigurationError("unknown profile field: " + path)
        profile = replace(config.profile, **{parts[1]: value})
        return replace(config, profile=profile)
    raise ConfigurationError("unsupported override path: " + path)


def _default_summary(result) -> dict:
    """The default per-run sweep row: Table-I numbers plus drops.

    Accepts a full :class:`ExperimentResult` or a picklable
    :class:`~repro.parallel.ExperimentSummary` — it only touches the
    shared reporting surface.  Module-level so a process pool can ship
    it to workers.
    """
    stats = result.stats()
    return {
        "requests": stats.count,
        "avg_rt_ms": round(stats.mean_ms, 2),
        "vlrt_pct": round(100 * stats.vlrt_fraction, 3),
        "drops": result.dropped_packets(),
    }


class Sweep:
    """Cross product of parameter overrides, run serially or fanned out."""

    def __init__(self, base: ExperimentConfig) -> None:
        self.base = base
        self._axes: list[tuple[str, list[Any]]] = []

    def over(self, path: str, values) -> "Sweep":
        """Add an axis; returns self for chaining."""
        values = list(values)
        if not values:
            raise ConfigurationError("axis {} has no values".format(path))
        # Validate the path eagerly against the base config.
        _apply_override(self.base, path, values[0])
        self._axes.append((path, values))
        return self

    def __len__(self) -> int:
        total = 1
        for _, values in self._axes:
            total *= len(values)
        return total

    def configs(self):
        """Yield ``(overrides, config)`` for every grid point."""
        if not self._axes:
            yield {}, self.base
            return
        paths = [path for path, _ in self._axes]
        for combo in itertools.product(*(values for _, values
                                         in self._axes)):
            config = self.base
            overrides = dict(zip(paths, combo))
            for path, value in overrides.items():
                config = _apply_override(config, path, value)
            yield overrides, config

    def run(self, summarize: Optional[
            Callable[[ExperimentResult], dict]] = None,
            workers: int = 1) -> list[dict]:
        """Run every grid point; one summary dict per run.

        The default summary carries the overrides plus the Table-I
        numbers and the drop count.  ``workers > 1`` (or ``None`` for
        one per CPU) fans the grid out across a process pool; a custom
        ``summarize`` then runs inside the workers and must be a
        picklable (module-level) callable.  Rows always come back in
        grid order and each row is identical to a serial run's — every
        grid point is seeded solely by its own config.
        """
        summarize = summarize or _default_summary
        grid = list(self.configs())
        if workers == 1:
            summaries = [summarize(ExperimentRunner(config).run())
                         for _, config in grid]
        else:
            from repro.parallel import run_experiments
            summaries = run_experiments(
                [config for _, config in grid],
                workers=workers, postprocess=summarize)
        rows = []
        for (overrides, _), summary in zip(grid, summaries):
            row = dict(overrides)
            row.update(summary)
            rows.append(row)
        return rows
