"""Declarative topology specifications.

The paper is about *N-tier* systems; this module makes the "N" data
instead of code.  A :class:`TopologySpec` names an ordered chain of
tiers (:class:`TierSpec`: service model, replica count, concurrency
limit, host profile, optional millibottleneck profile) and, between
each adjacent pair, a :class:`BoundarySpec` describing how requests
cross the boundary — through a per-upstream-server load balancer
(balancer-per-boundary, the mod_jk arrangement), a policy-free
round-robin direct dispatcher, or an inline call on the caller's
thread (the classic Tomcat→MySQL wiring).

Specs are pure frozen data: loadable from a Python dict or JSON file
(:meth:`TopologySpec.from_dict`, :meth:`TopologySpec.from_json`),
picklable across process pools, and validated eagerly with
:class:`~repro.errors.ConfigurationError`\\ s that name the offending
field.  :func:`repro.cluster.topology.build_from_spec` turns a spec
into a wired :class:`~repro.cluster.topology.NTierSystem`; the classic
paper topology is :meth:`TopologySpec.classic` and builds an
event-for-event identical system to the historical hand-coded one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.cluster.config import ScaleProfile
from repro.controlplane.admission import AdmissionConfig
from repro.controlplane.autoscaler import AutoscalerConfig
from repro.controlplane.bulkhead import BulkheadConfig
from repro.controlplane.leveling import LevelingConfig
from repro.core.policies import PrequalProbeConfig, StickyConfig
from repro.errors import ConfigurationError
from repro.netmodel.sockets import LinkProfile
from repro.osmodel.profiles import MillibottleneckProfile

#: The service models a tier can be configured with (see
#: :mod:`repro.tiers.base`, :mod:`repro.tiers.cache`).
SERVICE_MODELS = ("frontend", "worker", "pooled", "cache")

#: How requests cross a tier boundary.
BOUNDARY_MODES = ("balanced", "direct", "inline", "sharded")

#: Default CPU-demand attribute of :class:`~repro.workload.interactions.
#: Interaction` per service model.
DEFAULT_CPU_SOURCE = {
    "frontend": "apache_cpu",
    "worker": "tomcat_cpu",
    "pooled": "mysql_cpu",
    # A cache burns app-tier-shaped CPU: its misses do the same work a
    # worker would, its hits a configured fraction of it.
    "cache": "tomcat_cpu",
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _from_mapping(cls, data, what: str):
    """Build a spec dataclass from a dict, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            "{} must be a mapping, got {!r}".format(what, data))
    allowed = set(cls.__dataclass_fields__)
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigurationError(
            "unknown {} field(s): {} (allowed: {})".format(
                what, ", ".join(unknown), ", ".join(sorted(allowed))))
    return cls(**data)


@dataclass(frozen=True)
class FlushSpec:
    """Millibottleneck machinery of one tier's hosts.

    ``profile(index)`` staggers first-flush phases across replicas
    (``phase + stagger * index``), matching the paper's zoom-ins where
    one server stalls at a time.
    """

    interval: float = 4.0
    threshold_bytes: float = 256e3
    stagger: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        _require(self.interval > 0, "flush interval must be positive")
        _require(self.threshold_bytes > 0,
                 "flush threshold_bytes must be positive")
        _require(self.stagger >= 0, "flush stagger must be >= 0")
        _require(self.phase >= 0, "flush phase must be >= 0")

    def profile(self, index: int) -> MillibottleneckProfile:
        """Flush profile of the ``index``-th replica of the tier."""
        return MillibottleneckProfile(
            flush_interval=self.interval,
            dirty_threshold_bytes=self.threshold_bytes,
            phase=self.stagger * index + self.phase,
        )


@dataclass(frozen=True)
class LinkProfileSpec:
    """Declarative network-path behaviour (see runtime
    :class:`~repro.netmodel.sockets.LinkProfile`).

    ``latency`` is the one-way propagation delay; ``jitter`` adds a
    uniform [0, jitter) draw per traversal; ``loss`` is the per-frame
    loss probability (each loss costs one link-layer retransmission
    clocked by ``rto``); ``bandwidth`` (bytes/s) adds serialization
    delay when set.
    """

    latency: float = 0.03
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth: Optional[float] = None
    rto: float = 0.2

    def __post_init__(self) -> None:
        _require(self.latency >= 0, "link latency must be >= 0")
        _require(self.jitter >= 0, "link jitter must be >= 0")
        _require(0.0 <= self.loss < 1.0, "link loss must be in [0, 1)")
        if self.bandwidth is not None:
            _require(self.bandwidth > 0, "link bandwidth must be positive")
        _require(self.rto > 0, "link rto must be positive")

    def runtime(self, name: str = "wan") -> LinkProfile:
        """The runtime :class:`LinkProfile` this spec describes."""
        return LinkProfile(latency=self.latency, jitter=self.jitter,
                           loss=self.loss, bandwidth=self.bandwidth,
                           rto=self.rto, name=name)

    @classmethod
    def from_dict(cls, data: dict) -> "LinkProfileSpec":
        return _from_mapping(cls, data, "link profile")


@dataclass(frozen=True)
class ZoneSpec:
    """One availability zone replicas can be placed in.

    ``link`` is the zone's *default* WAN profile: any cross-zone hop
    touching this zone without a more specific
    :class:`ZoneLinkSpec`/boundary override pays it.
    """

    name: str
    link: Optional[LinkProfileSpec] = None

    def __post_init__(self) -> None:
        _require(bool(self.name) and isinstance(self.name, str),
                 "zone name must be a non-empty string")

    @classmethod
    def from_dict(cls, data: dict) -> "ZoneSpec":
        data = dict(data) if isinstance(data, dict) else data
        if isinstance(data, dict) and isinstance(data.get("link"), dict):
            data["link"] = LinkProfileSpec.from_dict(data["link"])
        return _from_mapping(cls, data, "zone")


@dataclass(frozen=True)
class ZoneLinkSpec:
    """WAN profile of one specific (unordered) zone pair."""

    zones: tuple[str, str]
    link: LinkProfileSpec

    def __post_init__(self) -> None:
        object.__setattr__(self, "zones", tuple(self.zones))
        _require(len(self.zones) == 2,
                 "zone link needs exactly two zone names, got {!r}".format(
                     self.zones))
        _require(self.zones[0] != self.zones[1],
                 "zone link {!r} connects a zone to itself".format(
                     self.zones[0]))
        _require(isinstance(self.link, LinkProfileSpec),
                 "zone link needs a link profile")

    @property
    def pair(self) -> tuple[str, str]:
        """Order-independent key of the pair."""
        return tuple(sorted(self.zones))

    @classmethod
    def from_dict(cls, data: dict) -> "ZoneLinkSpec":
        data = dict(data) if isinstance(data, dict) else data
        if isinstance(data, dict):
            if isinstance(data.get("zones"), list):
                data["zones"] = tuple(data["zones"])
            if isinstance(data.get("link"), dict):
                data["link"] = LinkProfileSpec.from_dict(data["link"])
        return _from_mapping(cls, data, "zone link")


@dataclass(frozen=True)
class CacheSpec:
    """Behaviour of a cache-aside tier (service model ``cache``).

    The effective hit ratio is ``hit_ratio * ttl / (ttl + churn)``
    scaled by a cold-start warm-up curve ``1 - exp(-(now - warm_start)
    / warmup)``: ``churn`` is the mean re-reference interval of an
    entry (longer TTLs keep more of them fresh — hit ratio is
    monotone in ``ttl``), and a crashed-then-recovered cache restarts
    the warm-up clock, which is exactly the failover instability the
    geo experiment measures.
    """

    hit_ratio: float = 0.8
    ttl: float = 60.0
    churn: float = 30.0
    warmup: float = 5.0
    hit_cpu_fraction: float = 0.1

    def __post_init__(self) -> None:
        _require(0.0 <= self.hit_ratio <= 1.0,
                 "cache hit_ratio must be in [0, 1]")
        _require(self.ttl > 0, "cache ttl must be positive")
        _require(self.churn >= 0, "cache churn must be >= 0")
        _require(self.warmup >= 0, "cache warmup must be >= 0")
        _require(0.0 < self.hit_cpu_fraction <= 1.0,
                 "cache hit_cpu_fraction must be in (0, 1]")

    @classmethod
    def from_dict(cls, data: dict) -> "CacheSpec":
        return _from_mapping(cls, data, "cache")


@dataclass(frozen=True)
class ShardSpec:
    """Key-sharded fan-out over a pooled tier (boundary ``sharded``).

    A consistent-hash ring with ``virtual_nodes`` vnodes per replica
    routes each request's key (drawn from a ``key_space``-sized
    population, Zipf-skewed by ``skew``; 0 = uniform) to its owner
    shard; retire/join moves only ~1/N of the key space.
    """

    virtual_nodes: int = 64
    key_space: int = 1024
    skew: float = 0.0

    def __post_init__(self) -> None:
        _require(self.virtual_nodes >= 1,
                 "shard virtual_nodes must be >= 1")
        _require(self.key_space >= 1, "shard key_space must be >= 1")
        _require(self.skew >= 0, "shard skew must be >= 0")

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return _from_mapping(cls, data, "shard")


@dataclass(frozen=True)
class TierSpec:
    """One tier of the chain.

    ``capacity`` is the tier's concurrency limit in its service model's
    native unit: ``MaxClients`` worker slots for a frontend,
    ``maxThreads`` for a worker, pooled connections for a pooled tier.
    ``flush=None`` disables millibottlenecks on the tier's hosts;
    ``disk_bandwidth=None`` keeps the host default.  ``cpu_source``
    names the :class:`~repro.workload.interactions.Interaction`
    attribute the tier burns per request (defaulted per service model),
    so a 4-tier chain can split the app-tier demand any way it likes.
    """

    name: str
    service: str
    replicas: int = 1
    capacity: int = 8
    cores: int = 4
    backlog: int = 32
    disk_bandwidth: Optional[float] = None
    flush: Optional[FlushSpec] = None
    cpu_source: Optional[str] = None
    #: Token-bucket admission control (frontend tiers only).
    admission: Optional[AdmissionConfig] = None
    #: Read/write capacity partition (frontend or pooled tiers).
    bulkhead: Optional[BulkheadConfig] = None
    #: Reactive replica scaling (any tier but the frontend — clients
    #: bind their sockets when the population is created).
    autoscaler: Optional[AutoscalerConfig] = None
    #: HAProxy-style static capacity weights, one per replica; read by
    #: upstream ``weighted_least_conn`` balancers (members scaled in
    #: later default to weight 1.0).
    weights: Optional[tuple[float, ...]] = None
    #: Replica -> zone assignment: one zone name per replica.  ``None``
    #: round-robins replicas across the topology's zones (when any are
    #: declared); zone names are checked against
    #: :attr:`TopologySpec.zones` at topology level.
    placement: Optional[tuple[str, ...]] = None
    #: Cache behaviour; only meaningful (and only allowed) on
    #: ``service="cache"`` tiers, which default it when omitted.
    cache: Optional[CacheSpec] = None

    def __post_init__(self) -> None:
        if self.weights is not None:
            object.__setattr__(self, "weights", tuple(self.weights))
        if self.placement is not None:
            object.__setattr__(self, "placement", tuple(self.placement))
        _require(bool(self.name) and isinstance(self.name, str),
                 "tier name must be a non-empty string")
        _require(self.service in SERVICE_MODELS,
                 "tier {!r}: unknown service model {!r} (one of {})".format(
                     self.name, self.service, ", ".join(SERVICE_MODELS)))
        _require(self.replicas >= 1,
                 "tier {!r}: replicas must be >= 1".format(self.name))
        _require(self.capacity >= 1,
                 "tier {!r}: capacity must be >= 1".format(self.name))
        _require(self.cores >= 1,
                 "tier {!r}: cores must be >= 1".format(self.name))
        _require(self.backlog >= 1,
                 "tier {!r}: backlog must be >= 1".format(self.name))
        if self.disk_bandwidth is not None:
            _require(self.disk_bandwidth > 0,
                     "tier {!r}: disk_bandwidth must be positive".format(
                         self.name))
        if self.admission is not None:
            _require(self.service == "frontend",
                     "tier {!r}: admission control belongs on the "
                     "frontend tier (the client-facing gate)".format(
                         self.name))
        if self.bulkhead is not None:
            _require(self.service in ("frontend", "pooled"),
                     "tier {!r}: bulkheads partition frontend worker "
                     "slots or pooled connections, not {!r} tiers".format(
                         self.name, self.service))
        if self.weights is not None:
            _require(len(self.weights) == self.replicas,
                     "tier {!r}: need one weight per replica "
                     "({} != {})".format(self.name, len(self.weights),
                                         self.replicas))
            _require(all(w > 0 for w in self.weights),
                     "tier {!r}: weights must be positive".format(self.name))
        if self.autoscaler is not None:
            _require(self.service != "frontend",
                     "tier {!r}: frontend tiers cannot autoscale — "
                     "clients bind their sockets at startup".format(
                         self.name))
            _require(self.autoscaler.min_replicas <= self.replicas
                     <= self.autoscaler.max_replicas,
                     "tier {!r}: replicas={} outside the autoscaler "
                     "range [{}, {}]".format(
                         self.name, self.replicas,
                         self.autoscaler.min_replicas,
                         self.autoscaler.max_replicas))
        if self.placement is not None:
            _require(len(self.placement) == self.replicas,
                     "tier {!r}: placement names {} zone(s) for {} "
                     "replica(s) — need exactly one per replica".format(
                         self.name, len(self.placement), self.replicas))
            _require(all(isinstance(z, str) and z for z in self.placement),
                     "tier {!r}: placement entries must be non-empty "
                     "zone names".format(self.name))
            _require(self.autoscaler is None,
                     "tier {!r}: explicit placement and autoscaling "
                     "conflict — scaled-in replicas have no zone".format(
                         self.name))
        if self.cache is not None:
            _require(self.service == "cache",
                     "tier {!r}: cache tuning belongs on a 'cache' "
                     "tier, not {!r}".format(self.name, self.service))

    @property
    def effective_cpu_source(self) -> str:
        return self.cpu_source or DEFAULT_CPU_SOURCE[self.service]

    @property
    def effective_cache(self) -> CacheSpec:
        """Cache behaviour with defaults applied (cache tiers only)."""
        return self.cache or CacheSpec()

    @classmethod
    def from_dict(cls, data: dict) -> "TierSpec":
        data = dict(data) if isinstance(data, dict) else data
        if isinstance(data, dict):
            if isinstance(data.get("flush"), dict):
                data["flush"] = _from_mapping(FlushSpec, data["flush"],
                                              "flush")
            for key, config_cls in (("admission", AdmissionConfig),
                                    ("bulkhead", BulkheadConfig),
                                    ("autoscaler", AutoscalerConfig),
                                    ("cache", CacheSpec)):
                if isinstance(data.get(key), dict):
                    data[key] = _from_mapping(config_cls, data[key], key)
            if isinstance(data.get("weights"), list):
                data["weights"] = tuple(data["weights"])
            if isinstance(data.get("placement"), list):
                data["placement"] = tuple(data["placement"])
        return _from_mapping(cls, data, "tier")


@dataclass(frozen=True)
class BoundarySpec:
    """How requests cross one tier boundary.

    * ``balanced`` — every upstream server runs its own
      :class:`~repro.core.balancer.LoadBalancer` over the downstream
      replicas; ``bundle`` names the Table-I policy/mechanism pair
      (it may be left ``None`` when the experiment supplies one).
    * ``direct`` — a policy-free round-robin
      :class:`~repro.core.balancer.DirectDispatcher` per upstream
      server (the paper's §III-B no-balancer configuration).
    * ``inline`` — the upstream worker thread calls the (single)
      downstream pooled server directly, holding one pooled connection
      for the whole request (the classic Tomcat→MySQL wiring).

    ``pool_size`` overrides the per-member AJP endpoint pool for this
    boundary's balancers; ``resilience`` names a remedy bundle from
    :data:`repro.resilience.RESILIENCE_BUNDLES` to wire around them.
    """

    mode: str = "balanced"
    bundle: Optional[str] = None
    pool_size: Optional[int] = None
    resilience: Optional[str] = None
    #: Bounded load-leveling FIFO in front of this boundary's
    #: dispatchers (frontends integrate it natively; deeper boundaries
    #: get a request/reply wrapper).  Not available on inline
    #: boundaries — there is no dispatcher to level.
    leveling: Optional[LevelingConfig] = None
    #: Probe-pool tuning for probing policies (``prequal``); applied
    #: via ``Policy.configure``, which rejects it for any policy that
    #: does not probe.
    probe: Optional[PrequalProbeConfig] = None
    #: Session-affinity tuning for ``sticky`` balancers; rejected by
    #: every other policy.
    affinity: Optional[StickyConfig] = None
    #: WAN profile every cross-zone hop on this boundary pays,
    #: overriding zone-pair/zone-default resolution.  In a zone-free
    #: topology it applies to *every* hop on the boundary (a uniform
    #: WAN boundary).  Inline boundaries have no network hop to
    #: profile, so a link there is rejected.
    link: Optional[LinkProfileSpec] = None
    #: Grow a zone-local balancer per zone under a global
    #: :class:`~repro.core.balancer.ZoneRouter` (locality-first with
    #: cross-zone spillover) instead of one flat balancer over every
    #: replica.  Requires ``balanced`` mode and declared zones.
    hierarchy: bool = False
    #: Consistent-hash sharding tuning; only meaningful on ``sharded``
    #: boundaries (which default it when omitted).
    shard: Optional[ShardSpec] = None

    def __post_init__(self) -> None:
        _require(self.mode in BOUNDARY_MODES,
                 "unknown boundary mode {!r} (one of {})".format(
                     self.mode, ", ".join(BOUNDARY_MODES)))
        if self.mode == "inline":
            _require(self.link is None,
                     "inline boundaries take no link profile — an "
                     "inline call never crosses the network")
        if self.hierarchy:
            _require(self.mode == "balanced",
                     "boundary mode {!r} cannot build a zone "
                     "hierarchy — only balanced boundaries grow "
                     "zone-local balancers".format(self.mode))
        if self.shard is not None:
            _require(self.mode == "sharded",
                     "shard tuning belongs on a 'sharded' boundary, "
                     "not {!r}".format(self.mode))
        if self.pool_size is not None:
            _require(self.pool_size >= 1, "boundary pool_size must be >= 1")
        if self.bundle is not None:
            from repro.core.remedies import BUNDLES

            _require(self.bundle in BUNDLES,
                     "unknown policy bundle {!r} (one of {})".format(
                         self.bundle, ", ".join(sorted(BUNDLES))))
        if self.resilience is not None:
            from repro.resilience import RESILIENCE_BUNDLES

            _require(self.resilience in RESILIENCE_BUNDLES,
                     "unknown resilience bundle {!r} (one of {})".format(
                         self.resilience,
                         ", ".join(sorted(RESILIENCE_BUNDLES))))
        if self.mode != "balanced":
            _require(self.bundle is None,
                     "boundary mode {!r} takes no policy bundle".format(
                         self.mode))
            _require(self.resilience is None,
                     "boundary mode {!r} takes no resilience bundle".format(
                         self.mode))
            _require(self.probe is None,
                     "boundary mode {!r} takes no probe tuning — only "
                     "balanced boundaries run probing policies".format(
                         self.mode))
            _require(self.affinity is None,
                     "boundary mode {!r} takes no affinity tuning — only "
                     "balanced boundaries run sticky policies".format(
                         self.mode))
        if self.mode == "inline":
            _require(self.leveling is None,
                     "inline boundaries take no leveling queue — there "
                     "is no dispatcher to level")

    @property
    def effective_shard(self) -> ShardSpec:
        """Shard tuning with defaults applied (sharded boundaries)."""
        return self.shard or ShardSpec()

    @classmethod
    def from_dict(cls, data: dict) -> "BoundarySpec":
        data = dict(data) if isinstance(data, dict) else data
        if isinstance(data, dict):
            for key, config_cls in (("leveling", LevelingConfig),
                                    ("probe", PrequalProbeConfig),
                                    ("affinity", StickyConfig),
                                    ("link", LinkProfileSpec),
                                    ("shard", ShardSpec)):
                if isinstance(data.get(key), dict):
                    data[key] = _from_mapping(config_cls, data[key], key)
        return _from_mapping(cls, data, "boundary")


@dataclass(frozen=True)
class WorkloadSpec:
    """Closed-loop client population to drive a topology with."""

    clients: int = 200
    think_time: float = 1.0
    ramp_up: float = 1.0

    def __post_init__(self) -> None:
        _require(self.clients >= 1, "workload clients must be >= 1")
        _require(self.think_time > 0, "workload think_time must be positive")
        _require(self.ramp_up >= 0, "workload ramp_up must be >= 0")

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return _from_mapping(cls, data, "workload")


@dataclass(frozen=True)
class TopologySpec:
    """An ordered tier chain plus one boundary between each pair."""

    name: str
    tiers: tuple[TierSpec, ...]
    boundaries: tuple[BoundarySpec, ...]
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: Availability zones replicas can be placed in; empty = the
    #: classic single-cluster world (zero behaviour change).
    zones: tuple[ZoneSpec, ...] = ()
    #: Per-zone-pair WAN overrides (more specific than zone defaults).
    zone_links: tuple[ZoneLinkSpec, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built specs; store tuples.
        object.__setattr__(self, "tiers", tuple(self.tiers))
        object.__setattr__(self, "boundaries", tuple(self.boundaries))
        object.__setattr__(self, "zones", tuple(self.zones))
        object.__setattr__(self, "zone_links", tuple(self.zone_links))
        _require(bool(self.name), "topology name must be non-empty")
        _require(len(self.tiers) >= 2,
                 "topology {!r}: need at least two tiers, got {}".format(
                     self.name, len(self.tiers)))
        names = [tier.name for tier in self.tiers]
        _require(len(set(names)) == len(names),
                 "topology {!r}: duplicate tier names in {}".format(
                     self.name, names))
        _require(len(self.boundaries) == len(self.tiers) - 1,
                 "topology {!r}: {} tiers need {} boundaries, got {}".format(
                     self.name, len(self.tiers), len(self.tiers) - 1,
                     len(self.boundaries)))
        _require(self.tiers[0].service == "frontend",
                 "topology {!r}: first tier must use the 'frontend' "
                 "service model (clients need accept sockets)".format(
                     self.name))
        for tier in self.tiers[1:]:
            _require(tier.service != "frontend",
                     "topology {!r}: tier {!r} cannot be a frontend — "
                     "only the first tier faces clients".format(
                         self.name, tier.name))
        for tier in self.tiers[:-1]:
            _require(tier.service != "pooled",
                     "topology {!r}: pooled tier {!r} must be last — "
                     "it has no downstream".format(self.name, tier.name))
        _require(self.tiers[-1].service != "cache",
                 "topology {!r}: cache tier {!r} cannot be last — "
                 "cache-aside needs a downstream to miss to".format(
                     self.name, self.tiers[-1].name))
        zone_names = [zone.name for zone in self.zones]
        _require(len(set(zone_names)) == len(zone_names),
                 "topology {!r}: duplicate zone names in {}".format(
                     self.name, zone_names))
        known_zones = set(zone_names)
        seen_pairs = set()
        for zone_link in self.zone_links:
            for zone in zone_link.zones:
                _require(zone in known_zones,
                         "topology {!r}: zone link references unknown "
                         "zone {!r} (declared: {})".format(
                             self.name, zone,
                             ", ".join(zone_names) or "none"))
            _require(zone_link.pair not in seen_pairs,
                     "topology {!r}: duplicate zone link for pair "
                     "{}".format(self.name, zone_link.pair))
            seen_pairs.add(zone_link.pair)
        for tier in self.tiers:
            if tier.placement is None:
                continue
            _require(bool(self.zones),
                     "topology {!r}: tier {!r} has a placement but the "
                     "topology declares no zones".format(
                         self.name, tier.name))
            for zone in tier.placement:
                _require(zone in known_zones,
                         "topology {!r}: tier {!r} placed in unknown "
                         "zone {!r} (declared: {})".format(
                             self.name, tier.name, zone,
                             ", ".join(zone_names)))
        for depth, boundary in enumerate(self.boundaries):
            upstream, downstream = self.tiers[depth], self.tiers[depth + 1]
            where = "boundary {} ({} -> {})".format(
                depth, upstream.name, downstream.name)
            if boundary.hierarchy:
                _require(bool(self.zones),
                         "{}: a zone hierarchy needs declared "
                         "zones".format(where))
            if boundary.mode == "sharded":
                _require(downstream.service == "pooled",
                         "{}: sharded boundaries fan out over a pooled "
                         "tier".format(where))
            if boundary.mode == "inline":
                _require(upstream.service == "worker",
                         "{}: inline needs a worker upstream".format(where))
                _require(downstream.service == "pooled",
                         "{}: inline needs a pooled downstream".format(where))
                _require(downstream.replicas == 1,
                         "{}: inline cannot fan out over {} replicas — "
                         "use a balanced or direct boundary".format(
                             where, downstream.replicas))
                _require(downstream.autoscaler is None,
                         "{}: an inline downstream cannot autoscale — "
                         "inline callers bind to the single replica".format(
                             where))

    # -- (de)serialisation -------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                "topology spec must be a mapping, got {!r}".format(data))
        unknown = sorted(
            set(data) - {"name", "tiers", "boundaries", "workload",
                         "zones", "zone_links"})
        if unknown:
            raise ConfigurationError(
                "unknown topology field(s): " + ", ".join(unknown))
        tiers = data.get("tiers") or ()
        if not isinstance(tiers, (list, tuple)):
            raise ConfigurationError("topology tiers must be a list")
        boundaries = data.get("boundaries")
        if boundaries is None:
            boundaries = [{} for _ in range(max(0, len(tiers) - 1))]
        if not isinstance(boundaries, (list, tuple)):
            raise ConfigurationError("topology boundaries must be a list")
        zones = data.get("zones") or ()
        if not isinstance(zones, (list, tuple)):
            raise ConfigurationError("topology zones must be a list")
        zone_links = data.get("zone_links") or ()
        if not isinstance(zone_links, (list, tuple)):
            raise ConfigurationError("topology zone_links must be a list")
        workload = data.get("workload")
        return cls(
            name=data.get("name", ""),
            tiers=tuple(TierSpec.from_dict(tier) for tier in tiers),
            boundaries=tuple(BoundarySpec.from_dict(boundary)
                             for boundary in boundaries),
            workload=(WorkloadSpec.from_dict(workload)
                      if workload is not None else WorkloadSpec()),
            zones=tuple(ZoneSpec.from_dict(zone) for zone in zones),
            zone_links=tuple(ZoneLinkSpec.from_dict(zone_link)
                             for zone_link in zone_links),
        )

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                "topology spec is not valid JSON: {}".format(error))
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "TopologySpec":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> dict:
        data = asdict(self)
        for tier in data["tiers"]:
            for key in ("flush", "disk_bandwidth", "cpu_source",
                        "admission", "bulkhead", "autoscaler", "weights",
                        "placement", "cache"):
                if tier[key] is None:
                    del tier[key]
            if "weights" in tier:
                tier["weights"] = list(tier["weights"])
            if "placement" in tier:
                tier["placement"] = list(tier["placement"])
        for boundary in data["boundaries"]:
            for key in ("bundle", "pool_size", "resilience", "leveling",
                        "probe", "affinity", "link", "shard"):
                if boundary[key] is None:
                    del boundary[key]
            if not boundary["hierarchy"]:
                del boundary["hierarchy"]
        for zone in data["zones"]:
            if zone["link"] is None:
                del zone["link"]
        for zone_link in data["zone_links"]:
            zone_link["zones"] = list(zone_link["zones"])
        for key in ("zones", "zone_links"):
            if not data[key]:
                del data[key]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # -- derived -----------------------------------------------------------
    def tier_named(self, name: str) -> TierSpec:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise ConfigurationError("no tier named " + repr(name))

    def scale_profile(self) -> ScaleProfile:
        """A :class:`ScaleProfile` carrying this spec's workload knobs.

        Only the workload fields matter when building from a spec (the
        tier knobs all come from the spec itself); the counts are
        mirrored so reporting code sees a faithful profile.
        """
        return ScaleProfile(
            name=self.name,
            apache_count=self.tiers[0].replicas,
            tomcat_count=self.tiers[1].replicas,
            clients=self.workload.clients,
            think_time=self.workload.think_time,
            ramp_up=self.workload.ramp_up,
        )

    def describe(self) -> str:
        """A compact human-readable rendering for ``topology show``."""
        lines = ["topology {!r}: {} tiers, {} clients".format(
            self.name, len(self.tiers), self.workload.clients)]
        if self.zones:
            parts = []
            for zone in self.zones:
                if zone.link is not None:
                    parts.append("{} (wan {:.0f} ms, loss {:.2%})".format(
                        zone.name, zone.link.latency * 1000,
                        zone.link.loss))
                else:
                    parts.append(zone.name)
            lines.append("  zones: " + ", ".join(parts))
        for depth, tier in enumerate(self.tiers):
            flush = (" flush(interval={}, threshold={:.0f})".format(
                tier.flush.interval, tier.flush.threshold_bytes)
                if tier.flush else "")
            extras = ""
            if tier.admission is not None:
                extras += " admission({}/s)".format(
                    tier.admission.refill_rate)
            if tier.bulkhead is not None:
                extras += " bulkhead(r={}, w={})".format(
                    tier.bulkhead.read_slots, tier.bulkhead.write_slots)
            if tier.autoscaler is not None:
                extras += " autoscale[{}..{}]".format(
                    tier.autoscaler.min_replicas,
                    tier.autoscaler.max_replicas)
            if tier.weights is not None:
                extras += " weights({})".format(
                    ", ".join("{:g}".format(w) for w in tier.weights))
            if tier.placement is not None:
                extras += " @[{}]".format(", ".join(tier.placement))
            if tier.service == "cache":
                cache = tier.effective_cache
                extras += " cache(hit={:.0%}, ttl={:g}s)".format(
                    cache.hit_ratio, cache.ttl)
            lines.append("  [{}] {} x{} ({}, capacity={}){}{}".format(
                depth, tier.name, tier.replicas, tier.service,
                tier.capacity, flush, extras))
            if depth < len(self.boundaries):
                boundary = self.boundaries[depth]
                detail = boundary.mode
                if boundary.hierarchy:
                    detail += " hierarchy"
                if boundary.mode == "sharded":
                    shard = boundary.effective_shard
                    detail += "(vnodes={}, skew={:g})".format(
                        shard.virtual_nodes, shard.skew)
                if boundary.link is not None:
                    detail += " link({:.0f} ms, loss {:.2%})".format(
                        boundary.link.latency * 1000, boundary.link.loss)
                if boundary.bundle:
                    detail += " bundle=" + boundary.bundle
                if boundary.resilience:
                    detail += " resilience=" + boundary.resilience
                if boundary.leveling:
                    detail += " leveling(cap={})".format(
                        boundary.leveling.capacity)
                if boundary.probe:
                    detail += " probe(interval={}, d={})".format(
                        boundary.probe.interval, boundary.probe.d)
                if boundary.affinity:
                    detail += " affinity(fallback={})".format(
                        boundary.affinity.fallback)
                lines.append("       | " + detail)
        return "\n".join(lines)

    # -- built-in shapes ----------------------------------------------------
    @classmethod
    def classic(cls, profile: Optional[ScaleProfile] = None,
                tomcat_millibottlenecks: bool = True,
                apache_millibottlenecks: bool = False,
                use_balancer: bool = True,
                bundle: Optional[str] = None) -> "TopologySpec":
        """The paper's Fig. 14 topology as data.

        Building this spec produces a system event-for-event identical
        to the historical hand-coded ``build_system`` — the golden
        traces prove it.
        """
        profile = profile or ScaleProfile()
        tomcat_flush = (FlushSpec(
            interval=profile.flush_interval,
            threshold_bytes=profile.flush_threshold_bytes,
            stagger=profile.tomcat_flush_stagger)
            if tomcat_millibottlenecks else None)
        apache_flush = (FlushSpec(
            interval=profile.flush_interval,
            threshold_bytes=profile.flush_threshold_bytes,
            stagger=profile.tomcat_flush_stagger,
            phase=0.5)
            if apache_millibottlenecks else None)
        return cls(
            name="classic",
            tiers=(
                TierSpec(name="apache", service="frontend",
                         replicas=profile.apache_count,
                         capacity=profile.apache_max_clients,
                         cores=profile.apache_cores,
                         backlog=profile.apache_backlog,
                         disk_bandwidth=profile.apache_disk_bandwidth,
                         flush=apache_flush),
                TierSpec(name="tomcat", service="worker",
                         replicas=profile.tomcat_count,
                         capacity=profile.tomcat_max_threads,
                         cores=profile.tomcat_cores,
                         disk_bandwidth=profile.tomcat_disk_bandwidth,
                         flush=tomcat_flush),
                TierSpec(name="mysql", service="pooled",
                         replicas=1,
                         capacity=profile.mysql_connections,
                         cores=profile.mysql_cores),
            ),
            boundaries=(
                BoundarySpec(mode="balanced" if use_balancer else "direct",
                             bundle=bundle if use_balancer else None),
                BoundarySpec(mode="inline"),
            ),
            workload=WorkloadSpec(clients=profile.clients,
                                  think_time=profile.think_time,
                                  ramp_up=profile.ramp_up),
        )

    @classmethod
    def replicated_db(cls) -> "TopologySpec":
        """Three tiers with a *replicated* database behind its own
        balancer — the shape the fixed wiring could never express.

        Each Tomcat runs a ``current_load`` balancer over the MySQL
        replicas, so a millibottleneck on one replica exercises the
        same policy pathologies one tier deeper.
        """
        return cls(
            name="replicated_db",
            tiers=(
                TierSpec(name="apache", service="frontend", replicas=2,
                         capacity=8, backlog=10),
                TierSpec(name="tomcat", service="worker", replicas=2,
                         capacity=8, flush=FlushSpec(threshold_bytes=64e3)),
                TierSpec(name="mysql", service="pooled", replicas=2,
                         capacity=12),
            ),
            boundaries=(
                BoundarySpec(mode="balanced", bundle="current_load_modified"),
                BoundarySpec(mode="balanced", bundle="current_load"),
            ),
            workload=WorkloadSpec(clients=160),
        )

    @classmethod
    def four_tier(cls) -> "TopologySpec":
        """A 4-tier chain with a *mid-tier* millibottleneck.

        Web -> service -> backend -> DB, balanced at every non-inline
        boundary; the flush machinery sits on the third tier, so the
        stall propagates through two cascaded balancing layers before
        it reaches the clients.
        """
        return cls(
            name="four_tier",
            tiers=(
                TierSpec(name="web", service="frontend", replicas=2,
                         capacity=8, backlog=10),
                TierSpec(name="service", service="worker", replicas=2,
                         capacity=8),
                TierSpec(name="backend", service="worker", replicas=2,
                         capacity=8, cpu_source="tomcat_cpu",
                         flush=FlushSpec(threshold_bytes=64e3)),
                TierSpec(name="db", service="pooled", replicas=1,
                         capacity=16),
            ),
            boundaries=(
                BoundarySpec(mode="balanced", bundle="current_load_modified"),
                BoundarySpec(mode="balanced", bundle="current_load"),
                BoundarySpec(mode="inline"),
            ),
            workload=WorkloadSpec(clients=160),
        )


    @classmethod
    def geo(cls, hierarchy: bool = True,
            disk_bandwidth: Optional[float] = None,
            clients: int = 160) -> "TopologySpec":
        """Two zones × the classic chain, plus a cache and a 2-shard DB.

        ``east`` and ``west`` each host one replica of every tier;
        the east-west WAN pays 40 ms with jitter and a little loss.
        ``hierarchy=True`` grows zone-local balancers under a global
        zone router at both balanced boundaries; ``False`` is the
        flat single-global-balancer control cell.  ``disk_bandwidth``
        starves the worker tier's disks (the millibottleneck knob the
        headline zone-outage experiment turns on the surviving zone).
        """
        wan = LinkProfileSpec(latency=0.04, jitter=0.005, loss=0.002,
                              rto=0.2)
        return cls(
            name="geo" if hierarchy else "geo_flat",
            zones=(ZoneSpec(name="east"), ZoneSpec(name="west")),
            zone_links=(ZoneLinkSpec(zones=("east", "west"), link=wan),),
            tiers=(
                TierSpec(name="apache", service="frontend", replicas=2,
                         capacity=8, backlog=10,
                         placement=("east", "west")),
                TierSpec(name="tomcat", service="worker", replicas=2,
                         capacity=8, disk_bandwidth=disk_bandwidth,
                         flush=FlushSpec(threshold_bytes=64e3),
                         placement=("east", "west")),
                TierSpec(name="cache", service="cache", replicas=2,
                         capacity=8, placement=("east", "west"),
                         cache=CacheSpec(hit_ratio=0.8, ttl=60.0,
                                         churn=30.0, warmup=5.0)),
                TierSpec(name="mysql", service="pooled", replicas=2,
                         capacity=12, placement=("east", "west")),
            ),
            boundaries=(
                BoundarySpec(mode="balanced",
                             bundle="current_load_modified",
                             hierarchy=hierarchy),
                BoundarySpec(mode="balanced", bundle="current_load",
                             hierarchy=hierarchy),
                BoundarySpec(mode="sharded",
                             shard=ShardSpec(virtual_nodes=64,
                                             key_space=1024, skew=0.9)),
            ),
            workload=WorkloadSpec(clients=clients),
        )


#: Built-in topologies addressable by name from the CLI.
BUILTIN_TOPOLOGIES = {
    "classic": TopologySpec.classic,
    "replicated_db": TopologySpec.replicated_db,
    "four_tier": TopologySpec.four_tier,
    "geo": TopologySpec.geo,
    "geo_flat": lambda: TopologySpec.geo(hierarchy=False),
}


def get_topology(key: str) -> TopologySpec:
    """Look up a built-in topology by name."""
    try:
        return BUILTIN_TOPOLOGIES[key]()
    except KeyError:
        raise ConfigurationError(
            "unknown topology {!r} (one of {})".format(
                key, ", ".join(sorted(BUILTIN_TOPOLOGIES))))
