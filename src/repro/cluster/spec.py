"""Declarative topology specifications.

The paper is about *N-tier* systems; this module makes the "N" data
instead of code.  A :class:`TopologySpec` names an ordered chain of
tiers (:class:`TierSpec`: service model, replica count, concurrency
limit, host profile, optional millibottleneck profile) and, between
each adjacent pair, a :class:`BoundarySpec` describing how requests
cross the boundary — through a per-upstream-server load balancer
(balancer-per-boundary, the mod_jk arrangement), a policy-free
round-robin direct dispatcher, or an inline call on the caller's
thread (the classic Tomcat→MySQL wiring).

Specs are pure frozen data: loadable from a Python dict or JSON file
(:meth:`TopologySpec.from_dict`, :meth:`TopologySpec.from_json`),
picklable across process pools, and validated eagerly with
:class:`~repro.errors.ConfigurationError`\\ s that name the offending
field.  :func:`repro.cluster.topology.build_from_spec` turns a spec
into a wired :class:`~repro.cluster.topology.NTierSystem`; the classic
paper topology is :meth:`TopologySpec.classic` and builds an
event-for-event identical system to the historical hand-coded one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.cluster.config import ScaleProfile
from repro.controlplane.admission import AdmissionConfig
from repro.controlplane.autoscaler import AutoscalerConfig
from repro.controlplane.bulkhead import BulkheadConfig
from repro.controlplane.leveling import LevelingConfig
from repro.core.policies import PrequalProbeConfig, StickyConfig
from repro.errors import ConfigurationError
from repro.osmodel.profiles import MillibottleneckProfile

#: The service models a tier can be configured with (see
#: :mod:`repro.tiers.base`).
SERVICE_MODELS = ("frontend", "worker", "pooled")

#: How requests cross a tier boundary.
BOUNDARY_MODES = ("balanced", "direct", "inline")

#: Default CPU-demand attribute of :class:`~repro.workload.interactions.
#: Interaction` per service model.
DEFAULT_CPU_SOURCE = {
    "frontend": "apache_cpu",
    "worker": "tomcat_cpu",
    "pooled": "mysql_cpu",
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _from_mapping(cls, data, what: str):
    """Build a spec dataclass from a dict, rejecting unknown keys."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            "{} must be a mapping, got {!r}".format(what, data))
    allowed = set(cls.__dataclass_fields__)
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigurationError(
            "unknown {} field(s): {} (allowed: {})".format(
                what, ", ".join(unknown), ", ".join(sorted(allowed))))
    return cls(**data)


@dataclass(frozen=True)
class FlushSpec:
    """Millibottleneck machinery of one tier's hosts.

    ``profile(index)`` staggers first-flush phases across replicas
    (``phase + stagger * index``), matching the paper's zoom-ins where
    one server stalls at a time.
    """

    interval: float = 4.0
    threshold_bytes: float = 256e3
    stagger: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        _require(self.interval > 0, "flush interval must be positive")
        _require(self.threshold_bytes > 0,
                 "flush threshold_bytes must be positive")
        _require(self.stagger >= 0, "flush stagger must be >= 0")
        _require(self.phase >= 0, "flush phase must be >= 0")

    def profile(self, index: int) -> MillibottleneckProfile:
        """Flush profile of the ``index``-th replica of the tier."""
        return MillibottleneckProfile(
            flush_interval=self.interval,
            dirty_threshold_bytes=self.threshold_bytes,
            phase=self.stagger * index + self.phase,
        )


@dataclass(frozen=True)
class TierSpec:
    """One tier of the chain.

    ``capacity`` is the tier's concurrency limit in its service model's
    native unit: ``MaxClients`` worker slots for a frontend,
    ``maxThreads`` for a worker, pooled connections for a pooled tier.
    ``flush=None`` disables millibottlenecks on the tier's hosts;
    ``disk_bandwidth=None`` keeps the host default.  ``cpu_source``
    names the :class:`~repro.workload.interactions.Interaction`
    attribute the tier burns per request (defaulted per service model),
    so a 4-tier chain can split the app-tier demand any way it likes.
    """

    name: str
    service: str
    replicas: int = 1
    capacity: int = 8
    cores: int = 4
    backlog: int = 32
    disk_bandwidth: Optional[float] = None
    flush: Optional[FlushSpec] = None
    cpu_source: Optional[str] = None
    #: Token-bucket admission control (frontend tiers only).
    admission: Optional[AdmissionConfig] = None
    #: Read/write capacity partition (frontend or pooled tiers).
    bulkhead: Optional[BulkheadConfig] = None
    #: Reactive replica scaling (any tier but the frontend — clients
    #: bind their sockets when the population is created).
    autoscaler: Optional[AutoscalerConfig] = None
    #: HAProxy-style static capacity weights, one per replica; read by
    #: upstream ``weighted_least_conn`` balancers (members scaled in
    #: later default to weight 1.0).
    weights: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.weights is not None:
            object.__setattr__(self, "weights", tuple(self.weights))
        _require(bool(self.name) and isinstance(self.name, str),
                 "tier name must be a non-empty string")
        _require(self.service in SERVICE_MODELS,
                 "tier {!r}: unknown service model {!r} (one of {})".format(
                     self.name, self.service, ", ".join(SERVICE_MODELS)))
        _require(self.replicas >= 1,
                 "tier {!r}: replicas must be >= 1".format(self.name))
        _require(self.capacity >= 1,
                 "tier {!r}: capacity must be >= 1".format(self.name))
        _require(self.cores >= 1,
                 "tier {!r}: cores must be >= 1".format(self.name))
        _require(self.backlog >= 1,
                 "tier {!r}: backlog must be >= 1".format(self.name))
        if self.disk_bandwidth is not None:
            _require(self.disk_bandwidth > 0,
                     "tier {!r}: disk_bandwidth must be positive".format(
                         self.name))
        if self.admission is not None:
            _require(self.service == "frontend",
                     "tier {!r}: admission control belongs on the "
                     "frontend tier (the client-facing gate)".format(
                         self.name))
        if self.bulkhead is not None:
            _require(self.service in ("frontend", "pooled"),
                     "tier {!r}: bulkheads partition frontend worker "
                     "slots or pooled connections, not {!r} tiers".format(
                         self.name, self.service))
        if self.weights is not None:
            _require(len(self.weights) == self.replicas,
                     "tier {!r}: need one weight per replica "
                     "({} != {})".format(self.name, len(self.weights),
                                         self.replicas))
            _require(all(w > 0 for w in self.weights),
                     "tier {!r}: weights must be positive".format(self.name))
        if self.autoscaler is not None:
            _require(self.service != "frontend",
                     "tier {!r}: frontend tiers cannot autoscale — "
                     "clients bind their sockets at startup".format(
                         self.name))
            _require(self.autoscaler.min_replicas <= self.replicas
                     <= self.autoscaler.max_replicas,
                     "tier {!r}: replicas={} outside the autoscaler "
                     "range [{}, {}]".format(
                         self.name, self.replicas,
                         self.autoscaler.min_replicas,
                         self.autoscaler.max_replicas))

    @property
    def effective_cpu_source(self) -> str:
        return self.cpu_source or DEFAULT_CPU_SOURCE[self.service]

    @classmethod
    def from_dict(cls, data: dict) -> "TierSpec":
        data = dict(data) if isinstance(data, dict) else data
        if isinstance(data, dict):
            if isinstance(data.get("flush"), dict):
                data["flush"] = _from_mapping(FlushSpec, data["flush"],
                                              "flush")
            for key, config_cls in (("admission", AdmissionConfig),
                                    ("bulkhead", BulkheadConfig),
                                    ("autoscaler", AutoscalerConfig)):
                if isinstance(data.get(key), dict):
                    data[key] = _from_mapping(config_cls, data[key], key)
            if isinstance(data.get("weights"), list):
                data["weights"] = tuple(data["weights"])
        return _from_mapping(cls, data, "tier")


@dataclass(frozen=True)
class BoundarySpec:
    """How requests cross one tier boundary.

    * ``balanced`` — every upstream server runs its own
      :class:`~repro.core.balancer.LoadBalancer` over the downstream
      replicas; ``bundle`` names the Table-I policy/mechanism pair
      (it may be left ``None`` when the experiment supplies one).
    * ``direct`` — a policy-free round-robin
      :class:`~repro.core.balancer.DirectDispatcher` per upstream
      server (the paper's §III-B no-balancer configuration).
    * ``inline`` — the upstream worker thread calls the (single)
      downstream pooled server directly, holding one pooled connection
      for the whole request (the classic Tomcat→MySQL wiring).

    ``pool_size`` overrides the per-member AJP endpoint pool for this
    boundary's balancers; ``resilience`` names a remedy bundle from
    :data:`repro.resilience.RESILIENCE_BUNDLES` to wire around them.
    """

    mode: str = "balanced"
    bundle: Optional[str] = None
    pool_size: Optional[int] = None
    resilience: Optional[str] = None
    #: Bounded load-leveling FIFO in front of this boundary's
    #: dispatchers (frontends integrate it natively; deeper boundaries
    #: get a request/reply wrapper).  Not available on inline
    #: boundaries — there is no dispatcher to level.
    leveling: Optional[LevelingConfig] = None
    #: Probe-pool tuning for probing policies (``prequal``); applied
    #: via ``Policy.configure``, which rejects it for any policy that
    #: does not probe.
    probe: Optional[PrequalProbeConfig] = None
    #: Session-affinity tuning for ``sticky`` balancers; rejected by
    #: every other policy.
    affinity: Optional[StickyConfig] = None

    def __post_init__(self) -> None:
        _require(self.mode in BOUNDARY_MODES,
                 "unknown boundary mode {!r} (one of {})".format(
                     self.mode, ", ".join(BOUNDARY_MODES)))
        if self.pool_size is not None:
            _require(self.pool_size >= 1, "boundary pool_size must be >= 1")
        if self.bundle is not None:
            from repro.core.remedies import BUNDLES

            _require(self.bundle in BUNDLES,
                     "unknown policy bundle {!r} (one of {})".format(
                         self.bundle, ", ".join(sorted(BUNDLES))))
        if self.resilience is not None:
            from repro.resilience import RESILIENCE_BUNDLES

            _require(self.resilience in RESILIENCE_BUNDLES,
                     "unknown resilience bundle {!r} (one of {})".format(
                         self.resilience,
                         ", ".join(sorted(RESILIENCE_BUNDLES))))
        if self.mode != "balanced":
            _require(self.bundle is None,
                     "boundary mode {!r} takes no policy bundle".format(
                         self.mode))
            _require(self.resilience is None,
                     "boundary mode {!r} takes no resilience bundle".format(
                         self.mode))
            _require(self.probe is None,
                     "boundary mode {!r} takes no probe tuning — only "
                     "balanced boundaries run probing policies".format(
                         self.mode))
            _require(self.affinity is None,
                     "boundary mode {!r} takes no affinity tuning — only "
                     "balanced boundaries run sticky policies".format(
                         self.mode))
        if self.mode == "inline":
            _require(self.leveling is None,
                     "inline boundaries take no leveling queue — there "
                     "is no dispatcher to level")

    @classmethod
    def from_dict(cls, data: dict) -> "BoundarySpec":
        data = dict(data) if isinstance(data, dict) else data
        if isinstance(data, dict):
            for key, config_cls in (("leveling", LevelingConfig),
                                    ("probe", PrequalProbeConfig),
                                    ("affinity", StickyConfig)):
                if isinstance(data.get(key), dict):
                    data[key] = _from_mapping(config_cls, data[key], key)
        return _from_mapping(cls, data, "boundary")


@dataclass(frozen=True)
class WorkloadSpec:
    """Closed-loop client population to drive a topology with."""

    clients: int = 200
    think_time: float = 1.0
    ramp_up: float = 1.0

    def __post_init__(self) -> None:
        _require(self.clients >= 1, "workload clients must be >= 1")
        _require(self.think_time > 0, "workload think_time must be positive")
        _require(self.ramp_up >= 0, "workload ramp_up must be >= 0")

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return _from_mapping(cls, data, "workload")


@dataclass(frozen=True)
class TopologySpec:
    """An ordered tier chain plus one boundary between each pair."""

    name: str
    tiers: tuple[TierSpec, ...]
    boundaries: tuple[BoundarySpec, ...]
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built specs; store tuples.
        object.__setattr__(self, "tiers", tuple(self.tiers))
        object.__setattr__(self, "boundaries", tuple(self.boundaries))
        _require(bool(self.name), "topology name must be non-empty")
        _require(len(self.tiers) >= 2,
                 "topology {!r}: need at least two tiers, got {}".format(
                     self.name, len(self.tiers)))
        names = [tier.name for tier in self.tiers]
        _require(len(set(names)) == len(names),
                 "topology {!r}: duplicate tier names in {}".format(
                     self.name, names))
        _require(len(self.boundaries) == len(self.tiers) - 1,
                 "topology {!r}: {} tiers need {} boundaries, got {}".format(
                     self.name, len(self.tiers), len(self.tiers) - 1,
                     len(self.boundaries)))
        _require(self.tiers[0].service == "frontend",
                 "topology {!r}: first tier must use the 'frontend' "
                 "service model (clients need accept sockets)".format(
                     self.name))
        for tier in self.tiers[1:]:
            _require(tier.service != "frontend",
                     "topology {!r}: tier {!r} cannot be a frontend — "
                     "only the first tier faces clients".format(
                         self.name, tier.name))
        for tier in self.tiers[:-1]:
            _require(tier.service != "pooled",
                     "topology {!r}: pooled tier {!r} must be last — "
                     "it has no downstream".format(self.name, tier.name))
        for depth, boundary in enumerate(self.boundaries):
            upstream, downstream = self.tiers[depth], self.tiers[depth + 1]
            where = "boundary {} ({} -> {})".format(
                depth, upstream.name, downstream.name)
            if boundary.mode == "inline":
                _require(upstream.service == "worker",
                         "{}: inline needs a worker upstream".format(where))
                _require(downstream.service == "pooled",
                         "{}: inline needs a pooled downstream".format(where))
                _require(downstream.replicas == 1,
                         "{}: inline cannot fan out over {} replicas — "
                         "use a balanced or direct boundary".format(
                             where, downstream.replicas))
                _require(downstream.autoscaler is None,
                         "{}: an inline downstream cannot autoscale — "
                         "inline callers bind to the single replica".format(
                             where))

    # -- (de)serialisation -------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                "topology spec must be a mapping, got {!r}".format(data))
        unknown = sorted(
            set(data) - {"name", "tiers", "boundaries", "workload"})
        if unknown:
            raise ConfigurationError(
                "unknown topology field(s): " + ", ".join(unknown))
        tiers = data.get("tiers") or ()
        if not isinstance(tiers, (list, tuple)):
            raise ConfigurationError("topology tiers must be a list")
        boundaries = data.get("boundaries")
        if boundaries is None:
            boundaries = [{} for _ in range(max(0, len(tiers) - 1))]
        if not isinstance(boundaries, (list, tuple)):
            raise ConfigurationError("topology boundaries must be a list")
        workload = data.get("workload")
        return cls(
            name=data.get("name", ""),
            tiers=tuple(TierSpec.from_dict(tier) for tier in tiers),
            boundaries=tuple(BoundarySpec.from_dict(boundary)
                             for boundary in boundaries),
            workload=(WorkloadSpec.from_dict(workload)
                      if workload is not None else WorkloadSpec()),
        )

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                "topology spec is not valid JSON: {}".format(error))
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "TopologySpec":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> dict:
        data = asdict(self)
        for tier in data["tiers"]:
            for key in ("flush", "disk_bandwidth", "cpu_source",
                        "admission", "bulkhead", "autoscaler", "weights"):
                if tier[key] is None:
                    del tier[key]
            if "weights" in tier:
                tier["weights"] = list(tier["weights"])
        for boundary in data["boundaries"]:
            for key in ("bundle", "pool_size", "resilience", "leveling",
                        "probe", "affinity"):
                if boundary[key] is None:
                    del boundary[key]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # -- derived -----------------------------------------------------------
    def tier_named(self, name: str) -> TierSpec:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise ConfigurationError("no tier named " + repr(name))

    def scale_profile(self) -> ScaleProfile:
        """A :class:`ScaleProfile` carrying this spec's workload knobs.

        Only the workload fields matter when building from a spec (the
        tier knobs all come from the spec itself); the counts are
        mirrored so reporting code sees a faithful profile.
        """
        return ScaleProfile(
            name=self.name,
            apache_count=self.tiers[0].replicas,
            tomcat_count=self.tiers[1].replicas,
            clients=self.workload.clients,
            think_time=self.workload.think_time,
            ramp_up=self.workload.ramp_up,
        )

    def describe(self) -> str:
        """A compact human-readable rendering for ``topology show``."""
        lines = ["topology {!r}: {} tiers, {} clients".format(
            self.name, len(self.tiers), self.workload.clients)]
        for depth, tier in enumerate(self.tiers):
            flush = (" flush(interval={}, threshold={:.0f})".format(
                tier.flush.interval, tier.flush.threshold_bytes)
                if tier.flush else "")
            extras = ""
            if tier.admission is not None:
                extras += " admission({}/s)".format(
                    tier.admission.refill_rate)
            if tier.bulkhead is not None:
                extras += " bulkhead(r={}, w={})".format(
                    tier.bulkhead.read_slots, tier.bulkhead.write_slots)
            if tier.autoscaler is not None:
                extras += " autoscale[{}..{}]".format(
                    tier.autoscaler.min_replicas,
                    tier.autoscaler.max_replicas)
            if tier.weights is not None:
                extras += " weights({})".format(
                    ", ".join("{:g}".format(w) for w in tier.weights))
            lines.append("  [{}] {} x{} ({}, capacity={}){}{}".format(
                depth, tier.name, tier.replicas, tier.service,
                tier.capacity, flush, extras))
            if depth < len(self.boundaries):
                boundary = self.boundaries[depth]
                detail = boundary.mode
                if boundary.bundle:
                    detail += " bundle=" + boundary.bundle
                if boundary.resilience:
                    detail += " resilience=" + boundary.resilience
                if boundary.leveling:
                    detail += " leveling(cap={})".format(
                        boundary.leveling.capacity)
                if boundary.probe:
                    detail += " probe(interval={}, d={})".format(
                        boundary.probe.interval, boundary.probe.d)
                if boundary.affinity:
                    detail += " affinity(fallback={})".format(
                        boundary.affinity.fallback)
                lines.append("       | " + detail)
        return "\n".join(lines)

    # -- built-in shapes ----------------------------------------------------
    @classmethod
    def classic(cls, profile: Optional[ScaleProfile] = None,
                tomcat_millibottlenecks: bool = True,
                apache_millibottlenecks: bool = False,
                use_balancer: bool = True,
                bundle: Optional[str] = None) -> "TopologySpec":
        """The paper's Fig. 14 topology as data.

        Building this spec produces a system event-for-event identical
        to the historical hand-coded ``build_system`` — the golden
        traces prove it.
        """
        profile = profile or ScaleProfile()
        tomcat_flush = (FlushSpec(
            interval=profile.flush_interval,
            threshold_bytes=profile.flush_threshold_bytes,
            stagger=profile.tomcat_flush_stagger)
            if tomcat_millibottlenecks else None)
        apache_flush = (FlushSpec(
            interval=profile.flush_interval,
            threshold_bytes=profile.flush_threshold_bytes,
            stagger=profile.tomcat_flush_stagger,
            phase=0.5)
            if apache_millibottlenecks else None)
        return cls(
            name="classic",
            tiers=(
                TierSpec(name="apache", service="frontend",
                         replicas=profile.apache_count,
                         capacity=profile.apache_max_clients,
                         cores=profile.apache_cores,
                         backlog=profile.apache_backlog,
                         disk_bandwidth=profile.apache_disk_bandwidth,
                         flush=apache_flush),
                TierSpec(name="tomcat", service="worker",
                         replicas=profile.tomcat_count,
                         capacity=profile.tomcat_max_threads,
                         cores=profile.tomcat_cores,
                         disk_bandwidth=profile.tomcat_disk_bandwidth,
                         flush=tomcat_flush),
                TierSpec(name="mysql", service="pooled",
                         replicas=1,
                         capacity=profile.mysql_connections,
                         cores=profile.mysql_cores),
            ),
            boundaries=(
                BoundarySpec(mode="balanced" if use_balancer else "direct",
                             bundle=bundle if use_balancer else None),
                BoundarySpec(mode="inline"),
            ),
            workload=WorkloadSpec(clients=profile.clients,
                                  think_time=profile.think_time,
                                  ramp_up=profile.ramp_up),
        )

    @classmethod
    def replicated_db(cls) -> "TopologySpec":
        """Three tiers with a *replicated* database behind its own
        balancer — the shape the fixed wiring could never express.

        Each Tomcat runs a ``current_load`` balancer over the MySQL
        replicas, so a millibottleneck on one replica exercises the
        same policy pathologies one tier deeper.
        """
        return cls(
            name="replicated_db",
            tiers=(
                TierSpec(name="apache", service="frontend", replicas=2,
                         capacity=8, backlog=10),
                TierSpec(name="tomcat", service="worker", replicas=2,
                         capacity=8, flush=FlushSpec(threshold_bytes=64e3)),
                TierSpec(name="mysql", service="pooled", replicas=2,
                         capacity=12),
            ),
            boundaries=(
                BoundarySpec(mode="balanced", bundle="current_load_modified"),
                BoundarySpec(mode="balanced", bundle="current_load"),
            ),
            workload=WorkloadSpec(clients=160),
        )

    @classmethod
    def four_tier(cls) -> "TopologySpec":
        """A 4-tier chain with a *mid-tier* millibottleneck.

        Web -> service -> backend -> DB, balanced at every non-inline
        boundary; the flush machinery sits on the third tier, so the
        stall propagates through two cascaded balancing layers before
        it reaches the clients.
        """
        return cls(
            name="four_tier",
            tiers=(
                TierSpec(name="web", service="frontend", replicas=2,
                         capacity=8, backlog=10),
                TierSpec(name="service", service="worker", replicas=2,
                         capacity=8),
                TierSpec(name="backend", service="worker", replicas=2,
                         capacity=8, cpu_source="tomcat_cpu",
                         flush=FlushSpec(threshold_bytes=64e3)),
                TierSpec(name="db", service="pooled", replicas=1,
                         capacity=16),
            ),
            boundaries=(
                BoundarySpec(mode="balanced", bundle="current_load_modified"),
                BoundarySpec(mode="balanced", bundle="current_load"),
                BoundarySpec(mode="inline"),
            ),
            workload=WorkloadSpec(clients=160),
        )


#: Built-in topologies addressable by name from the CLI.
BUILTIN_TOPOLOGIES = {
    "classic": TopologySpec.classic,
    "replicated_db": TopologySpec.replicated_db,
    "four_tier": TopologySpec.four_tier,
}


def get_topology(key: str) -> TopologySpec:
    """Look up a built-in topology by name."""
    try:
        return BUILTIN_TOPOLOGIES[key]()
    except KeyError:
        raise ConfigurationError(
            "unknown topology {!r} (one of {})".format(
                key, ", ".join(sorted(BUILTIN_TOPOLOGIES))))
