"""Experiment execution: build, run, measure, summarise.

:class:`ExperimentRunner` owns the environment, the seeded random
generator (the single source of randomness — identical seeds give
identical event traces), the 50 ms queue-length samplers, and the
client population.  It returns an :class:`ExperimentResult`, which
carries both summary statistics and everything the figure-level
analyses need (queue timelines, CPU trackers, dispatch and lb_value
traces, ground-truth millibottleneck records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.config import ScaleProfile
from repro.cluster.faults import FaultInjector, FaultSpec
from repro.cluster.spec import TopologySpec
from repro.cluster.topology import NTierSystem, build_from_spec, build_system
from repro.controlplane import ControlPlaneConfig
from repro.controlplane.install import install_controlplane
from repro.core.balancer import BalancerConfig
from repro.core.remedies import RemedyBundle, get_bundle
from repro.core.states import StateConfig
from repro.errors import ConfigurationError
from repro.metrics.recorder import ResponseTimeRecorder
from repro.metrics.stats import ResponseTimeStats
from repro.metrics.timeseries import TimeSeries
from repro.metrics.windows import PAPER_WINDOW
from repro.netmodel.tcp import RetransmissionPolicy
from repro.resilience import ResilienceConfig
from repro.sim.core import Environment
from repro.sim.monitor import MonitorHub, Sampler
from repro.tracing.spans import SpanTracer
from repro.workload.generator import ClientPopulation
from repro.workload.mix import WorkloadMix, read_write_mix

#: Stream constant separating the fault injector's RNG stream from the
#: run's main generator: both derive from ``config.seed`` but never
#: share draws, so adding faults cannot perturb workload randomness
#: (and the fault timeline is identical under workers=1 and workers=N).
FAULT_RNG_STREAM = 0xFA


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that defines one run.

    ``bundle_key`` picks a Table-I policy/mechanism combination; the
    no-balancer configuration (§III-B) is selected with
    ``use_balancer=False`` and a single-node profile.
    """

    bundle_key: str = "original_total_request"
    profile: ScaleProfile = field(default_factory=ScaleProfile)
    duration: float = 30.0
    seed: int = 42
    tomcat_millibottlenecks: bool = True
    apache_millibottlenecks: bool = False
    use_balancer: bool = True
    sample_window: float = PAPER_WINDOW
    trace_lb_values: bool = True
    trace_dispatches: bool = True
    sample_dirty_pages: bool = False
    #: Declarative fault specs injected against the built system (see
    #: :mod:`repro.cluster.faults`); empty means a fault-free run.
    faults: tuple["FaultSpec", ...] = ()
    #: Remedy layer configuration; ``None`` is the seed system.
    resilience: Optional[ResilienceConfig] = None
    #: Control-plane configuration (autoscaling, admission control,
    #: load leveling, bulkheads); ``None`` — and the all-``None``
    #: config — is the seed system, event for event.
    controlplane: Optional["ControlPlaneConfig"] = None
    #: Record a per-request span tree (see :mod:`repro.tracing`).
    #: Off by default: tracing is pure observation (the event schedule
    #: is identical either way) but retains every span in memory.
    trace_requests: bool = False
    #: Drain all samplers from one :class:`~repro.sim.monitor.MonitorHub`
    #: tick instead of one process per sampler.  Off by default — the
    #: per-sampler timeout events are part of the pinned golden event
    #: trace — but essential at the large-N axis, where per-replica
    #: samplers would otherwise dominate the schedule.
    batched_sampling: bool = False
    #: Declarative topology to build instead of the classic 3-tier
    #: shape.  Balanced boundaries without a bundle of their own fall
    #: back to ``bundle_key``; ``use_balancer`` and the
    #: millibottleneck flags are ignored (the spec carries all that).
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.sample_window <= 0:
            raise ConfigurationError("sample_window must be positive")

    def bundle(self) -> RemedyBundle:
        return get_bundle(self.bundle_key)


@dataclass
class ExperimentResult:
    """Outcome of one run, with the paper's analysis entry points."""

    config: ExperimentConfig
    system: NTierSystem
    population: ClientPopulation
    duration: float
    #: Queue-length (in_server) timeline per server name, 50 ms samples.
    queue_series: dict[str, TimeSeries]
    #: Dirty-page timeline per host name (if sampled).
    dirty_series: dict[str, TimeSeries]
    #: Ground-truth fault records for the run (``None`` when faultless).
    fault_injector: Optional[FaultInjector] = None
    #: Per-request span tracer (``None`` unless ``trace_requests``).
    tracer: Optional["SpanTracer"] = None

    # -- response times --------------------------------------------------
    @property
    def recorder(self) -> ResponseTimeRecorder:
        return self.population.recorder

    def stats(self) -> ResponseTimeStats:
        """Table-I style summary statistics."""
        return self.recorder.stats()

    def table1_row(self) -> dict[str, float]:
        """One row of Table I for this run."""
        row = {"policy": self.config.bundle().description}
        row.update(self.stats().row())
        return row

    # -- fine-grained views -------------------------------------------------
    def cpu_utilization(self, server_name: str,
                        window: Optional[float] = None) -> TimeSeries:
        """Exact fine-grained CPU utilisation of one server's host."""
        server = self.system.server_named(server_name)
        return server.host.cpu.utilization_series(
            window or self.config.sample_window, self.duration)

    def iowait(self, server_name: str,
               window: Optional[float] = None) -> TimeSeries:
        """Exact fine-grained iowait of one server's host (Fig. 2(d))."""
        server = self.system.server_named(server_name)
        return server.host.cpu.iowait_series(
            window or self.config.sample_window, self.duration)

    def vlrt_windows(self) -> TimeSeries:
        """VLRT count per 50 ms window (Figs. 2(a)/6(a)/7(a))."""
        return self.recorder.vlrt_windows(self.config.sample_window,
                                          until=self.duration)

    def point_in_time_rt(self) -> TimeSeries:
        """Point-in-time response time (Figs. 1/3)."""
        return self.recorder.point_in_time(self.config.sample_window)

    def average_cpu(self) -> dict[str, float]:
        """Whole-run average CPU per server (Fig. 5)."""
        return {
            server.name: server.host.cpu.utilization(0.0, self.duration)
            for server in self.system.servers
        }

    def dropped_packets(self) -> int:
        """Client packets lost to web-tier accept-queue overflow."""
        return sum(frontend.socket.dropped
                   for frontend in self.system.frontends)

    # -- per-request traces -------------------------------------------------
    def traces(self) -> list:
        """All request traces, in begin order (requires tracing)."""
        if self.tracer is None:
            raise ConfigurationError(
                "run with trace_requests=True to record request traces")
        return list(self.tracer.traces.values())

    def slowest_traces(self, count: int = 5) -> list:
        """The ``count`` slowest completed requests' traces."""
        completed = [trace for trace in self.traces() if trace.completed]
        completed.sort(key=lambda trace: -trace.duration)
        return completed[:count]

    def explain_vlrt(self):
        """Trace-level VLRT explanation (dominant causes + clusters)."""
        from repro.tracing.explain import explain_vlrt

        return explain_vlrt(self.traces())

    # -- chaos metrics -----------------------------------------------------
    def error_responses(self) -> int:
        """Fast 503s returned because every backend was in Error."""
        return sum(frontend.error_responses
                   for frontend in self.system.frontends)

    def hedges_issued(self) -> int:
        return sum(hedger.hedges_issued for hedger in self.system.hedgers)

    def sheds(self) -> int:
        """Requests answered fast by a control-plane gate (admission,
        bulkhead or leveling overflow) instead of being served."""
        return sum(frontend.shed_responses
                   for frontend in self.system.frontends)

    def availability(self) -> float:
        """Successful client-visible outcomes / all client-visible outcomes.

        A 503 counts against availability even though the client got a
        (fast) response; so do control-plane sheds and abandoned
        requests — admission control trades availability for tail
        latency, and the report must show both sides of that trade.
        """
        total = self.stats().count + self.population.requests_abandoned
        if total == 0:
            return 1.0
        return (self.stats().count - self.error_responses()
                - self.sheds()) / total

    def retry_amplification(self) -> float:
        """System-side attempts per logical client request.

        Counts client attempts (application retries included) plus
        hedge copies; 1.0 means no remedy duplicated any work.
        """
        logical = (self.population.requests_completed
                   + self.population.requests_abandoned)
        if logical == 0:
            return 1.0
        return (self.population.attempts_issued
                + self.hedges_issued()) / logical

    def probe_messages(self) -> int:
        """Probe messages sent by probing policies (Prequal's pool).

        The rematch report divides this by the run length to show the
        measurement overhead a probing policy pays for its ranking.
        """
        return sum(getattr(balancer.policy, "probes_sent", 0)
                   for balancer in self.system.balancers)

    def sticky_violations(self) -> int:
        """Broken affinity promises recorded by sticky-session policies
        (a pinned member was ineligible and the session moved)."""
        return sum(getattr(balancer.policy, "violations", 0)
                   for balancer in self.system.balancers)

    def goodput(self) -> float:
        """Useful responses (no 503, not shed, under the VLRT
        threshold) per second."""
        stats = self.stats()
        useful = (stats.count - self.error_responses() - self.sheds()
                  - stats.vlrt_fraction * stats.count)
        return max(0.0, useful) / self.duration

    def summary(self) -> str:
        """A one-paragraph human-readable summary."""
        stats = self.stats()
        label = self.config.bundle_key
        if self.config.topology is not None:
            label = "topology:" + self.config.topology.name
        return (
            "{}: {} requests, avg RT {:.2f} ms, VLRT {:.2f}%, "
            "normal {:.2f}%, drops {}, millibottlenecks {}".format(
                label,
                stats.count,
                stats.mean_ms,
                100 * stats.vlrt_fraction,
                100 * stats.normal_fraction,
                self.dropped_packets(),
                len(self.system.millibottleneck_records()),
            )
        )


class ExperimentRunner:
    """Builds and runs one experiment."""

    def __init__(self, config: ExperimentConfig,
                 mix: Optional[WorkloadMix] = None) -> None:
        self.config = config
        self.mix = mix or read_write_mix()

    def run(self, env: Optional[Environment] = None) -> ExperimentResult:
        """Execute the run and return its result.

        ``env`` lets the caller supply a pre-built environment — the
        golden-trace determinism tests use this to install the
        :attr:`~repro.sim.core.Environment.trace` probe before any
        event is scheduled.  It must be a fresh environment at t=0.
        """
        config = self.config
        if env is None:
            env = Environment()
        tracer = None
        if config.trace_requests:
            tracer = SpanTracer(env)
            env.tracer = tracer
        rng = np.random.default_rng(config.seed)
        profile = config.profile

        balancer_config = BalancerConfig(
            pool_size=profile.connection_pool_size,
            trace_lb_values=config.trace_lb_values,
            trace_dispatches=config.trace_dispatches,
        )
        if config.topology is not None:
            system = build_from_spec(
                env, config.topology, profile=profile, rng=rng,
                balancer_config=balancer_config,
                resilience=config.resilience,
                default_bundle=config.bundle(),
            )
        else:
            system = build_system(
                env, profile,
                bundle=config.bundle() if config.use_balancer else None,
                rng=rng,
                tomcat_millibottlenecks=config.tomcat_millibottlenecks,
                apache_millibottlenecks=config.apache_millibottlenecks,
                balancer_config=balancer_config,
                use_balancer=config.use_balancer,
                resilience=config.resilience,
            )

        if config.controlplane is not None and config.controlplane.enabled:
            install_controlplane(env, system, config.controlplane)

        fault_injector = None
        if config.faults:
            # The injector gets its own stream off the run seed so the
            # fault timeline is a pure function of (seed, faults) —
            # identical whether the run executes serially or in a pool.
            fault_injector = FaultInjector(
                env, rng=np.random.default_rng(
                    [config.seed, FAULT_RNG_STREAM]))
            fault_injector.inject_all(config.faults, system)

        population = ClientPopulation(
            env,
            sockets=[frontend.socket for frontend in system.frontends],
            total_clients=profile.clients,
            mix=self.mix,
            rng=rng,
            think_time=profile.think_time,
            retransmission=RetransmissionPolicy(),
            ramp_up=profile.ramp_up,
            retry=(config.resilience.retry
                   if config.resilience is not None else None),
        )

        hub = (MonitorHub(env, period=config.sample_window)
               if config.batched_sampling else None)
        queue_samplers = {
            server.name: Sampler(env, _probe(server),
                                 period=config.sample_window,
                                 name=server.name, hub=hub)
            for server in system.servers
        }
        dirty_samplers = {}
        if config.sample_dirty_pages:
            dirty_samplers = {
                host.name: Sampler(env, _dirty_probe(host),
                                   period=config.sample_window,
                                   name=host.name, hub=hub)
                for host in system.hosts
            }

        env.run(until=config.duration)
        if tracer is not None:
            tracer.finalize()

        return ExperimentResult(
            config=config,
            system=system,
            population=population,
            duration=config.duration,
            fault_injector=fault_injector,
            tracer=tracer,
            queue_series={
                name: TimeSeries.from_arrays(*sampler.series(), name=name)
                for name, sampler in queue_samplers.items()
            },
            dirty_series={
                name: TimeSeries.from_arrays(*sampler.series(), name=name)
                for name, sampler in dirty_samplers.items()
            },
        )


def _probe(server):
    return lambda: server.in_server


def _dirty_probe(host):
    return lambda: host.pagecache.dirty_bytes


def compare_policies(bundle_keys, profile: Optional[ScaleProfile] = None,
                     duration: float = 30.0, seed: int = 42,
                     mix: Optional[WorkloadMix] = None,
                     trace: bool = False, workers: int = 1):
    """Run several Table-I bundles under identical conditions.

    Each run uses the same seed, profile, duration, and workload mix,
    so differences are attributable to the policy/mechanism alone.

    With ``workers=1`` (the default) the bundles run sequentially in
    this process and full :class:`ExperimentResult` objects come back.
    With ``workers > 1`` (or ``None`` for one per CPU) the runs fan out
    across a process pool via :mod:`repro.parallel` and picklable
    :class:`~repro.parallel.ExperimentSummary` objects come back — the
    reporting surface is identical either way, and so are the per-run
    statistics: results are merged in ``bundle_keys`` order and each
    run's numbers depend only on its config.
    """
    profile = profile or ScaleProfile()
    configs = [
        ExperimentConfig(
            bundle_key=key, profile=profile, duration=duration, seed=seed,
            trace_lb_values=trace, trace_dispatches=trace)
        for key in bundle_keys
    ]
    if workers == 1:
        return [ExperimentRunner(config, mix=mix).run()
                for config in configs]
    from repro.parallel import run_experiments
    return run_experiments(configs, workers=workers, mix=mix)
