"""Fault injection: crashes and recoveries on a schedule.

The paper's 3-state machine exists because backends really do fail
permanently, not just transiently — and its §IV-C remedy is
deliberately conservative because "it is hard to distinguish
millibottleneck from permanent failure".  This module injects
fail-stop crashes so that distinction can be exercised: a crash must
escalate to Error and stay excluded, while a millibottleneck must not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.tiers.base import TierServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


@dataclass(frozen=True)
class CrashRecord:
    """Ground truth about one injected crash."""

    server: str
    crashed_at: float
    recovered_at: Optional[float]


class FaultInjector:
    """Schedules crashes (and optional recoveries) on tier servers."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.records: list[CrashRecord] = []

    def crash_at(self, server: TierServer, at: float,
                 duration: Optional[float] = None) -> None:
        """Crash ``server`` at time ``at``.

        With ``duration`` the server recovers that many seconds later;
        without it the crash is permanent for the rest of the run.
        """
        if at < self.env.now:
            raise ConfigurationError("cannot schedule a crash in the past")
        if duration is not None and duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.env.process(self._run(server, at, duration))

    def _run(self, server: TierServer, at: float,
             duration: Optional[float]):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        server.crash()
        crashed_at = self.env.now
        if duration is None:
            self.records.append(CrashRecord(server.name, crashed_at, None))
            return
        yield self.env.timeout(duration)
        server.recover()
        self.records.append(CrashRecord(server.name, crashed_at,
                                        self.env.now))
