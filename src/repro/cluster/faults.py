"""Fault injection: the fault-model zoo.

The paper's 3-state machine exists because backends really do fail
permanently, not just transiently — and its §IV-C remedy is
deliberately conservative because "it is hard to distinguish
millibottleneck from permanent failure".  The original module injected
only fail-stop crashes; this zoo widens the fault space so the
resilience layer (:mod:`repro.resilience`) can be exercised against
every transient-vs-permanent shade the distinction has:

* **fail-stop crash** — the server refuses all work, permanently or
  for a window (:class:`CrashFault`);
* **fail-slow** — the server still answers, but every CPU slice takes
  ``factor`` times longer (:class:`SlowFault`), the classic degraded
  (limping) server of the HAProxy tuning study;
* **network packet loss / added latency** — the client-to-web path
  drops a fraction of packets or gains latency for a window
  (:class:`PacketLossFault`), and balancer-to-backend links gain
  latency (:class:`LinkLatencyFault`);
* **correlated bursts** — several servers fail within a small jitter
  window of each other (:class:`CorrelatedCrashFault`), as when a rack
  or dependency dies;
* **recurring schedules** — crash or slow a server repeatedly on an
  RNG-driven schedule (:class:`RecurringFault`), the chaos-monkey mode;
* **zone outages** — every replica placed in one availability zone
  crashes together (:class:`ZoneOutageFault`), the geo-scale burst;
* **WAN brown-outs** — a zone pair's links swap onto a degraded
  latency/loss profile for a window (:class:`WanDegradationFault`).

Every fault is declarative (a frozen, picklable spec naming its target
server) so :class:`~repro.cluster.runner.ExperimentConfig` can carry a
tuple of them across process boundaries; the
:class:`FaultInjector` resolves names against the built system and
drives the schedules.  All randomness comes from the injector's seeded
generator: fault schedules are RNG-stream-keyed, never wall-clock, so
the same seed gives the same fault timeline under ``workers=1`` and
``workers=N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.netmodel.sockets import Link, LinkProfile, NetworkImpairment
from repro.tiers.base import TierServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import NTierSystem
    from repro.sim.core import Environment

#: Seed of the generator :class:`FaultInjector` falls back to when the
#: caller does not inject one; experiments always inject a stream
#: derived from the run's seed (see ``ExperimentRunner.run``).
DEFAULT_FAULT_SEED = 0

_INF = float("inf")


# -- ground-truth records ---------------------------------------------------

@dataclass
class CrashRecord:
    """Ground truth about one injected crash.

    Appended when the crash *starts* (``recovered_at`` still ``None``),
    and updated in place on recovery — so a run inspected mid-crash
    already shows the record.
    """

    server: str
    crashed_at: float
    recovered_at: Optional[float] = None


@dataclass
class SlowRecord:
    """Ground truth about one fail-slow (degraded-service) window."""

    server: str
    factor: float
    started_at: float
    ended_at: Optional[float] = None


@dataclass
class NetworkFaultRecord:
    """Ground truth about one network impairment window."""

    target: str
    kind: str  # "loss" or "latency"
    magnitude: float
    started_at: float
    ended_at: Optional[float] = None


# -- declarative fault specs -----------------------------------------------

@dataclass(frozen=True)
class CrashFault:
    """Fail-stop crash of ``server`` at ``at``; permanent without
    ``duration``."""

    server: str
    at: float
    duration: Optional[float] = None


@dataclass(frozen=True)
class SlowFault:
    """Degrade ``server``'s service rate by ``factor`` for a window.

    ``factor`` multiplies every CPU demand on the server's host: 3.0
    means requests take three times the CPU time, the "limping but
    alive" server that passive load counters misjudge.
    """

    server: str
    at: float
    duration: float
    factor: float = 3.0


@dataclass(frozen=True)
class PacketLossFault:
    """Drop ``loss`` of client packets to ``apache`` for a window.

    ``apache=None`` impairs every web server (an upstream network
    fault); ``extra_latency`` adds one-way delay to surviving packets.
    Dropped packets are retransmitted by the client's TCP stack after
    its RTO — exactly the VLRT mechanism of Fig. 4, now triggered by
    the network instead of an overflowing accept queue.
    """

    at: float
    duration: float
    loss: float = 0.01
    extra_latency: float = 0.0
    apache: Optional[str] = None


@dataclass(frozen=True)
class LinkLatencyFault:
    """Add ``extra`` seconds one-way latency to every balancer link
    toward ``server`` for a window (a congested or flapping switch on
    the AJP path)."""

    server: str
    at: float
    duration: float
    extra: float = 0.005


@dataclass(frozen=True)
class CorrelatedCrashFault:
    """Crash several servers within ``jitter`` seconds of ``at``.

    Offsets are drawn from the injector's RNG, so the burst shape is
    seed-deterministic.  Models rack/dependency failures that take out
    multiple backends at once — the scenario where routing-around
    capacity actually runs out.
    """

    servers: tuple[str, ...]
    at: float
    duration: Optional[float] = None
    jitter: float = 0.1


@dataclass(frozen=True)
class RecurringFault:
    """Crash or slow ``server`` repeatedly on an RNG-driven schedule.

    Inter-fault gaps are exponential with mean ``mean_interval``;
    each episode lasts ``duration``.  ``kind`` is ``"crash"`` or
    ``"slow"``.  Episodes stop after ``until`` (or never, if ``None``).
    """

    server: str
    kind: str = "crash"
    mean_interval: float = 5.0
    duration: float = 0.5
    factor: float = 3.0
    start: float = 0.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "slow"):
            raise ConfigurationError(
                "RecurringFault.kind must be 'crash' or 'slow', got "
                + repr(self.kind))


@dataclass(frozen=True)
class ZoneOutageFault:
    """Correlated crash of every replica placed in ``zone``.

    The geo-scale analogue of :class:`CorrelatedCrashFault`: an
    availability-zone outage takes down *all* servers whose
    ``server.zone`` matches, across every tier at once, within
    ``jitter`` seconds of ``at``.  Only meaningful against a zoned
    topology — against a zone-free system it is a configuration error,
    not a no-op.
    """

    zone: str
    at: float
    duration: Optional[float] = None
    jitter: float = 0.1


@dataclass(frozen=True)
class WanDegradationFault:
    """Swap the ``zone_a``/``zone_b`` WAN links onto a degraded profile.

    Models a brown-out of the inter-zone backbone: for the window every
    link whose ``zone_pair`` matches carries the degraded latency /
    loss / RTO instead of its provisioned profile, then snaps back.
    Spillover traffic routed around a zone fault pays these degraded
    hops — the geo version of "the remedy path is itself impaired".
    """

    zone_a: str
    zone_b: str
    at: float
    duration: float
    latency: float = 0.25
    jitter: float = 0.02
    loss: float = 0.05
    rto: float = 0.2


FaultSpec = Union[CrashFault, SlowFault, PacketLossFault,
                  LinkLatencyFault, CorrelatedCrashFault, RecurringFault,
                  ZoneOutageFault, WanDegradationFault]


# -- the injector -----------------------------------------------------------

class FaultInjector:
    """Schedules faults from the zoo against a running system.

    Parameters
    ----------
    env:
        Simulation environment.
    rng:
        Seeded generator driving jitter and recurring schedules; when
        omitted, a generator seeded with :data:`DEFAULT_FAULT_SEED`
        keeps ad-hoc use deterministic.
    """

    def __init__(self, env: "Environment",
                 rng: Optional[np.random.Generator] = None) -> None:
        self.env = env
        # SEED003 (baselined): shares seed 0 with the topology builder's
        # fallback; changing it reorders every fault schedule and breaks
        # golden-trace equality, so the coincidence is accepted for the
        # no-rng path and recorded in statan-baseline.json.
        self._rng = rng or np.random.default_rng(DEFAULT_FAULT_SEED)
        #: Crash ground truth, appended at crash time.
        self.records: list[CrashRecord] = []
        #: Fail-slow ground truth.
        self.slow_records: list[SlowRecord] = []
        #: Network impairment ground truth.
        self.net_records: list[NetworkFaultRecord] = []
        #: Scheduled crash windows per server, for overlap validation.
        self._crash_windows: dict[str, list[tuple[float, float]]] = {}

    # -- crash (fail-stop) -----------------------------------------------
    def crash_at(self, server: TierServer, at: float,
                 duration: Optional[float] = None) -> None:
        """Crash ``server`` at time ``at``.

        With ``duration`` the server recovers that many seconds later;
        without it the crash is permanent for the rest of the run.
        Overlapping crash windows on the same server are rejected —
        crashing an already-crashed server is undefined behaviour.
        """
        if at < self.env.now:
            raise ConfigurationError("cannot schedule a crash in the past")
        if duration is not None and duration <= 0:
            raise ConfigurationError("duration must be positive")
        end = _INF if duration is None else at + duration
        windows = self._crash_windows.setdefault(server.name, [])
        for start, stop in windows:
            if at < stop and end > start:
                raise ConfigurationError(
                    "overlapping crash on {}: [{}, {}) collides with "
                    "[{}, {})".format(server.name, at, end, start, stop))
        windows.append((at, end))
        self.env.process(self._run_crash(server, at, duration))

    def _run_crash(self, server: TierServer, at: float,
                   duration: Optional[float]):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        server.crash()
        # Record at crash time so a run that ends (or is inspected)
        # mid-crash still shows the fault.
        record = CrashRecord(server.name, self.env.now)
        self.records.append(record)
        if duration is None:
            return
        yield self.env.timeout(duration)
        server.recover()
        record.recovered_at = self.env.now

    # -- fail-slow (degraded service rate) -------------------------------
    def slow_at(self, server: TierServer, at: float, duration: float,
                factor: float = 3.0) -> None:
        """Multiply ``server``'s CPU demand by ``factor`` for a window."""
        if at < self.env.now:
            raise ConfigurationError("cannot schedule a fault in the past")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if factor <= 1.0:
            raise ConfigurationError(
                "slowdown factor must be > 1.0 (got {!r})".format(factor))
        self.env.process(self._run_slow(server, at, duration, factor))

    def _run_slow(self, server: TierServer, at: float, duration: float,
                  factor: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        host = server.host
        host.slowdown *= factor
        record = SlowRecord(server.name, factor, self.env.now)
        self.slow_records.append(record)
        yield self.env.timeout(duration)
        host.slowdown /= factor
        record.ended_at = self.env.now

    # -- network impairments ---------------------------------------------
    def impair_socket_at(self, socket, at: float, duration: float,
                         loss: float = 0.01,
                         extra_latency: float = 0.0) -> None:
        """Drop ``loss`` of offers to ``socket`` (and delay survivors)
        for a window."""
        if at < self.env.now:
            raise ConfigurationError("cannot schedule a fault in the past")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if not 0.0 <= loss < 1.0:
            raise ConfigurationError("loss must be in [0, 1)")
        if extra_latency < 0:
            raise ConfigurationError("extra_latency must be >= 0")
        impairment = NetworkImpairment(
            loss=loss, extra_latency=extra_latency,
            rng=np.random.default_rng(self._rng.integers(2 ** 63)))
        self.env.process(
            self._run_impairment(socket, at, duration, impairment))

    def _run_impairment(self, socket, at: float, duration: float,
                        impairment: NetworkImpairment):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        record = NetworkFaultRecord(socket.name, "loss", impairment.loss,
                                    self.env.now)
        self.net_records.append(record)
        socket.impairment = impairment
        yield self.env.timeout(duration)
        socket.impairment = None
        record.ended_at = self.env.now

    def add_link_latency_at(self, link: Link, at: float, duration: float,
                            extra: float) -> None:
        """Add ``extra`` one-way latency to ``link`` for a window."""
        if at < self.env.now:
            raise ConfigurationError("cannot schedule a fault in the past")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if extra <= 0:
            raise ConfigurationError("extra latency must be positive")
        self.env.process(self._run_link_latency(link, at, duration, extra))

    def _run_link_latency(self, link: Link, at: float, duration: float,
                          extra: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        record = NetworkFaultRecord(link.name, "latency", extra,
                                    self.env.now)
        self.net_records.append(record)
        link.latency += extra
        yield self.env.timeout(duration)
        link.latency -= extra
        record.ended_at = self.env.now

    def degrade_wan_at(self, link: Link, at: float, duration: float,
                       profile: LinkProfile) -> None:
        """Swap ``link`` onto ``profile`` for a window, then restore."""
        if at < self.env.now:
            raise ConfigurationError("cannot schedule a fault in the past")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if link.profile is None:
            raise ConfigurationError(
                "link {} has no WAN profile to degrade".format(link.name))
        self.env.process(
            self._run_wan_degradation(link, at, duration, profile))

    def _run_wan_degradation(self, link: Link, at: float, duration: float,
                             profile: LinkProfile):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)
        record = NetworkFaultRecord(link.name, "wan", profile.latency,
                                    self.env.now)
        self.net_records.append(record)
        healthy = link.profile
        link.profile = profile
        yield self.env.timeout(duration)
        # Restoring the *provisioned* profile is the point: overlapping
        # degradations of one link are rejected by scenario construction
        # (one WanDegradationFault per pair), so no concurrent writer
        # exists to clobber.
        link.profile = healthy  # statan: ignore[RACE001]
        record.ended_at = self.env.now

    # -- correlated bursts ------------------------------------------------
    def correlated_crash(self, servers, at: float,
                         duration: Optional[float] = None,
                         jitter: float = 0.1) -> None:
        """Crash every server in ``servers`` within ``jitter`` of ``at``."""
        if jitter < 0:
            raise ConfigurationError("jitter must be >= 0")
        for server in servers:
            offset = float(self._rng.uniform(0.0, jitter)) if jitter else 0.0
            self.crash_at(server, at + offset, duration)

    # -- recurring schedules ----------------------------------------------
    def recurring(self, server: TierServer, kind: str = "crash",
                  mean_interval: float = 5.0, duration: float = 0.5,
                  factor: float = 3.0, start: float = 0.0,
                  until: Optional[float] = None) -> None:
        """Repeat a transient fault on an RNG-driven schedule."""
        if kind not in ("crash", "slow"):
            raise ConfigurationError(
                "recurring fault kind must be 'crash' or 'slow'")
        if mean_interval <= 0 or duration <= 0:
            raise ConfigurationError(
                "mean_interval and duration must be positive")
        self.env.process(self._run_recurring(
            server, kind, mean_interval, duration, factor, start, until))

    def _run_recurring(self, server: TierServer, kind: str,
                       mean_interval: float, duration: float,
                       factor: float, start: float,
                       until: Optional[float]):
        if start > self.env.now:
            yield self.env.timeout(start - self.env.now)
        while True:
            gap = float(self._rng.exponential(mean_interval))
            yield self.env.timeout(max(1e-6, gap))
            if until is not None and self.env.now >= until:
                return
            if kind == "crash":
                # Direct episode, bypassing the overlap book-keeping:
                # the schedule is sequential by construction.
                server.crash()
                record = CrashRecord(server.name, self.env.now)
                self.records.append(record)
                yield self.env.timeout(duration)
                server.recover()
                record.recovered_at = self.env.now
            else:
                host = server.host
                host.slowdown *= factor
                record = SlowRecord(server.name, factor, self.env.now)
                self.slow_records.append(record)
                yield self.env.timeout(duration)
                host.slowdown /= factor
                record.ended_at = self.env.now

    # -- declarative entry point ------------------------------------------
    def inject(self, spec: FaultSpec, system: "NTierSystem") -> None:
        """Resolve a declarative spec against ``system`` and schedule it."""
        if isinstance(spec, CrashFault):
            self.crash_at(system.server_named(spec.server), spec.at,
                          spec.duration)
        elif isinstance(spec, SlowFault):
            self.slow_at(system.server_named(spec.server), spec.at,
                         spec.duration, spec.factor)
        elif isinstance(spec, PacketLossFault):
            sockets = [frontend.socket for frontend in system.frontends
                       if spec.apache is None
                       or frontend.name == spec.apache]
            if not sockets:
                raise ConfigurationError(
                    "no web server named " + repr(spec.apache))
            for socket in sockets:
                self.impair_socket_at(socket, spec.at, spec.duration,
                                      spec.loss, spec.extra_latency)
        elif isinstance(spec, LinkLatencyFault):
            links = [member.link for balancer in system.balancers
                     for member in balancer.members
                     if member.name == spec.server]
            if not links:
                raise ConfigurationError(
                    "no balancer link toward " + repr(spec.server))
            for link in links:
                self.add_link_latency_at(link, spec.at, spec.duration,
                                         spec.extra)
        elif isinstance(spec, CorrelatedCrashFault):
            servers = [system.server_named(name) for name in spec.servers]
            self.correlated_crash(servers, spec.at, spec.duration,
                                  spec.jitter)
        elif isinstance(spec, RecurringFault):
            self.recurring(system.server_named(spec.server), spec.kind,
                           spec.mean_interval, spec.duration, spec.factor,
                           spec.start, spec.until)
        elif isinstance(spec, ZoneOutageFault):
            servers = system.servers_in_zone(spec.zone)
            if not servers:
                raise ConfigurationError(
                    "no servers placed in zone " + repr(spec.zone)
                    + " (zone faults need a zoned topology)")
            self.correlated_crash(servers, spec.at, spec.duration,
                                  spec.jitter)
        elif isinstance(spec, WanDegradationFault):
            pair = tuple(sorted((spec.zone_a, spec.zone_b)))
            links = [link for link in system.wan_links
                     if link.zone_pair == pair]
            if not links:
                raise ConfigurationError(
                    "no WAN links between zones {!r} and {!r}".format(
                        spec.zone_a, spec.zone_b))
            degraded = LinkProfile(
                latency=spec.latency, jitter=spec.jitter, loss=spec.loss,
                rto=spec.rto, name="wan.degraded")
            for link in links:
                self.degrade_wan_at(link, spec.at, spec.duration, degraded)
        else:
            raise ConfigurationError(
                "unknown fault spec: {!r}".format(spec))

    def inject_all(self, specs, system: "NTierSystem") -> None:
        """Schedule every spec in ``specs`` against ``system``."""
        for spec in specs:
            self.inject(spec, system)
