"""Named experiment scenarios — one per paper artifact.

Every figure and table maps to a scenario key (see DESIGN.md's
experiment index).  ``Scenario.named(key)`` returns a ready-to-run
:class:`~repro.cluster.runner.ExperimentConfig`.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.config import ScaleProfile
from repro.cluster.runner import ExperimentConfig
from repro.core.remedies import BUNDLES
from repro.errors import ConfigurationError

#: Default run length for figure-level scenarios (seconds).
FIGURE_DURATION = 20.0
#: Default run length for the Table-I comparison (seconds).
TABLE_DURATION = 30.0


def baseline_no_millibottleneck(duration: float = FIGURE_DURATION,
                                seed: int = 42) -> ExperimentConfig:
    """Fig. 1: total_request in a millibottleneck-free environment."""
    return ExperimentConfig(
        bundle_key="original_total_request",
        profile=ScaleProfile(),
        duration=duration,
        seed=seed,
        tomcat_millibottlenecks=False,
        apache_millibottlenecks=False,
    )


def single_node_millibottleneck(duration: float = FIGURE_DURATION,
                                seed: int = 42) -> ExperimentConfig:
    """Fig. 2: 1 Apache / 1 Tomcat / 1 MySQL, no balancer, flushing on.

    Both the web and app hosts flush (the paper's §III-B observes
    millibottlenecks on each), producing the two kinds of Apache queue
    peak: its own stall, and the push-back wave from Tomcat.
    """
    return ExperimentConfig(
        bundle_key="original_total_request",  # unused (no balancer)
        profile=ScaleProfile.single_node(),
        duration=duration,
        seed=seed,
        tomcat_millibottlenecks=True,
        apache_millibottlenecks=True,
        use_balancer=False,
        sample_dirty_pages=True,
    )


def policy_run(bundle_key: str, duration: float = FIGURE_DURATION,
               seed: int = 42, trace: bool = True) -> ExperimentConfig:
    """Figs. 3-13: a 4/4/1 run of one policy/mechanism combination."""
    if bundle_key not in BUNDLES:
        raise ConfigurationError("unknown bundle: " + bundle_key)
    return ExperimentConfig(
        bundle_key=bundle_key,
        profile=ScaleProfile(),
        duration=duration,
        seed=seed,
        tomcat_millibottlenecks=True,
        apache_millibottlenecks=False,
        trace_lb_values=trace,
        trace_dispatches=trace,
    )


def table1_run(bundle_key: str, duration: float = TABLE_DURATION,
               seed: int = 42) -> ExperimentConfig:
    """Table I: same as a policy run, with tracing off for speed."""
    return policy_run(bundle_key, duration=duration, seed=seed, trace=False)


_REGISTRY: dict[str, Callable[[], ExperimentConfig]] = {
    "fig1/baseline": baseline_no_millibottleneck,
    "fig2/anatomy": single_node_millibottleneck,
}
for _key in BUNDLES:
    _REGISTRY["run/" + _key] = (
        lambda key=_key: policy_run(key))
    _REGISTRY["table1/" + _key] = (
        lambda key=_key: table1_run(key))


class Scenario:
    """Registry facade: ``Scenario.named("table1/current_load")``."""

    @staticmethod
    def named(key: str) -> ExperimentConfig:
        try:
            return _REGISTRY[key]()
        except KeyError:
            raise ConfigurationError(
                "unknown scenario {!r}; available: {}".format(
                    key, ", ".join(sorted(_REGISTRY)))) from None

    @staticmethod
    def keys() -> list[str]:
        return sorted(_REGISTRY)
