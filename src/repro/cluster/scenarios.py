"""Named experiment scenarios — one per paper artifact.

Every figure and table maps to a scenario key (see DESIGN.md's
experiment index).  ``Scenario.named(key)`` returns a ready-to-run
:class:`~repro.cluster.runner.ExperimentConfig`.

:class:`ChaosSuite` is the fault/remedy matrix: it crosses the fault
zoo (:data:`FAULT_SCENARIOS`) with the remedy bundles — data-plane
(:data:`~repro.resilience.RESILIENCE_BUNDLES`) and control-plane
(:data:`~repro.controlplane.CONTROLPLANE_BUNDLES`) — and the Table-I
policy/mechanism bundles, fans the cells out through
:mod:`repro.parallel`, and reports availability, %VLRT, retry
amplification, goodput, shed rate and time-to-recover per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cluster.config import ScaleProfile
from repro.cluster.faults import (
    CorrelatedCrashFault,
    CrashFault,
    FaultSpec,
    LinkLatencyFault,
    PacketLossFault,
    RecurringFault,
    SlowFault,
    WanDegradationFault,
    ZoneOutageFault,
)
from repro.cluster.runner import ExperimentConfig
from repro.cluster.spec import TopologySpec
from repro.controlplane import CONTROLPLANE_BUNDLES, ControlPlaneConfig
from repro.core.remedies import BUNDLES, MODERN_BUNDLES, TABLE1_BUNDLES
from repro.errors import ConfigurationError
from repro.resilience import RESILIENCE_BUNDLES, ResilienceConfig

#: Default run length for figure-level scenarios (seconds).
FIGURE_DURATION = 20.0
#: Default run length for the Table-I comparison (seconds).
TABLE_DURATION = 30.0


def baseline_no_millibottleneck(duration: float = FIGURE_DURATION,
                                seed: int = 42) -> ExperimentConfig:
    """Fig. 1: total_request in a millibottleneck-free environment."""
    return ExperimentConfig(
        bundle_key="original_total_request",
        profile=ScaleProfile(),
        duration=duration,
        seed=seed,
        tomcat_millibottlenecks=False,
        apache_millibottlenecks=False,
    )


def single_node_millibottleneck(duration: float = FIGURE_DURATION,
                                seed: int = 42) -> ExperimentConfig:
    """Fig. 2: 1 Apache / 1 Tomcat / 1 MySQL, no balancer, flushing on.

    Both the web and app hosts flush (the paper's §III-B observes
    millibottlenecks on each), producing the two kinds of Apache queue
    peak: its own stall, and the push-back wave from Tomcat.
    """
    return ExperimentConfig(
        bundle_key="original_total_request",  # unused (no balancer)
        profile=ScaleProfile.single_node(),
        duration=duration,
        seed=seed,
        tomcat_millibottlenecks=True,
        apache_millibottlenecks=True,
        use_balancer=False,
        sample_dirty_pages=True,
    )


def policy_run(bundle_key: str, duration: float = FIGURE_DURATION,
               seed: int = 42, trace: bool = True) -> ExperimentConfig:
    """Figs. 3-13: a 4/4/1 run of one policy/mechanism combination."""
    if bundle_key not in BUNDLES:
        raise ConfigurationError("unknown bundle: " + bundle_key)
    return ExperimentConfig(
        bundle_key=bundle_key,
        profile=ScaleProfile(),
        duration=duration,
        seed=seed,
        tomcat_millibottlenecks=True,
        apache_millibottlenecks=False,
        trace_lb_values=trace,
        trace_dispatches=trace,
    )


def table1_run(bundle_key: str, duration: float = TABLE_DURATION,
               seed: int = 42) -> ExperimentConfig:
    """Table I: same as a policy run, with tracing off for speed."""
    return policy_run(bundle_key, duration=duration, seed=seed, trace=False)


_REGISTRY: dict[str, Callable[[], ExperimentConfig]] = {
    "fig1/baseline": baseline_no_millibottleneck,
    "fig2/anatomy": single_node_millibottleneck,
}
for _key in BUNDLES:
    _REGISTRY["run/" + _key] = (
        lambda key=_key: policy_run(key))
    _REGISTRY["table1/" + _key] = (
        lambda key=_key: table1_run(key))


class Scenario:
    """Registry facade: ``Scenario.named("table1/current_load")``."""

    @staticmethod
    def named(key: str) -> ExperimentConfig:
        try:
            return _REGISTRY[key]()
        except KeyError:
            raise ConfigurationError(
                "unknown scenario {!r}; available: {}".format(
                    key, ", ".join(sorted(_REGISTRY)))) from None

    @staticmethod
    def keys() -> list[str]:
        return sorted(_REGISTRY)


# -- the chaos suite --------------------------------------------------------

#: Default run length for chaos cells (seconds).
CHAOS_DURATION = 12.0

#: Named fault timelines, each a factory ``duration -> specs`` so the
#: fault windows scale with the cell's run length.  Windows start after
#: ramp-up and end before the run does, so every cell also measures the
#: recovery, not just the fault.
FAULT_SCENARIOS: dict[str, Callable[[float], tuple[FaultSpec, ...]]] = {
    "none": lambda d: (),
    "crash": lambda d: (
        CrashFault("tomcat1", at=0.25 * d),),
    "transient_crash": lambda d: (
        CrashFault("tomcat1", at=0.25 * d, duration=0.25 * d),),
    "slow": lambda d: (
        SlowFault("tomcat1", at=0.25 * d, duration=0.35 * d, factor=8.0),),
    "packet_loss": lambda d: (
        PacketLossFault(at=0.25 * d, duration=0.35 * d, loss=0.01),),
    "link_latency": lambda d: (
        LinkLatencyFault("tomcat1", at=0.25 * d, duration=0.35 * d,
                         extra=0.005),),
    "burst": lambda d: (
        CorrelatedCrashFault(("tomcat1", "tomcat2"), at=0.25 * d,
                             duration=0.2 * d, jitter=0.05 * d),),
    "recurring_slow": lambda d: (
        RecurringFault("tomcat1", kind="slow", mean_interval=0.12 * d,
                       duration=0.04 * d, factor=6.0),),
    "zone_outage": lambda d: (
        ZoneOutageFault("east", at=0.25 * d, duration=0.3 * d,
                        jitter=0.02 * d),),
    "wan_degradation": lambda d: (
        WanDegradationFault("east", "west", at=0.25 * d, duration=0.35 * d,
                            latency=0.25, loss=0.05),),
}

#: Fault keys that only resolve against a zoned topology (their targets
#: are zones and WAN links, which a classic flat build does not have).
#: :class:`ChaosSuite` excludes them unless a topology is supplied.
ZONE_FAULT_KEYS: frozenset[str] = frozenset(
    {"zone_outage", "wan_degradation"})


def fault_specs(key: str, duration: float) -> tuple[FaultSpec, ...]:
    """Resolve a named fault scenario for a run of ``duration``."""
    try:
        factory = FAULT_SCENARIOS[key]
    except KeyError:
        raise ConfigurationError(
            "unknown fault scenario {!r}; available: {}".format(
                key, ", ".join(sorted(FAULT_SCENARIOS)))) from None
    return tuple(factory(duration))


def fault_horizon(specs: Sequence[FaultSpec]) -> Optional[tuple[float, float]]:
    """``(start, end)`` of the union of fault windows, if bounded.

    ``None`` when the timeline has no bounded window to recover from:
    no faults at all, a permanent crash (``duration=None``), or a
    recurring fault (no ``at``).  Correlated crashes extend the end by
    their jitter bound, since member crash times are drawn in
    ``[at, at + jitter]``.
    """
    starts: list[float] = []
    ends: list[float] = []
    for spec in specs:
        at = getattr(spec, "at", None)
        duration = getattr(spec, "duration", None)
        if at is None or duration is None:
            return None
        jitter = getattr(spec, "jitter", 0.0) or 0.0
        starts.append(at)
        ends.append(at + duration + jitter)
    if not starts:
        return None
    return min(starts), max(ends)


def time_to_recover(result) -> Optional[float]:
    """Seconds after the last fault window until VLRTs subside.

    Recovery means the per-window VLRT count has returned to its
    pre-fault baseline (the worst window observed before the first
    fault started).  Returns ``None`` when undefined — no bounded
    fault window, or no response samples — and ``inf`` when the run
    ends without the VLRT rate ever coming back down.
    """
    window = fault_horizon(getattr(result.config, "faults", ()) or ())
    if window is None:
        return None
    start, end = window
    series = result.vlrt_windows()
    times, values = series.times, series.values
    if not times:
        return None
    baseline = max((v for t, v in zip(times, values) if t < start),
                   default=0.0)
    for t, v in zip(times, values):
        if t >= end and v <= baseline:
            return max(0.0, t - end)
    return float("inf")


def all_remedy_keys() -> list[str]:
    """Every valid chaos remedy key: resilience + control-plane bundles."""
    return sorted(set(RESILIENCE_BUNDLES) | set(CONTROLPLANE_BUNDLES))


def resolve_remedy(key: str) -> tuple[Optional[ResilienceConfig],
                                      Optional[ControlPlaneConfig]]:
    """Map a remedy key onto ``(resilience, controlplane)`` configs.

    Remedy keys span two registries: the data-plane resilience bundles
    (:data:`~repro.resilience.RESILIENCE_BUNDLES`) and the control-plane
    bundles (:data:`~repro.controlplane.CONTROLPLANE_BUNDLES`).  Exactly
    one side of the returned pair is set for an active remedy; both are
    ``None`` for the do-nothing key.
    """
    resilience = RESILIENCE_BUNDLES.get(key)
    if resilience is not None:
        return (resilience if resilience.enabled else None), None
    controlplane = CONTROLPLANE_BUNDLES.get(key)
    if controlplane is not None:
        return None, (controlplane if controlplane.enabled else None)
    raise ConfigurationError(
        "unknown remedy {!r}; valid remedy keys: {}".format(
            key, ", ".join(all_remedy_keys())))


@dataclass(frozen=True)
class ChaosCell:
    """One point of the fault x remedy x policy grid."""

    fault_key: str
    remedy_key: str
    bundle_key: str
    config: ExperimentConfig

    @property
    def label(self) -> str:
        return "{}|{}|{}".format(self.fault_key, self.remedy_key,
                                 self.bundle_key)


@dataclass(frozen=True)
class ChaosReport:
    """Results of a suite run, one summary-like object per cell."""

    cells: tuple[ChaosCell, ...]
    results: tuple

    def rows(self) -> list[dict]:
        """One metrics dict per cell, grid keys included.

        ``shed_pct`` is the share of client-visible responses answered
        fast by a control-plane gate; ``ttr`` is the time-to-recover
        after the last fault window (``None`` when undefined, ``inf``
        when the VLRT rate never returns to its pre-fault baseline).
        """
        rows = []
        for cell, result in zip(self.cells, self.results):
            stats = result.stats()
            sheds = result.sheds()
            rows.append({
                "fault": cell.fault_key,
                "remedy": cell.remedy_key,
                "bundle": cell.bundle_key,
                "availability": result.availability(),
                "vlrt_pct": 100.0 * stats.vlrt_fraction,
                "amplification": result.retry_amplification(),
                "goodput": result.goodput(),
                "requests": stats.count,
                "drops": result.dropped_packets(),
                "errors_503": result.error_responses(),
                "sheds": sheds,
                "shed_pct": (100.0 * sheds / stats.count
                             if stats.count else 0.0),
                "ttr": time_to_recover(result),
            })
        return rows

    @staticmethod
    def _render_ttr(ttr: Optional[float]) -> str:
        if ttr is None:
            return "-"
        if ttr == float("inf"):
            return "never"
        return "{:.2f}".format(ttr)

    def render(self) -> str:
        """The grid as a fixed-width text table."""
        header = ("{:<15s} {:<18s} {:<24s} {:>6s} {:>7s} {:>5s} "
                  "{:>8s} {:>7s} {:>6s} {:>5s} {:>6s} {:>6s}").format(
                      "fault", "remedy", "bundle", "avail%", "vlrt%",
                      "amp", "goodput", "reqs", "drops", "503s",
                      "shed%", "ttr")
        lines = [header, "-" * len(header)]
        for row in self.rows():
            lines.append(
                "{:<15s} {:<18s} {:<24s} {:>6.2f} {:>7.3f} {:>5.2f} "
                "{:>8.1f} {:>7d} {:>6d} {:>5d} {:>6.2f} {:>6s}".format(
                    row["fault"], row["remedy"], row["bundle"],
                    100.0 * row["availability"], row["vlrt_pct"],
                    row["amplification"], row["goodput"],
                    row["requests"], row["drops"], row["errors_503"],
                    row["shed_pct"], self._render_ttr(row["ttr"])))
        return "\n".join(lines)


class ChaosSuite:
    """Cross fault scenarios x remedy bundles x balancing policies.

    Every cell runs the same profile, duration and seed, so differences
    within the grid are attributable to the cell's coordinates alone.
    Cells are independent experiments and fan out through
    :func:`repro.parallel.run_experiments`; fault schedules are keyed
    off the run seed (see ``FAULT_RNG_STREAM``), so a cell's numbers
    are identical under ``workers=1`` and ``workers=N``.
    """

    def __init__(self,
                 fault_keys: Optional[Sequence[str]] = None,
                 remedy_keys: Optional[Sequence[str]] = None,
                 bundle_keys: Optional[Sequence[str]] = None,
                 duration: float = CHAOS_DURATION,
                 seed: int = 42,
                 profile: Optional[ScaleProfile] = None,
                 topology: Optional[TopologySpec] = None) -> None:
        self.fault_keys = list(
            fault_keys if fault_keys is not None
            else sorted(set(FAULT_SCENARIOS) - ZONE_FAULT_KEYS))
        self.remedy_keys = list(remedy_keys if remedy_keys is not None
                                else ("none", "full"))
        self.bundle_keys = list(bundle_keys if bundle_keys is not None
                                else ("original_total_request",
                                      "current_load_modified"))
        for key in self.fault_keys:
            if key not in FAULT_SCENARIOS:
                raise ConfigurationError(
                    "unknown fault scenario {!r}".format(key))
            if key in ZONE_FAULT_KEYS and (
                    topology is None or not topology.zones):
                raise ConfigurationError(
                    "fault scenario {!r} targets zones; pass a zoned "
                    "topology to the suite".format(key))
        for key in self.remedy_keys:
            resolve_remedy(key)
        for key in self.bundle_keys:
            if key not in BUNDLES:
                raise ConfigurationError(
                    "unknown policy bundle {!r}".format(key))
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.duration = duration
        self.seed = seed
        self.profile = profile or ScaleProfile.smoke()
        self.topology = topology

    def cells(self) -> tuple[ChaosCell, ...]:
        """The grid, fault-major, in deterministic order."""
        cells = []
        for fault_key in self.fault_keys:
            specs = fault_specs(fault_key, self.duration)
            for remedy_key in self.remedy_keys:
                resilience, controlplane = resolve_remedy(remedy_key)
                for bundle_key in self.bundle_keys:
                    cells.append(ChaosCell(
                        fault_key=fault_key,
                        remedy_key=remedy_key,
                        bundle_key=bundle_key,
                        config=ExperimentConfig(
                            bundle_key=bundle_key,
                            profile=self.profile,
                            duration=self.duration,
                            seed=self.seed,
                            trace_lb_values=False,
                            trace_dispatches=False,
                            faults=specs,
                            resilience=resilience,
                            controlplane=controlplane,
                            topology=self.topology,
                        )))
        return tuple(cells)

    def run(self, workers: Optional[int] = 1, mix=None) -> ChaosReport:
        """Run every cell and collect the report.

        ``workers`` follows :func:`repro.parallel.run_experiments`:
        1 runs serially, N fans out over a process pool, ``None`` uses
        one worker per CPU.  Results are identical either way.
        """
        from repro.parallel import run_experiments

        cells = self.cells()
        results = run_experiments([cell.config for cell in cells],
                                  workers=workers, mix=mix)
        return ChaosReport(cells=cells, results=tuple(results))


# -- the Table-I rematch ----------------------------------------------------

#: Default fault axis of the rematch: the fault-free reference plus the
#: two fault kinds the paper's §V remedies were graded on (a slowed
#: member and network loss).
REMATCH_FAULTS: tuple[str, ...] = ("none", "slow", "packet_loss")


@dataclass(frozen=True)
class RematchCell:
    """One point of the bundle x fault rematch grid."""

    bundle_key: str
    fault_key: str
    config: ExperimentConfig

    @property
    def label(self) -> str:
        return "{}|{}".format(self.bundle_key, self.fault_key)


@dataclass(frozen=True)
class RematchReport:
    """Results of a rematch run, one summary-like object per cell."""

    cells: tuple[RematchCell, ...]
    results: tuple

    def rows(self) -> list[dict]:
        """One metrics dict per cell, grid keys included.

        ``probes_per_s`` is the probe-message overhead a probing policy
        pays (zero for every non-probing policy); ``sticky_violations``
        counts broken affinity promises (zero unless the bundle pins
        sessions).  Together with ``goodput`` they show both sides of
        each modern policy's trade.
        """
        rows = []
        for cell, result in zip(self.cells, self.results):
            stats = result.stats()
            rows.append({
                "bundle": cell.bundle_key,
                "fault": cell.fault_key,
                "vlrt_pct": 100.0 * stats.vlrt_fraction,
                "availability": result.availability(),
                "goodput": result.goodput(),
                "probes_per_s": result.probe_messages() / result.duration,
                "sticky_violations": result.sticky_violations(),
                "requests": stats.count,
                "drops": result.dropped_packets(),
                "errors_503": result.error_responses(),
                "ttr": time_to_recover(result),
            })
        return rows

    def render(self) -> str:
        """The grid as a fixed-width text table."""
        from repro.analysis.report import rematch_table

        return rematch_table(self.rows())


class PolicyRematch:
    """Rerun Table I with the modern-policy zoo across a fault axis.

    The grid crosses policy bundles (by default every Table-I row plus
    every modern bundle) with chaos fault scenarios (by default
    :data:`REMATCH_FAULTS`), one cell per combination, all sharing one
    profile, duration and seed — the headline question being whether
    probing/idle-queue policies sidestep the millibottleneck trap that
    sinks ``total_request``, and at what probe-message overhead.
    """

    def __init__(self,
                 bundle_keys: Optional[Sequence[str]] = None,
                 fault_keys: Optional[Sequence[str]] = None,
                 duration: float = CHAOS_DURATION,
                 seed: int = 42,
                 profile: Optional[ScaleProfile] = None) -> None:
        if bundle_keys is None:
            bundle_keys = [bundle.key for bundle
                           in TABLE1_BUNDLES + MODERN_BUNDLES]
        self.bundle_keys = list(dict.fromkeys(bundle_keys))
        self.fault_keys = list(fault_keys if fault_keys is not None
                               else REMATCH_FAULTS)
        for key in self.bundle_keys:
            if key not in BUNDLES:
                raise ConfigurationError(
                    "unknown policy bundle {!r} (one of {})".format(
                        key, ", ".join(sorted(BUNDLES))))
        for key in self.fault_keys:
            if key not in FAULT_SCENARIOS:
                raise ConfigurationError(
                    "unknown fault scenario {!r}".format(key))
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.duration = duration
        self.seed = seed
        self.profile = profile or ScaleProfile.smoke()

    def cells(self) -> tuple[RematchCell, ...]:
        """The grid, bundle-major, in deterministic order."""
        cells = []
        for bundle_key in self.bundle_keys:
            for fault_key in self.fault_keys:
                cells.append(RematchCell(
                    bundle_key=bundle_key,
                    fault_key=fault_key,
                    config=ExperimentConfig(
                        bundle_key=bundle_key,
                        profile=self.profile,
                        duration=self.duration,
                        seed=self.seed,
                        trace_lb_values=False,
                        trace_dispatches=False,
                        faults=fault_specs(fault_key, self.duration),
                    )))
        return tuple(cells)

    def run(self, workers: Optional[int] = 1, mix=None) -> RematchReport:
        """Run every cell and collect the report (see ChaosSuite.run)."""
        from repro.parallel import run_experiments

        cells = self.cells()
        results = run_experiments([cell.config for cell in cells],
                                  workers=workers, mix=mix)
        return RematchReport(cells=cells, results=tuple(results))
