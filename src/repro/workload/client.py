"""Closed-loop emulated clients.

Each client mimics one RUBBoS browser session: issue a request, wait
for the full response, think for an exponentially distributed period,
click the next page.  Closed-loop behaviour matters — it produces the
back-pressure that bounds queue growth and, during millibottlenecks,
the synchronized recovery bursts the paper observes.

With a :class:`~repro.resilience.retry.RetryPolicy` the client also
applies the application-level remedy: each attempt gets a deadline
covering both the TCP send (kernel retransmissions included) and the
wait for the response; failed attempts are retried with capped,
jittered exponential backoff up to ``max_attempts``.  An abandoned
attempt's request may still be processed by the system — that ghost
work is the retry-amplification cost the chaos suite measures.
Without a policy (the default) the code path is event-for-event
identical to the paper's client.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.metrics.recorder import CompletedRequest, ResponseTimeRecorder
from repro.netmodel.tcp import GaveUp, TcpSender
from repro.workload.request import Request
from repro.workload.session import Session

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.sockets import ListenSocket
    from repro.resilience.retry import RetryPolicy
    from repro.sim.core import Environment
    from repro.workload.mix import WorkloadMix

#: Mean think time between a response and the next click, seconds.
DEFAULT_THINK_TIME = 1.0


class Client:
    """One closed-loop emulated user bound to one web server."""

    _next_request_id = 0

    def __init__(self, env: "Environment", client_id: int,
                 socket: "ListenSocket", mix: "WorkloadMix",
                 recorder: ResponseTimeRecorder,
                 rng: np.random.Generator,
                 think_time: float = DEFAULT_THINK_TIME,
                 sender: TcpSender | None = None,
                 start_delay: float = 0.0,
                 retry: "RetryPolicy | None" = None) -> None:
        if think_time <= 0:
            raise ValueError("think_time must be positive")
        self.env = env
        self.client_id = client_id
        self.socket = socket
        self.recorder = recorder
        self.think_time = think_time
        self.session = Session(mix, rng)
        self.sender = sender or TcpSender(env)
        self._rng = rng
        self.retry = retry
        self.requests_completed = 0
        self.requests_abandoned = 0
        #: Attempts sent (== logical requests issued when not retrying).
        self.attempts_issued = 0
        #: Extra attempts beyond each logical request's first.
        self.retries_issued = 0
        self.process = env.process(self._run(start_delay))

    @classmethod
    def _allocate_request_id(cls) -> int:
        cls._next_request_id += 1
        return cls._next_request_id

    @classmethod
    def reset_request_ids(cls) -> None:
        """Restart the global request-id counter (for reproducible runs)."""
        cls._next_request_id = 0

    def _run(self, start_delay: float):
        if start_delay > 0:
            yield self.env.timeout(start_delay)
        if self.retry is not None:
            while True:
                yield from self._issue_with_retry(
                    self.session.next_interaction())
                yield self._think()
        while True:
            interaction = self.session.next_interaction()
            request = Request(self.env, self._allocate_request_id(),
                              interaction, self.client_id)
            self.attempts_issued += 1
            tracer = self.env.tracer
            if tracer is not None:
                tracer.begin(request.request_id,
                             interaction=interaction.name,
                             client=self.client_id)
            try:
                request.retransmissions = yield from self.sender.send(
                    self.socket, request)
            except GaveUp:
                # TCP gave up entirely; the user retries after thinking.
                request.completion.defuse()
                self.requests_abandoned += 1
                if tracer is not None:
                    tracer.end(request.request_id, status="abandoned")
                yield self._think()
                continue
            yield request.completion
            request.completed_at = self.env.now
            if tracer is not None:
                tracer.end(request.request_id, status="ok",
                           served_by=request.served_by,
                           retransmissions=request.retransmissions)
            self.requests_completed += 1
            self.recorder.record(CompletedRequest(
                request_id=request.request_id,
                interaction=interaction.name,
                started_at=request.created_at,
                finished_at=request.completed_at,
                retransmissions=request.retransmissions,
                served_by=request.served_by,
            ))
            yield self._think()

    def _issue_with_retry(self, interaction):
        """Process generator: one logical request under a RetryPolicy.

        Each attempt is its own :class:`Request` raced against a
        deadline; the deadline covers the TCP send (the send process is
        interrupted when it fires mid-retransmission) and the wait for
        the response.  The recorded response time spans from the first
        attempt to the winning completion, as the user experienced it.
        """
        policy = self.retry
        env = self.env
        first_started = env.now
        first_request_id: Optional[int] = None
        attempt = 1
        while True:
            request = Request(env, self._allocate_request_id(),
                              interaction, self.client_id)
            self.attempts_issued += 1
            if first_request_id is None:
                first_request_id = request.request_id
            tracer = env.tracer
            if tracer is not None:
                tracer.begin(request.request_id,
                             interaction=interaction.name,
                             client=self.client_id, attempt=attempt,
                             retry_of=(None if attempt == 1
                                       else first_request_id))
            deadline = env.timeout(policy.request_timeout)
            send = env.process(self.sender.send(self.socket, request))
            # The race may be decided while the send still runs; its
            # late failure (GaveUp, or the Interrupt below) must not
            # crash the kernel.
            send.defuse()
            completed = False
            try:
                yield send | deadline
                if send.triggered and send.ok:
                    request.retransmissions = send.value
                    yield request.completion | deadline
                    completed = request.completion.triggered
                elif not send.triggered:
                    # Deadline fired while TCP was still retransmitting.
                    send.interrupt("attempt deadline")
                # else: TCP gave up at the same instant the deadline
                # fired — a failed attempt either way.
            except GaveUp:
                pass
            if completed:
                request.completed_at = env.now
                if tracer is not None:
                    tracer.end(request.request_id, status="ok",
                               served_by=request.served_by,
                               retransmissions=request.retransmissions)
                self.requests_completed += 1
                self.recorder.record(CompletedRequest(
                    request_id=request.request_id,
                    interaction=interaction.name,
                    started_at=first_started,
                    finished_at=request.completed_at,
                    retransmissions=request.retransmissions,
                    served_by=request.served_by,
                ))
                return
            # The attempt failed; its request may still be served later
            # (ghost work — counted by retry amplification, not here).
            request.completion.defuse()
            if tracer is not None:
                tracer.end(request.request_id, status="deadline")
            if attempt >= policy.max_attempts:
                self.requests_abandoned += 1
                return
            self.retries_issued += 1
            backoff = policy.backoff_before(attempt, self._rng)
            attempt += 1
            if backoff > 0.0:
                yield env.timeout(backoff)

    def _think(self):
        return self.env.timeout(self._rng.exponential(self.think_time))
