"""Closed-loop emulated clients.

Each client mimics one RUBBoS browser session: issue a request, wait
for the full response, think for an exponentially distributed period,
click the next page.  Closed-loop behaviour matters — it produces the
back-pressure that bounds queue growth and, during millibottlenecks,
the synchronized recovery bursts the paper observes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.metrics.recorder import CompletedRequest, ResponseTimeRecorder
from repro.netmodel.tcp import GaveUp, TcpSender
from repro.workload.request import Request
from repro.workload.session import Session

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.sockets import ListenSocket
    from repro.sim.core import Environment
    from repro.workload.mix import WorkloadMix

#: Mean think time between a response and the next click, seconds.
DEFAULT_THINK_TIME = 1.0


class Client:
    """One closed-loop emulated user bound to one web server."""

    _next_request_id = 0

    def __init__(self, env: "Environment", client_id: int,
                 socket: "ListenSocket", mix: "WorkloadMix",
                 recorder: ResponseTimeRecorder,
                 rng: np.random.Generator,
                 think_time: float = DEFAULT_THINK_TIME,
                 sender: TcpSender | None = None,
                 start_delay: float = 0.0) -> None:
        if think_time <= 0:
            raise ValueError("think_time must be positive")
        self.env = env
        self.client_id = client_id
        self.socket = socket
        self.recorder = recorder
        self.think_time = think_time
        self.session = Session(mix, rng)
        self.sender = sender or TcpSender(env)
        self._rng = rng
        self.requests_completed = 0
        self.requests_abandoned = 0
        self.process = env.process(self._run(start_delay))

    @classmethod
    def _allocate_request_id(cls) -> int:
        cls._next_request_id += 1
        return cls._next_request_id

    @classmethod
    def reset_request_ids(cls) -> None:
        """Restart the global request-id counter (for reproducible runs)."""
        cls._next_request_id = 0

    def _run(self, start_delay: float):
        if start_delay > 0:
            yield self.env.timeout(start_delay)
        while True:
            interaction = self.session.next_interaction()
            request = Request(self.env, self._allocate_request_id(),
                              interaction, self.client_id)
            try:
                request.retransmissions = yield from self.sender.send(
                    self.socket, request)
            except GaveUp:
                # TCP gave up entirely; the user retries after thinking.
                request.completion.defuse()
                self.requests_abandoned += 1
                yield self._think()
                continue
            yield request.completion
            request.completed_at = self.env.now
            self.requests_completed += 1
            self.recorder.record(CompletedRequest(
                request_id=request.request_id,
                interaction=interaction.name,
                started_at=request.created_at,
                finished_at=request.completed_at,
                retransmissions=request.retransmissions,
                served_by=request.served_by,
            ))
            yield self._think()

    def _think(self):
        return self.env.timeout(self._rng.exponential(self.think_time))
