"""Markov session walks over the RUBBoS interaction graph."""

from __future__ import annotations

import numpy as np

from repro.workload.interactions import INTERACTIONS, Interaction
from repro.workload.mix import WorkloadMix


class Session:
    """One user's navigation state.

    Successive calls to :meth:`next_interaction` walk the mix's Markov
    chain; the first call samples from the initial distribution.
    """

    def __init__(self, mix: WorkloadMix, rng: np.random.Generator) -> None:
        self.mix = mix
        self._rng = rng
        self._current: str | None = None
        #: Count of interactions issued, by name.
        self.history: dict[str, int] = {}

    @property
    def current(self) -> str | None:
        """Name of the page the user is on (None before the first click)."""
        return self._current

    def next_interaction(self) -> Interaction:
        """Advance the session and return the interaction to issue."""
        if self._current is None:
            self._current = self.mix.first_state(self._rng)
        else:
            self._current = self.mix.next_state(self._current, self._rng)
        self.history[self._current] = self.history.get(self._current, 0) + 1
        return INTERACTIONS[self._current]

    def interactions_issued(self) -> int:
        return sum(self.history.values())
