"""Aggregated closed-loop clients for the large-N axis.

:class:`ClientPopulation` spawns one generator coroutine per emulated
user, which is the right model at RUBBoS scale (thousands of users,
tens of replicas) but hits a wall at mean-field scale: 10^5 users times
one Process + one Timeout per think period is tens of millions of
kernel events, and every per-user object lives on the heap at once.

:class:`AggregatedClientPopulation` replaces the per-user coroutines
with population *counts*:

* Users in think state are a single integer.  Once per ``tick`` the
  population draws how many of them finish thinking from the exact
  distribution — ``Binomial(thinking, 1 - exp(-tick / Z))`` for
  exponential think times — instead of scheduling one Timeout each.
* Each replica of the backend tier is an integer queue length plus at
  most one in-flight completion Timeout (FIFO, exponential service).
  Queue positions carry only their arrival timestamp, so per-request
  sojourn times are exact even though no request object exists.
* Dispatch uses JSQ(d) sampling — the O(d) choice rule of
  :class:`~repro.core.policies.PowerOfDPolicy` — with RNG draws taken
  from pre-filled buffers, so selection cost is flat in the replica
  count.

Memory is O(users + replicas) regardless of run length: counters,
bounded deques, and fixed RNG buffers — no per-user Process, no
per-request object, no growing sample list.  Mean sojourn time is
additionally cross-checkable against Little's law via the in-system
area integral the population maintains.

The open variant (``arrival_rate``) swaps the binomial think draw for
a Poisson arrival draw per tick and lets completed users leave, which
is the regime the mean-field prediction of
``benchmarks/test_largeN_meanfield.py`` is stated for.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.client import DEFAULT_THINK_TIME

#: RNG draws are buffered in chunks this size (refilled on exhaustion).
RNG_CHUNK = 65536


class _Buffered:
    """Chunked RNG draws: one vectorised call amortised over many uses."""

    __slots__ = ("_refill", "_buf", "_idx")

    def __init__(self, refill) -> None:
        self._refill = refill
        self._buf = refill()
        self._idx = 0

    def next(self):
        idx = self._idx
        buf = self._buf
        if idx == len(buf):
            buf = self._buf = self._refill()
            idx = 0
        self._idx = idx + 1
        return buf[idx]


class AggregatedClientPopulation:
    """A closed (or open) client population without per-user processes.

    Parameters
    ----------
    env:
        Simulation environment.
    replicas:
        Number of backend replicas (each an independent FIFO queue).
    service_time:
        Mean of the exponential service time (1 / mu).
    users:
        Closed mode: population size.  Ignored in open mode.
    think_time:
        Closed mode: mean exponential think time Z.
    arrival_rate:
        If given, run *open*: users arrive Poisson(rate) and leave on
        completion; ``users``/``think_time`` are ignored.
    d:
        JSQ(d) sample size (1 = uniform random dispatch).
    tick:
        Aggregation period for think/arrival draws.  Smaller ticks
        approach the per-user event-driven model; the default of one
        tenth of a mean service time keeps the discretisation error
        well under the mean-field tolerance.
    seed:
        Private RNG seed (the population never touches the
        environment's RNG stream).
    """

    def __init__(self, env, replicas: int, service_time: float,
                 users: int = 0,
                 think_time: float = DEFAULT_THINK_TIME,
                 arrival_rate: Optional[float] = None,
                 d: int = 2,
                 tick: Optional[float] = None,
                 seed: int = 1) -> None:
        if replicas < 1:
            raise ConfigurationError("need at least one replica")
        if service_time <= 0:
            raise ConfigurationError("service_time must be positive")
        if d < 1:
            raise ConfigurationError("d must be >= 1")
        if arrival_rate is None and users < 1:
            raise ConfigurationError("closed mode needs users >= 1")
        if arrival_rate is None and think_time <= 0:
            raise ConfigurationError("think_time must be positive")
        self.env = env
        self.replicas = replicas
        self.service_time = service_time
        self.users = users
        self.think_time = think_time
        self.arrival_rate = arrival_rate
        self.d = d
        self.tick = tick if tick is not None else service_time / 10.0
        if self.tick <= 0:
            raise ConfigurationError("tick must be positive")

        rng = np.random.default_rng(seed)
        self._rng = rng
        self._svc = _Buffered(
            lambda: rng.standard_exponential(RNG_CHUNK) * service_time)
        self._pick = _Buffered(
            lambda: rng.integers(0, replicas, RNG_CHUNK))

        #: Jobs at each replica (queued + in service).
        self.queues = [0] * replicas
        #: FIFO arrival timestamps per replica (len == queues[i]).
        self._arrivals = [deque() for _ in range(replicas)]
        #: One reusable completion callback per replica — allocated
        #: once, so the steady state schedules zero new objects beyond
        #: the pooled Timeouts themselves.
        self._complete = [self._make_complete(i) for i in range(replicas)]
        #: Users currently thinking (closed mode).
        self.thinking = users if arrival_rate is None else 0
        #: Aggregate counters.
        self.dispatched = 0
        self.completions = 0
        self.sojourn_sum = 0.0
        self.sojourn_max = 0.0
        #: Little's-law area integral of the in-system job count.
        self._in_system = 0
        self._area = 0.0
        self._area_since = 0.0
        self._process = env.process(self._run())

    # -- dispatch ----------------------------------------------------------
    def _select(self) -> int:
        """JSQ(d): sample ``d`` replicas with replacement, least loaded."""
        pick = self._pick
        queues = self.queues
        best = pick.next()
        load = queues[best]
        for _ in range(self.d - 1):
            other = pick.next()
            if queues[other] < load:
                best = other
                load = queues[other]
        return best

    def _dispatch(self, count: int, now: float) -> None:
        env = self.env
        queues = self.queues
        for _ in range(count):
            idx = self._select()
            self._arrivals[idx].append(now)
            queues[idx] += 1
            self.dispatched += 1
            if queues[idx] == 1:
                timeout = env.timeout(self._svc.next())
                timeout.callbacks.append(self._complete[idx])
        self._area += self._in_system * (now - self._area_since)
        self._area_since = now
        self._in_system += count

    def _make_complete(self, idx: int):
        """Build replica ``idx``'s reusable completion callback."""

        def complete(_event) -> None:
            env = self.env
            now = env._now
            sojourn = now - self._arrivals[idx].popleft()
            self.queues[idx] -= 1
            self.completions += 1
            self.sojourn_sum += sojourn
            if sojourn > self.sojourn_max:
                self.sojourn_max = sojourn
            self._area += self._in_system * (now - self._area_since)
            self._area_since = now
            self._in_system -= 1
            if self.arrival_rate is None:
                self.thinking += 1
            if self.queues[idx]:
                timeout = env.timeout(self._svc.next())
                timeout.callbacks.append(complete)

        return complete

    # -- think/arrival loop ------------------------------------------------
    def _run(self):
        from repro.sim.events import Interrupt

        env = self.env
        tick = self.tick
        try:
            if self.arrival_rate is None:
                # Exact per-tick transition for exponential think
                # times: each thinking user independently finishes
                # with probability 1 - exp(-tick / Z).
                p_done = -np.expm1(-tick / self.think_time)
                while True:
                    yield env.timeout(tick)
                    if self.thinking:
                        done = int(self._rng.binomial(self.thinking,
                                                      p_done))
                        if done:
                            self.thinking -= done
                            self._dispatch(done, env._now)
            else:
                mean_arrivals = self.arrival_rate * tick
                while True:
                    yield env.timeout(tick)
                    arrived = int(self._rng.poisson(mean_arrivals))
                    if arrived:
                        self._dispatch(arrived, env._now)
        except Interrupt:
            return

    def stop(self) -> None:
        """Interrupt the think/arrival loop (in-flight services drain)."""
        if self._process.is_alive:
            self._process.interrupt()

    # -- metrics -----------------------------------------------------------
    @property
    def in_system(self) -> int:
        """Jobs currently queued or in service across all replicas."""
        return self._in_system

    @property
    def mean_sojourn(self) -> float:
        """Mean response time (queueing + service) over completions."""
        if not self.completions:
            return 0.0
        return self.sojourn_sum / self.completions

    @property
    def mean_waiting(self) -> float:
        """Mean queueing delay: sojourn minus one mean service time."""
        return max(0.0, self.mean_sojourn - self.service_time)

    def littles_law_sojourn(self, until: Optional[float] = None) -> float:
        """Mean sojourn via L = lambda * T (cross-check for the direct sum).

        ``T = area(in-system) / completions`` — both maintained in O(1)
        per event, so the check costs nothing extra.
        """
        if not self.completions:
            return 0.0
        now = self.env.now if until is None else until
        area = self._area + self._in_system * (now - self._area_since)
        return area / self.completions

    def __repr__(self) -> str:
        return ("<AggregatedClientPopulation replicas={} users={} "
                "completions={}>".format(
                    self.replicas, self.users, self.completions))
