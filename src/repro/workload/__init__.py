"""RUBBoS workload substrate.

Reimplements the RUBBoS bulletin-board benchmark's client side: the 24
web interactions, the browsing-only and read/write mixes as Markov
chains, per-user sessions, and closed-loop emulated clients with
exponential think times.
"""

from repro.workload.aggregate import AggregatedClientPopulation
from repro.workload.bursty import BurstProfile, OpenLoopGenerator
from repro.workload.client import DEFAULT_THINK_TIME, Client
from repro.workload.generator import ClientPopulation
from repro.workload.interactions import INTERACTIONS, Interaction, get_interaction
from repro.workload.mix import (
    BROWSING_ONLY_WEIGHTS,
    READ_WRITE_WEIGHTS,
    WorkloadMix,
    browsing_only_mix,
    read_write_mix,
)
from repro.workload.request import Request
from repro.workload.session import Session

__all__ = [
    "Interaction",
    "INTERACTIONS",
    "get_interaction",
    "WorkloadMix",
    "browsing_only_mix",
    "read_write_mix",
    "BROWSING_ONLY_WEIGHTS",
    "READ_WRITE_WEIGHTS",
    "Session",
    "Request",
    "Client",
    "BurstProfile",
    "OpenLoopGenerator",
    "ClientPopulation",
    "AggregatedClientPopulation",
    "DEFAULT_THINK_TIME",
]
