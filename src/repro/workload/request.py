"""The unit of work that flows through the n-tier system."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event
from repro.workload.interactions import Interaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request:
    """One client HTTP request travelling through the tiers.

    The client creates the request and waits on :attr:`completion`;
    the web tier triggers that event with the response.  Components
    annotate the request as it travels (which app server handled it,
    how many times its packet was dropped) so the metrics layer can
    attribute outcomes afterwards.
    """

    __slots__ = (
        "request_id", "interaction", "client_id", "created_at",
        "completion", "retransmissions", "served_by", "accepted_at",
        "dispatched_at", "completed_at", "cancelled",
    )

    def __init__(self, env: "Environment", request_id: int,
                 interaction: Interaction, client_id: int) -> None:
        self.request_id = request_id
        self.interaction = interaction
        self.client_id = client_id
        self.created_at = env.now
        #: Triggered by the web tier when the response is sent.
        self.completion = Event(env)
        #: Filled in by the TCP layer.
        self.retransmissions = 0
        #: Name of the application server that processed the request.
        self.served_by: Optional[str] = None
        #: When the web tier dequeued the request from its accept queue.
        self.accepted_at: Optional[float] = None
        #: When the load balancer dispatched it to the app tier.
        self.dispatched_at: Optional[float] = None
        #: When the response reached the client.
        self.completed_at: Optional[float] = None
        #: Cooperative-cancellation flag: a hedging race that has
        #: already been won sets this so the losing dispatch stops at
        #: its next retry round instead of re-entering the balancer.
        self.cancelled = False

    @property
    def traffic_bytes(self) -> int:
        """Bytes moved for this request (total_traffic's accounting)."""
        return self.interaction.traffic_bytes

    def __repr__(self) -> str:
        return "<Request #{} {} client={}>".format(
            self.request_id, self.interaction.name, self.client_id)
