"""The 24 RUBBoS web interactions.

RUBBoS models a Slashdot-style bulletin board with 24 interaction
types spanning story browsing, comment reading/posting, searching,
user registration, and moderation.  Each interaction carries the
resource demands our tier models consume: web-tier CPU, app-tier CPU,
database queries, message sizes (the ``total_traffic`` policy ranks by
these), and the log bytes the app tier writes per request — the dirty
pages that ultimately cause millibottlenecks.

Demands are calibrated for the scaled simulation testbed (see
``repro.cluster.config``), preserving the paper's utilisation *shape*:
web tier busiest (~45 % at full load), app tier moderate (~20 %),
database lightly loaded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Interaction:
    """One RUBBoS web interaction type.

    All durations are seconds of CPU demand on one core; sizes are in
    bytes.  ``apache_cpu`` is spent in the web tier (parsing, proxying,
    response assembly), ``tomcat_cpu`` in the servlet container, and
    ``mysql_cpu`` per database query, of which there are
    ``db_queries``.
    """

    name: str
    is_write: bool
    apache_cpu: float
    tomcat_cpu: float
    mysql_cpu: float
    db_queries: int
    request_bytes: int
    response_bytes: int
    log_bytes: int

    def __post_init__(self) -> None:
        if min(self.apache_cpu, self.tomcat_cpu, self.mysql_cpu) < 0:
            raise WorkloadError("negative CPU demand in " + self.name)
        if self.db_queries < 0:
            raise WorkloadError("negative query count in " + self.name)
        if min(self.request_bytes, self.response_bytes, self.log_bytes) < 0:
            raise WorkloadError("negative size in " + self.name)

    @property
    def traffic_bytes(self) -> int:
        """Read + write sizes, the quantity total_traffic accumulates."""
        return self.request_bytes + self.response_bytes


def _interaction(name: str, is_write: bool, weight_class: str,
                 db_queries: int, response_kb: float,
                 log_bytes: int = 600) -> Interaction:
    """Build an interaction from its qualitative profile.

    ``weight_class`` sets CPU demand: "light" (static-ish pages),
    "medium" (single-entity dynamic pages), "heavy" (listing/search
    pages).
    """
    cpu = {
        "light": (0.0004, 0.0008, 0.0001),
        "medium": (0.0006, 0.0015, 0.00015),
        "heavy": (0.0008, 0.0025, 0.0002),
    }
    try:
        apache_cpu, tomcat_cpu, mysql_cpu = cpu[weight_class]
    except KeyError:
        raise WorkloadError("unknown weight class " + weight_class) from None
    return Interaction(
        name=name,
        is_write=is_write,
        apache_cpu=apache_cpu,
        tomcat_cpu=tomcat_cpu,
        mysql_cpu=mysql_cpu,
        db_queries=db_queries,
        request_bytes=400 if not is_write else 900,
        response_bytes=int(response_kb * 1024),
        log_bytes=log_bytes,
    )


#: The 24 RUBBoS interactions, keyed by name.
INTERACTIONS: dict[str, Interaction] = {
    interaction.name: interaction for interaction in [
        _interaction("StoriesOfTheDay", False, "heavy", 3, 24.0),
        _interaction("Default", False, "light", 0, 4.0),
        _interaction("BrowseCategories", False, "medium", 1, 8.0),
        _interaction("BrowseStoriesByCategory", False, "heavy", 2, 20.0),
        _interaction("OlderStories", False, "heavy", 2, 20.0),
        _interaction("ViewStory", False, "medium", 2, 16.0),
        _interaction("ViewComment", False, "medium", 2, 12.0),
        _interaction("PostCommentForm", False, "light", 1, 6.0),
        _interaction("StoreComment", True, "medium", 3, 4.0, log_bytes=900),
        _interaction("SubmitStoryForm", False, "light", 0, 5.0),
        _interaction("StoreStory", True, "medium", 3, 4.0, log_bytes=1100),
        _interaction("Search", False, "light", 0, 5.0),
        _interaction("SearchInStories", False, "heavy", 3, 18.0),
        _interaction("SearchInComments", False, "heavy", 3, 18.0),
        _interaction("SearchInUsers", False, "heavy", 2, 10.0),
        _interaction("ViewUserInfo", False, "medium", 1, 8.0),
        _interaction("RegisterUserForm", False, "light", 0, 5.0),
        _interaction("RegisterUser", True, "medium", 2, 4.0, log_bytes=800),
        _interaction("AuthorLogin", False, "light", 1, 5.0),
        _interaction("AuthorTasks", False, "medium", 1, 8.0),
        _interaction("ReviewStories", False, "heavy", 2, 16.0),
        _interaction("AcceptStory", True, "medium", 2, 4.0, log_bytes=800),
        _interaction("RejectStory", True, "medium", 2, 4.0, log_bytes=800),
        _interaction("ModerateComment", True, "medium", 2, 4.0, log_bytes=800),
    ]
}

if len(INTERACTIONS) != 24:  # pragma: no cover - module-load invariant
    raise WorkloadError("RUBBoS defines exactly 24 interactions")


def get_interaction(name: str) -> Interaction:
    """Look up an interaction by name."""
    try:
        return INTERACTIONS[name]
    except KeyError:
        raise WorkloadError("unknown interaction: " + name) from None
