"""RUBBoS workload mixes and the Markov transition matrix between pages.

RUBBoS ships two canonical mixes: *browsing-only* (reads exclusively)
and the *read/write* interaction mix (about 10 % writes).  Client
sessions follow a Markov chain over the 24 interactions: the next page
depends on the current one (you post a comment from a story page, not
from the registration form).

The matrix is assembled from the mix's stationary weights plus
structural affinities, then row-normalised; properties of a valid
stochastic matrix are enforced and unit-tested.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import WorkloadError
from repro.workload.interactions import INTERACTIONS

#: Stationary visit weights of the browsing-only mix.
BROWSING_ONLY_WEIGHTS: dict[str, float] = {
    "StoriesOfTheDay": 14.0,
    "Default": 6.0,
    "BrowseCategories": 8.0,
    "BrowseStoriesByCategory": 12.0,
    "OlderStories": 6.0,
    "ViewStory": 22.0,
    "ViewComment": 16.0,
    "PostCommentForm": 0.0,
    "StoreComment": 0.0,
    "SubmitStoryForm": 0.0,
    "StoreStory": 0.0,
    "Search": 4.0,
    "SearchInStories": 4.0,
    "SearchInComments": 2.0,
    "SearchInUsers": 1.0,
    "ViewUserInfo": 3.0,
    "RegisterUserForm": 0.0,
    "RegisterUser": 0.0,
    "AuthorLogin": 1.0,
    "AuthorTasks": 0.5,
    "ReviewStories": 0.5,
    "AcceptStory": 0.0,
    "RejectStory": 0.0,
    "ModerateComment": 0.0,
}

#: Stationary visit weights of the read/write mix (~10 % writes).
READ_WRITE_WEIGHTS: dict[str, float] = {
    "StoriesOfTheDay": 12.0,
    "Default": 5.0,
    "BrowseCategories": 7.0,
    "BrowseStoriesByCategory": 10.0,
    "OlderStories": 5.0,
    "ViewStory": 19.0,
    "ViewComment": 14.0,
    "PostCommentForm": 3.0,
    "StoreComment": 3.0,
    "SubmitStoryForm": 1.0,
    "StoreStory": 1.0,
    "Search": 3.0,
    "SearchInStories": 3.0,
    "SearchInComments": 2.0,
    "SearchInUsers": 1.0,
    "ViewUserInfo": 2.5,
    "RegisterUserForm": 1.0,
    "RegisterUser": 1.0,
    "AuthorLogin": 1.5,
    "AuthorTasks": 1.0,
    "ReviewStories": 1.0,
    "AcceptStory": 1.0,
    "RejectStory": 0.5,
    "ModerateComment": 1.5,
}

#: Structural affinities: (from, to) pairs that are boosted because the
#: target is a natural next click from the source page.
_AFFINITIES: dict[tuple[str, str], float] = {
    ("StoriesOfTheDay", "ViewStory"): 3.0,
    ("BrowseStoriesByCategory", "ViewStory"): 3.0,
    ("OlderStories", "ViewStory"): 3.0,
    ("ViewStory", "ViewComment"): 3.0,
    ("ViewStory", "PostCommentForm"): 2.0,
    ("ViewComment", "PostCommentForm"): 2.0,
    ("ViewComment", "ViewComment"): 1.5,
    ("PostCommentForm", "StoreComment"): 30.0,
    ("SubmitStoryForm", "StoreStory"): 30.0,
    ("RegisterUserForm", "RegisterUser"): 30.0,
    ("Search", "SearchInStories"): 8.0,
    ("Search", "SearchInComments"): 5.0,
    ("Search", "SearchInUsers"): 3.0,
    ("AuthorLogin", "AuthorTasks"): 20.0,
    ("AuthorTasks", "ReviewStories"): 10.0,
    ("ReviewStories", "AcceptStory"): 6.0,
    ("ReviewStories", "RejectStory"): 3.0,
    ("ViewComment", "ModerateComment"): 1.5,
    ("ViewUserInfo", "ViewComment"): 2.0,
}


class WorkloadMix:
    """A named mix: stationary weights + derived transition matrix."""

    def __init__(self, name: str, weights: Mapping[str, float]) -> None:
        unknown = set(weights) - set(INTERACTIONS)
        if unknown:
            raise WorkloadError("weights for unknown interactions: "
                                + ", ".join(sorted(unknown)))
        missing = set(INTERACTIONS) - set(weights)
        if missing:
            raise WorkloadError("missing weights for: "
                                + ", ".join(sorted(missing)))
        if all(weight <= 0 for weight in weights.values()):
            raise WorkloadError("all weights are zero")
        self.name = name
        self.states = list(INTERACTIONS)
        self._index = {name: i for i, name in enumerate(self.states)}
        self.weights = np.array([max(0.0, float(weights[s]))
                                 for s in self.states])
        self.transition_matrix = self._build_matrix()

    def _build_matrix(self) -> np.ndarray:
        size = len(self.states)
        matrix = np.tile(self.weights, (size, 1))
        for (source, target), boost in _AFFINITIES.items():
            i, j = self._index[source], self._index[target]
            if self.weights[j] > 0:
                matrix[i, j] += boost * self.weights.sum() / 100.0 * 10
        # Rows for zero-weight (unreachable) states still need a valid
        # distribution; give them the stationary weights.
        row_sums = matrix.sum(axis=1, keepdims=True)
        return matrix / row_sums

    # -- queries ------------------------------------------------------------
    def initial_distribution(self) -> np.ndarray:
        """Stationary weights normalised into a start-page distribution."""
        return self.weights / self.weights.sum()

    def next_state(self, current: str, rng: np.random.Generator) -> str:
        """Sample the next interaction after ``current``."""
        row = self.transition_matrix[self._index[current]]
        return self.states[int(rng.choice(len(self.states), p=row))]

    def first_state(self, rng: np.random.Generator) -> str:
        """Sample a session's first interaction."""
        dist = self.initial_distribution()
        return self.states[int(rng.choice(len(self.states), p=dist))]

    @property
    def write_fraction(self) -> float:
        """Stationary fraction of write interactions."""
        total = self.weights.sum()
        writes = sum(self.weights[self._index[name]]
                     for name, interaction in INTERACTIONS.items()
                     if interaction.is_write)
        return float(writes / total)


def browsing_only_mix() -> WorkloadMix:
    """The RUBBoS browsing-only mix (no writes)."""
    return WorkloadMix("browsing_only", BROWSING_ONLY_WEIGHTS)


def read_write_mix() -> WorkloadMix:
    """The RUBBoS read/write interaction mix (~10 % writes)."""
    return WorkloadMix("read_write", READ_WRITE_WEIGHTS)
