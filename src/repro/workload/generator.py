"""Client population driver.

Spawns the closed-loop clients against the web tier, reproducing the
paper's topology rule (Fig. 14): client nodes are statically assigned
to specific web servers, so each web server sees its own independent
client population of equal size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.recorder import ResponseTimeRecorder
from repro.netmodel.tcp import RetransmissionPolicy, TcpSender
from repro.workload.client import DEFAULT_THINK_TIME, Client
from repro.workload.mix import WorkloadMix

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.sockets import ListenSocket
    from repro.resilience.retry import RetryPolicy
    from repro.sim.core import Environment


class ClientPopulation:
    """All emulated clients of one experiment.

    Parameters
    ----------
    env:
        Simulation environment.
    sockets:
        Web-tier listen sockets; clients are split evenly across them.
    total_clients:
        Total closed-loop users.
    mix:
        Workload mix to draw sessions from.
    rng:
        Seeded random generator; the single source of randomness.
    think_time:
        Mean think time in seconds.
    retransmission:
        Client TCP retransmission policy.
    ramp_up:
        Client start times are spread uniformly over this many seconds
        so the system does not see a synchronized thundering herd.
    retry:
        Optional application-level retry policy (see
        :class:`~repro.resilience.retry.RetryPolicy`); ``None`` keeps
        the paper's non-retrying clients.
    """

    def __init__(self, env: "Environment",
                 sockets: Sequence["ListenSocket"],
                 total_clients: int,
                 mix: WorkloadMix,
                 rng: np.random.Generator,
                 think_time: float = DEFAULT_THINK_TIME,
                 retransmission: RetransmissionPolicy | None = None,
                 ramp_up: float = 1.0,
                 retry: "RetryPolicy | None" = None) -> None:
        if not sockets:
            raise ConfigurationError("need at least one web-tier socket")
        if total_clients < 1:
            raise ConfigurationError("total_clients must be >= 1")
        if ramp_up < 0:
            raise ConfigurationError("ramp_up must be >= 0")
        self.env = env
        self.recorder = ResponseTimeRecorder("population")
        self.sender = TcpSender(env, retransmission)
        self.clients: list[Client] = []
        Client.reset_request_ids()
        for client_id in range(total_clients):
            socket = sockets[client_id % len(sockets)]
            start_delay = float(rng.uniform(0.0, ramp_up)) if ramp_up else 0.0
            self.clients.append(Client(
                env=env,
                client_id=client_id,
                socket=socket,
                mix=mix,
                recorder=self.recorder,
                rng=rng,
                think_time=think_time,
                sender=self.sender,
                start_delay=start_delay,
                retry=retry,
            ))

    def __len__(self) -> int:
        return len(self.clients)

    @property
    def requests_completed(self) -> int:
        return sum(client.requests_completed for client in self.clients)

    @property
    def requests_abandoned(self) -> int:
        return sum(client.requests_abandoned for client in self.clients)

    @property
    def attempts_issued(self) -> int:
        """Attempts sent across all clients (retries included)."""
        return sum(client.attempts_issued for client in self.clients)

    @property
    def retries_issued(self) -> int:
        """Application-level retries beyond each request's first attempt."""
        return sum(client.retries_issued for client in self.clients)

    @property
    def packets_dropped(self) -> int:
        """Packets lost to accept-queue overflow (then retransmitted)."""
        return self.sender.packets_dropped
