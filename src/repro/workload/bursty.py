"""Open-loop and bursty request generation.

The paper's §III-A lists *bursty workloads* among the causes of
millibottlenecks: a short arrival burst can transiently saturate a
tier's CPU with no OS involvement at all.  The closed-loop RUBBoS
clients cannot express this (their arrival rate is self-limiting), so
this module adds an open-loop generator whose rate is modulated by an
on/off burst process — the standard Markov-modulated Poisson shape.

Open-loop requests are fire-and-forget from the generator's point of
view; completions are still recorded per request, so every metric and
analysis works unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.recorder import CompletedRequest, ResponseTimeRecorder
from repro.netmodel.tcp import GaveUp, RetransmissionPolicy, TcpSender
from repro.workload.mix import WorkloadMix
from repro.workload.request import Request
from repro.workload.session import Session

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.sockets import ListenSocket
    from repro.sim.core import Environment


class BurstProfile:
    """Markov-modulated rate: quiet baseline with on/off bursts.

    Parameters
    ----------
    base_rate:
        Requests per second outside bursts.
    burst_rate:
        Requests per second inside bursts.
    burst_duration:
        Mean burst length in seconds (exponential).
    quiet_duration:
        Mean gap between bursts in seconds (exponential).
    """

    def __init__(self, base_rate: float, burst_rate: float,
                 burst_duration: float = 0.2,
                 quiet_duration: float = 2.0) -> None:
        if base_rate <= 0 or burst_rate <= 0:
            raise ConfigurationError("rates must be positive")
        if burst_rate < base_rate:
            raise ConfigurationError("burst_rate must be >= base_rate")
        if burst_duration <= 0 or quiet_duration <= 0:
            raise ConfigurationError("durations must be positive")
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.burst_duration = burst_duration
        self.quiet_duration = quiet_duration

    @property
    def burstiness(self) -> float:
        """Peak-to-mean arrival rate ratio."""
        on = self.burst_duration / (self.burst_duration
                                    + self.quiet_duration)
        mean = self.burst_rate * on + self.base_rate * (1 - on)
        return self.burst_rate / mean

    @classmethod
    def steady(cls, rate: float) -> "BurstProfile":
        """Plain Poisson arrivals at ``rate`` (degenerate profile)."""
        return cls(base_rate=rate, burst_rate=rate)


class OpenLoopGenerator:
    """Sends requests at a (possibly bursty) rate, ignoring responses.

    Each generated request runs through a private process that handles
    TCP retransmission and records the completion; unlike the closed
    loop, new arrivals never wait for old ones.
    """

    _next_request_id = 10_000_000  # distinct from closed-loop ids

    def __init__(self, env: "Environment", socket: "ListenSocket",
                 mix: WorkloadMix, profile: BurstProfile,
                 rng: np.random.Generator,
                 recorder: Optional[ResponseTimeRecorder] = None,
                 retransmission: Optional[RetransmissionPolicy] = None
                 ) -> None:
        self.env = env
        self.socket = socket
        self.profile = profile
        self.recorder = recorder or ResponseTimeRecorder("open-loop")
        self.sender = TcpSender(env, retransmission)
        self._rng = rng
        self._session = Session(mix, rng)
        self._bursting = False
        self.requests_sent = 0
        self.requests_abandoned = 0
        self._rate_process = env.process(self._modulate())
        self._arrival_process = env.process(self._generate())

    @property
    def bursting(self) -> bool:
        """Whether the generator is currently inside a burst."""
        return self._bursting

    @property
    def current_rate(self) -> float:
        return (self.profile.burst_rate if self._bursting
                else self.profile.base_rate)

    def _modulate(self):
        if self.profile.burst_rate == self.profile.base_rate:
            return  # steady profile: nothing to modulate
        while True:
            yield self.env.timeout(
                self._rng.exponential(self.profile.quiet_duration))
            self._bursting = True
            yield self.env.timeout(
                self._rng.exponential(self.profile.burst_duration))
            self._bursting = False

    def _generate(self):
        while True:
            yield self.env.timeout(
                self._rng.exponential(1.0 / self.current_rate))
            interaction = self._session.next_interaction()
            type(self)._next_request_id += 1
            request = Request(self.env, self._next_request_id,
                              interaction, client_id=-1)
            self.requests_sent += 1
            self.env.process(self._deliver(request))

    def _deliver(self, request: Request):
        try:
            request.retransmissions = yield from self.sender.send(
                self.socket, request)
        except GaveUp:
            request.completion.defuse()
            self.requests_abandoned += 1
            return
        yield request.completion
        self.recorder.record(CompletedRequest(
            request_id=request.request_id,
            interaction=request.interaction.name,
            started_at=request.created_at,
            finished_at=self.env.now,
            retransmissions=request.retransmissions,
            served_by=request.served_by,
        ))
