"""Shared behaviour for tier servers."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.osmodel.host import Host

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class TierServer:
    """Base class: a named server bound to a host machine.

    Subclasses expose two queue views used by the paper's figures:

    * ``queue_length`` — requests waiting to be picked up;
    * ``in_server`` — waiting plus in-service, the "queued requests in
      the tier" quantity plotted in Figs. 2(b), 8, 10(a), 12.
    """

    def __init__(self, env: "Environment", name: str, host: Host) -> None:
        self.env = env
        self.name = name
        self.host = host
        #: Total requests fully processed by this server.
        self.requests_completed = 0
        #: Total request+response bytes moved by this server.
        self.bytes_served = 0
        #: Set by fault injection: a crashed server refuses everything.
        self._crashed = False

    @property
    def crashed(self) -> bool:
        """Whether the server process is down (fault injection)."""
        return self._crashed

    def crash(self) -> None:
        """Fail-stop the server: it refuses all new work.

        In-flight requests are allowed to drain (fail-stop after
        drain); what matters to the load balancer study is that every
        subsequent endpoint probe fails, exercising the Busy -> Error
        escalation path of the 3-state machine.
        """
        self._crashed = True

    def recover(self) -> None:
        """Bring a crashed server back."""
        self._crashed = False

    @property
    def responsive(self) -> bool:
        """Whether a connection attempt would get a timely answer.

        During a millibottleneck every core sits in iowait, so nothing
        — not even a connection handshake or mod_jk CPing — gets a CPU
        slice.  The kernel still *enqueues* packets (see
        :class:`~repro.netmodel.sockets.ListenSocket`), which is
        exactly why the load balancer mistakes a stalled server for an
        Available one.
        """
        if self._crashed:
            return False
        return self.host.cpu.iowait.busy_slots < self.host.cpu.cores

    @property
    def queue_length(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def in_server(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<{} {} in_server={}>".format(
            type(self).__name__, self.name, self.in_server)
