"""Shared behaviour and the generalized tier service models.

A tier server used to come in exactly three bespoke flavours — Apache,
Tomcat, MySQL.  This module factors those into *service models* any
tier of a declarative topology (:mod:`repro.cluster.spec`) can be
configured with:

* :class:`FrontendTier` — accept socket + worker pool, dispatches
  downstream through an attached :class:`Dispatcher` (the Apache
  service model: where the paper's packet drops happen);
* :class:`WorkerTier` — unbounded job queue + thread pool, with a
  pluggable *downstream call pattern* (the Tomcat service model);
* :class:`PooledTier` — passive bounded connection pool; work runs on
  the caller's process, or on a spawned one when the tier sits behind
  a balancer (the MySQL service model).

The downstream call pattern is itself composable:

* :class:`InlineDownstream` — run the downstream server's ``query``
  generator on the calling worker thread (the classic Tomcat→MySQL
  wiring: one servlet thread holds one DB connection end to end);
* :class:`DispatchDownstream` — forward through a dispatcher (a
  :class:`~repro.core.balancer.LoadBalancer` or
  :class:`~repro.core.balancer.DirectDispatcher`), which is what lets
  a mid-chain tier both receive balanced traffic and balance over the
  next tier — balancer-per-boundary.

``ApacheServer``/``TomcatServer``/``MySqlServer`` remain as thin
configurations of these models, so all classic topologies (and their
golden event traces) are unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from repro.errors import ConfigurationError, NoCandidateError
from repro.netmodel.sockets import ListenSocket
from repro.osmodel.host import Host
from repro.sim.events import Event
from repro.sim.queues import Store
from repro.sim.resources import Resource
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Fraction of a worker tier's CPU spent before the downstream call
#: (Tomcat's pre-database servlet work).
PRE_DB_FRACTION = 0.6


class Dispatcher(Protocol):
    """Anything that can forward a request to the next tier."""

    def dispatch(self, request: Request):
        """Process generator yielding until the response is available."""
        ...  # pragma: no cover


class TierServer:
    """Base class: a named server bound to a host machine.

    Subclasses expose two queue views used by the paper's figures:

    * ``queue_length`` — requests waiting to be picked up;
    * ``in_server`` — waiting plus in-service, the "queued requests in
      the tier" quantity plotted in Figs. 2(b), 8, 10(a), 12.

    ``role`` is the tier's span-name prefix (``"apache"``, ``"tomcat"``,
    ``"mysql"``, or a declarative tier's name), so per-request traces
    stay attributable in arbitrary topologies.
    """

    def __init__(self, env: "Environment", name: str, host: Host,
                 role: str = "tier") -> None:
        self.env = env
        self.name = name
        self.host = host
        self.role = role
        #: Total requests fully processed by this server.
        self.requests_completed = 0
        #: Requests answered with an error because no downstream
        #: candidate existed (web-tier 503s; a worker tier's degraded
        #: no-database responses).
        self.error_responses = 0
        #: Total request+response bytes moved by this server.
        self.bytes_served = 0
        #: Set by fault injection: a crashed server refuses everything.
        self._crashed = False

    @property
    def crashed(self) -> bool:
        """Whether the server process is down (fault injection)."""
        return self._crashed

    def crash(self) -> None:
        """Fail-stop the server: it refuses all new work.

        In-flight requests are allowed to drain (fail-stop after
        drain); what matters to the load balancer study is that every
        subsequent endpoint probe fails, exercising the Busy -> Error
        escalation path of the 3-state machine.
        """
        self._crashed = True

    def recover(self) -> None:
        """Bring a crashed server back."""
        self._crashed = False

    @property
    def responsive(self) -> bool:
        """Whether a connection attempt would get a timely answer.

        During a millibottleneck every core sits in iowait, so nothing
        — not even a connection handshake or mod_jk CPing — gets a CPU
        slice.  The kernel still *enqueues* packets (see
        :class:`~repro.netmodel.sockets.ListenSocket`), which is
        exactly why the load balancer mistakes a stalled server for an
        Available one.
        """
        if self._crashed:
            return False
        return self.host.cpu.iowait.busy_slots < self.host.cpu.cores

    @property
    def queue_length(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def in_server(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<{} {} in_server={}>".format(
            type(self).__name__, self.name, self.in_server)


# -- downstream call patterns ----------------------------------------------

class InlineDownstream:
    """Run the downstream tier's work on the calling worker thread.

    The classic Tomcat→MySQL wiring: the servlet thread checks a
    connection out of the (single, unreplicated) downstream server's
    pool and runs every query itself.  No dispatcher, no extra link
    hops — byte-identical to the seed system.
    """

    def __init__(self, server: "PooledTier") -> None:
        self.server = server

    def call(self, request: Request):
        """Process generator: the downstream server's query path."""
        return self.server.query(request)


class DispatchDownstream:
    """Forward through a dispatcher (balancer or direct dispatcher).

    This is the balancer-per-boundary pattern: the owning tier server
    runs its own :class:`~repro.core.balancer.LoadBalancer` over the
    next tier's replicas, exactly as each Apache does over the Tomcats.
    """

    def __init__(self, dispatcher: Dispatcher) -> None:
        self.dispatcher = dispatcher

    def call(self, request: Request):
        """Process generator: dispatch and wait for the response."""
        return self.dispatcher.dispatch(request)


# -- service models ---------------------------------------------------------

class FrontendTier(TierServer):
    """Accept-socket + worker-pool service model (Apache).

    Owns a finite accept queue (where the paper's packet drops happen),
    a pool of worker threads (``MaxClients``), and a *dispatcher* that
    forwards requests to the next tier.  During a millibottleneck
    downstream, worker threads pile up inside the dispatcher waiting
    for the stalled backend.  Once all workers are stuck, the accept
    queue fills; once it overflows, packets drop and clients retransmit
    seconds later: the VLRT mechanism end to end.
    """

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_clients: int, backlog: int,
                 access_log_bytes: int = 300,
                 role: str = "apache",
                 cpu_source: str = "apache_cpu") -> None:
        super().__init__(env, name, host, role=role)
        if max_clients < 1:
            raise ConfigurationError("max_clients must be >= 1")
        self.max_clients = max_clients
        self.access_log_bytes = access_log_bytes
        self.cpu_source = cpu_source
        self.socket = ListenSocket(env, backlog=backlog, name=name)
        self.dispatcher: Optional[Dispatcher] = None
        self._busy_workers = 0
        self._workers: list = []
        # Control-plane attachments (see repro.controlplane).  All
        # default to None; the presence checks below add no events, so
        # an unconfigured frontend is event-identical to the seed one.
        self.admission = None
        self.bulkhead = None
        self.leveler = None
        #: Requests answered fast by a control-plane mechanism
        #: (admission/bulkhead/leveling overflow) instead of served.
        self.shed_responses = 0
        #: Requests parked in (or draining from) the leveling queue —
        #: part of ``in_server``: they are inside the tier even though
        #: no worker thread holds them.
        self._leveled_inflight = 0
        self._span_queue_wait = role + ".queue_wait"
        self._span_service = role + ".service"
        self._span_error = role + ".error_503"
        self._span_shed = role + ".shed"

    def crash(self) -> None:
        """A dead frontend host refuses packets at the kernel.

        Unlike an application-level stall (where the kernel keeps
        accepting — the paper's silent-absorption mechanism), a crashed
        frontend's socket answers nothing: clients see the same silence
        as an accept-queue drop and retransmit on their RTO, eventually
        failing over to another frontend only if they have one.
        """
        super().crash()
        self.socket.refusing = True

    def recover(self) -> None:
        super().recover()
        self.socket.refusing = False

    def attach_dispatcher(self, dispatcher: Dispatcher) -> None:
        """Wire the downstream dispatcher and start the worker threads."""
        if self.dispatcher is not None:
            raise ConfigurationError(
                "{} already has a dispatcher".format(self.name))
        self.dispatcher = dispatcher
        self._workers = [self.env.process(self._worker())
                         for _ in range(self.max_clients)]

    # -- control-plane wiring ----------------------------------------------
    def install_admission(self, controller) -> None:
        """Gate every request through a token-bucket controller."""
        if self.admission is not None:
            raise ConfigurationError(
                "{} already has admission control".format(self.name))
        self.admission = controller

    def install_bulkhead(self, bulkhead) -> None:
        """Partition worker capacity across request classes.

        When combined with a leveling queue the bulkhead bounds the
        *entry* stage (admission through the first CPU half); residence
        beyond the queue is bounded by the drain concurrency.
        """
        if self.bulkhead is not None:
            raise ConfigurationError(
                "{} already has a bulkhead".format(self.name))
        self.bulkhead = bulkhead

    def install_leveling(self, config):
        """Level the downstream boundary through a bounded FIFO.

        The worker thread parks the request and returns to the accept
        loop immediately — the chain "all workers stuck → accept queue
        overflows → packet drop → TCP retransmission" is broken at its
        first link.  Returns the created queue for observability.
        """
        from repro.controlplane.leveling import LevelingQueue

        if self.leveler is not None:
            raise ConfigurationError(
                "{} already has a leveling queue".format(self.name))
        self.leveler = LevelingQueue(
            self.env, config, drain=self._drain_leveled,
            on_shed=self._shed_leveled, name=self.name + ".leveling")
        return self.leveler

    def _worker(self):
        while True:
            request = yield self.socket.accept()
            request.accepted_at = self.env.now
            self._busy_workers += 1
            tracer = self.env.tracer
            span = None
            if tracer is not None:
                tracer.finish_named(request.request_id,
                                    self._span_queue_wait)
                span = tracer.start(request.request_id, self._span_service,
                                    server=self.name)
            try:
                yield from self._handle(request)
            finally:
                self._busy_workers -= 1
                if tracer is not None:
                    tracer.finish(span)

    def _handle(self, request: Request):
        if self.admission is not None:
            admitted = yield from self.admission.admit(request)
            if not admitted:
                self._shed(request)
                return
        if self.bulkhead is not None:
            slot = yield from self.bulkhead.acquire(request)
            if slot is None:
                self._shed(request)
                return
            try:
                yield from self._process(request)
            finally:
                slot.cancel_or_release()
            return
        yield from self._process(request)

    def _process(self, request: Request):
        demand = getattr(request.interaction, self.cpu_source)
        yield from self.host.execute(demand * 0.5)
        if self.leveler is not None:
            # Park the request and free this worker for the accept
            # loop; a drain process runs _drain_leveled.  The counter
            # moves before offer() so an overflow shed (which runs the
            # callbacks synchronously) stays balanced.
            self._leveled_inflight += 1
            if not self.leveler.offer(request):
                self._leveled_inflight -= 1
                self._shed(request)
            return
        yield from self._finish(request, demand)

    def _finish(self, request: Request, demand: float):
        try:
            yield from self.dispatcher.dispatch(request)
        except NoCandidateError:
            # Every backend is in the Error state: return a 503.  The
            # client still receives a (fast, useless) response.
            self.error_responses += 1
            tracer = self.env.tracer
            if tracer is not None:
                tracer.instant(request.request_id, self._span_error)
            request.completion.succeed(request)
            return
        yield from self.host.execute(demand * 0.5)
        self.host.write_file(self.access_log_bytes)
        self.requests_completed += 1
        self.bytes_served += request.interaction.traffic_bytes
        request.completion.succeed(request)

    def _drain_leveled(self, request: Request):
        """Boundary crossing for a leveled request (runs on a drain)."""
        try:
            demand = getattr(request.interaction, self.cpu_source)
            yield from self._finish(request, demand)
        finally:
            self._leveled_inflight -= 1

    def _shed_leveled(self, victim: Request) -> None:
        """Overflow eviction callback from the leveling queue."""
        self._leveled_inflight -= 1
        self._shed(victim)

    def _shed(self, request: Request) -> None:
        """Answer a request fast because a control-plane gate refused it."""
        self.shed_responses += 1
        tracer = self.env.tracer
        if tracer is not None:
            tracer.instant(request.request_id, self._span_shed)
        request.completion.succeed(request)

    # -- observability -----------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Requests in the accept queue."""
        return self.socket.queue_length

    @property
    def busy_workers(self) -> int:
        return self._busy_workers

    @property
    def in_server(self) -> int:
        """Accept queue plus in-service (the paper's Apache queue plots).

        Leveled requests stay in-service while parked: no worker thread
        holds them, but they are inside the tier until a drain answers
        them.
        """
        return (self.socket.queue_length + self._busy_workers
                + self._leveled_inflight)

    @property
    def dropped_packets(self) -> int:
        return self.socket.dropped


class WorkerTier(TierServer):
    """Job-queue + thread-pool service model (Tomcat).

    ``max_threads`` worker threads consume an unbounded job queue (the
    paper's drops happen at the web tier, not here); processing burns
    tier CPU, runs the downstream call pattern, and appends to the
    access/servlet logs — the dirty pages whose flush produces the
    millibottleneck (§III-B).

    A worker tier both *receives* dispatched traffic (``submit``) and,
    through a :class:`DispatchDownstream`, may run its own balancer
    over the next tier — which is what makes ≥4-tier chains and
    replicated databases expressible.
    """

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_threads: int,
                 downstream: Optional[object] = None,
                 role: str = "tomcat",
                 cpu_source: str = "tomcat_cpu",
                 pre_fraction: float = PRE_DB_FRACTION) -> None:
        super().__init__(env, name, host, role=role)
        if max_threads < 1:
            raise ConfigurationError("max_threads must be >= 1")
        self.max_threads = max_threads
        self.downstream = downstream
        self.cpu_source = cpu_source
        self.pre_fraction = pre_fraction
        self.jobs: Store = Store(env)
        self._busy_threads = 0
        self._span_queue_wait = role + ".queue_wait"
        self._span_service = role + ".service"
        self._span_error = role + ".error_503"
        self._threads = [env.process(self._worker())
                         for _ in range(max_threads)]

    # -- data path ---------------------------------------------------------
    def submit(self, request: Request, reply: Event) -> None:
        """Enqueue a request; ``reply`` triggers with the request when done.

        Non-blocking: the kernel buffers the message even when every
        worker thread is frozen by a millibottleneck.
        """
        tracer = self.env.tracer
        if tracer is not None:
            tracer.start_named(request.request_id, self._span_queue_wait,
                               server=self.name)
        self.jobs.put((request, reply))

    def _worker(self):
        while True:
            request, reply = yield self.jobs.get()
            self._busy_threads += 1
            tracer = self.env.tracer
            span = None
            if tracer is not None:
                tracer.finish_named(request.request_id,
                                    self._span_queue_wait)
                span = tracer.start(request.request_id, self._span_service,
                                    server=self.name)
            try:
                interaction = request.interaction
                demand = getattr(interaction, self.cpu_source)
                yield from self.host.execute(demand * self.pre_fraction)
                if self.downstream is not None:
                    try:
                        yield from self.downstream.call(request)
                    except NoCandidateError:
                        # Every next-tier replica is in Error: answer
                        # degraded (no downstream work) instead of
                        # holding the thread.  The upstream still gets
                        # a response; only this tier records the error.
                        self.error_responses += 1
                        if tracer is not None:
                            tracer.instant(request.request_id,
                                           self._span_error)
                        reply.succeed(request)
                        continue
                yield from self.host.execute(
                    demand * (1.0 - self.pre_fraction))
                # Access + servlet + localhost logs: buffered writes that
                # dirty the page cache.
                self.host.write_file(interaction.log_bytes)
                self.requests_completed += 1
                self.bytes_served += interaction.traffic_bytes
                reply.succeed(request)
            finally:
                self._busy_threads -= 1
                if tracer is not None:
                    tracer.finish(span)

    # -- observability -----------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Jobs waiting for a worker thread."""
        return len(self.jobs)

    @property
    def busy_threads(self) -> int:
        return self._busy_threads

    @property
    def in_server(self) -> int:
        """Waiting plus in-service requests (the paper's queue plots)."""
        return len(self.jobs) + self._busy_threads


class PooledTier(TierServer):
    """Bounded connection-pool service model (MySQL).

    Passive by default: an upstream worker thread runs :meth:`query` on
    its own process, holding one pooled connection for all of the
    request's queries (a servlet checking a connection out of its pool
    for the whole request).  Behind a balancer the tier also accepts
    dispatched traffic via :meth:`submit`, serving each request on its
    own spawned process — which is what a replicated database tier
    needs.
    """

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_connections: int,
                 role: str = "mysql",
                 cpu_source: str = "mysql_cpu") -> None:
        super().__init__(env, name, host, role=role)
        if max_connections < 1:
            raise ConfigurationError("max_connections must be >= 1")
        self.connections = Resource(env, capacity=max_connections)
        self.cpu_source = cpu_source
        self.queries_executed = 0
        #: Optional read/write capacity partition (repro.controlplane).
        self.bulkhead = None
        #: Requests refused because their bulkhead partition was full.
        self.shed_responses = 0
        self._span_pool_wait = role + ".pool_wait"
        self._span_service = role + ".service"

    def install_bulkhead(self, bulkhead) -> None:
        """Partition the connection pool across request classes."""
        if self.bulkhead is not None:
            raise ConfigurationError(
                "{} already has a bulkhead".format(self.name))
        self.bulkhead = bulkhead

    def query(self, request: Request):
        """Process generator: run the request's queries on one connection.

        The caller (an upstream worker thread) holds one pooled
        connection for all of the request's queries.  A full bulkhead
        partition surfaces as :class:`~repro.errors.NoCandidateError`,
        which upstream tiers translate into degraded responses.
        """
        interaction = request.interaction
        if interaction.db_queries == 0:
            return
        if self.bulkhead is not None:
            slot = yield from self.bulkhead.acquire(request)
            if slot is None:
                self.shed_responses += 1
                raise NoCandidateError(
                    "{}: bulkhead partition full".format(self.name))
            try:
                yield from self._query_pooled(request)
            finally:
                slot.cancel_or_release()
            return
        yield from self._query_pooled(request)

    def _query_pooled(self, request: Request):
        interaction = request.interaction
        tracer = self.env.tracer
        pool_span = (tracer.start(request.request_id, self._span_pool_wait,
                                  server=self.name)
                     if tracer is not None else None)
        service_span = None
        try:
            with self.connections.request() as connection:
                yield connection
                if tracer is not None:
                    tracer.finish(pool_span)
                    service_span = tracer.start(
                        request.request_id, self._span_service,
                        server=self.name,
                        queries=interaction.db_queries)
                demand = getattr(interaction, self.cpu_source)
                for _ in range(interaction.db_queries):
                    yield from self.host.execute(demand)
                    self.queries_executed += 1
        finally:
            if tracer is not None:
                tracer.finish(pool_span)
                tracer.finish(service_span)
        self.requests_completed += 1
        self.bytes_served += interaction.traffic_bytes

    # -- dispatched access (replicated tier behind a balancer) -------------
    def submit(self, request: Request, reply: Event) -> None:
        """Serve a dispatched request on its own process.

        Non-blocking, mirroring :meth:`WorkerTier.submit`: the kernel
        buffers the message even mid-millibottleneck; concurrency is
        bounded by the connection pool inside :meth:`query`.
        """
        self.env.process(self._serve(request, reply))

    def _serve(self, request: Request, reply: Event):
        try:
            yield from self.query(request)
        except NoCandidateError:
            # Bulkhead shed on a dispatched request: answer degraded
            # instead of crashing the spawned process — the upstream
            # dispatch already counts the work as completed.
            self.error_responses += 1
            reply.succeed(request)
            return
        reply.succeed(request)

    @property
    def queue_length(self) -> int:
        """Requests waiting for a free connection."""
        return self.connections.queue_length

    @property
    def in_server(self) -> int:
        """Waiting plus executing requests."""
        return self.connections.queue_length + self.connections.count
