"""Web tier: an Apache HTTP server with mod_jk-style dispatching.

Each Apache owns a finite accept queue (where the paper's packet drops
happen), a pool of worker threads (``MaxClients``), and a *dispatcher*
— normally a :class:`repro.core.balancer.LoadBalancer` — that forwards
requests to the application tier.

During a millibottleneck downstream, worker threads pile up inside the
dispatcher waiting for the stalled Tomcat.  Once all workers are stuck,
the accept queue fills; once it overflows, packets drop and clients
retransmit seconds later: the VLRT mechanism end to end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from repro.errors import ConfigurationError, NoCandidateError
from repro.netmodel.sockets import ListenSocket
from repro.osmodel.host import Host
from repro.tiers.base import TierServer
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Table III: Apache MaxClients (full-scale; experiments scale it).
DEFAULT_MAX_CLIENTS = 200
#: Kernel listen backlog (Apache's ListenBacklog default is 511).
DEFAULT_BACKLOG = 511
#: Access-log bytes buffered per request.
DEFAULT_ACCESS_LOG_BYTES = 300


class Dispatcher(Protocol):
    """Anything that can forward a request to the app tier."""

    def dispatch(self, request: Request):
        """Process generator yielding until the response is available."""
        ...  # pragma: no cover


class ApacheServer(TierServer):
    """One web server."""

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_clients: int = DEFAULT_MAX_CLIENTS,
                 backlog: int = DEFAULT_BACKLOG,
                 access_log_bytes: int = DEFAULT_ACCESS_LOG_BYTES) -> None:
        super().__init__(env, name, host)
        if max_clients < 1:
            raise ConfigurationError("max_clients must be >= 1")
        self.max_clients = max_clients
        self.access_log_bytes = access_log_bytes
        self.socket = ListenSocket(env, backlog=backlog, name=name)
        self.dispatcher: Optional[Dispatcher] = None
        self.error_responses = 0
        self._busy_workers = 0
        self._workers: list = []

    def attach_dispatcher(self, dispatcher: Dispatcher) -> None:
        """Wire the app-tier dispatcher and start the worker threads."""
        if self.dispatcher is not None:
            raise ConfigurationError(
                "{} already has a dispatcher".format(self.name))
        self.dispatcher = dispatcher
        self._workers = [self.env.process(self._worker())
                         for _ in range(self.max_clients)]

    def _worker(self):
        while True:
            request = yield self.socket.accept()
            request.accepted_at = self.env.now
            self._busy_workers += 1
            tracer = self.env.tracer
            span = None
            if tracer is not None:
                tracer.finish_named(request.request_id,
                                    "apache.queue_wait")
                span = tracer.start(request.request_id, "apache.service",
                                    server=self.name)
            try:
                yield from self._handle(request)
            finally:
                self._busy_workers -= 1
                if tracer is not None:
                    tracer.finish(span)

    def _handle(self, request: Request):
        interaction = request.interaction
        yield from self.host.execute(interaction.apache_cpu * 0.5)
        try:
            yield from self.dispatcher.dispatch(request)
        except NoCandidateError:
            # Every backend is in the Error state: return a 503.  The
            # client still receives a (fast, useless) response.
            self.error_responses += 1
            tracer = self.env.tracer
            if tracer is not None:
                tracer.instant(request.request_id, "apache.error_503")
            request.completion.succeed(request)
            return
        yield from self.host.execute(interaction.apache_cpu * 0.5)
        self.host.write_file(self.access_log_bytes)
        self.requests_completed += 1
        self.bytes_served += interaction.traffic_bytes
        request.completion.succeed(request)

    # -- observability -------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Requests in the accept queue."""
        return self.socket.queue_length

    @property
    def busy_workers(self) -> int:
        return self._busy_workers

    @property
    def in_server(self) -> int:
        """Accept queue plus in-service (the paper's Apache queue plots)."""
        return self.socket.queue_length + self._busy_workers

    @property
    def dropped_packets(self) -> int:
        return self.socket.dropped
