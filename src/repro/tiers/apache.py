"""Web tier: an Apache HTTP server with mod_jk-style dispatching.

Each Apache owns a finite accept queue (where the paper's packet drops
happen), a pool of worker threads (``MaxClients``), and a *dispatcher*
— normally a :class:`repro.core.balancer.LoadBalancer` — that forwards
requests to the application tier.

During a millibottleneck downstream, worker threads pile up inside the
dispatcher waiting for the stalled Tomcat.  Once all workers are stuck,
the accept queue fills; once it overflows, packets drop and clients
retransmit seconds later: the VLRT mechanism end to end.

``ApacheServer`` is the frontend service model of
:mod:`repro.tiers.base` configured with Apache's Table III defaults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.osmodel.host import Host
from repro.tiers.base import Dispatcher, FrontendTier

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = ["ApacheServer", "Dispatcher", "DEFAULT_MAX_CLIENTS",
           "DEFAULT_BACKLOG", "DEFAULT_ACCESS_LOG_BYTES"]

#: Table III: Apache MaxClients (full-scale; experiments scale it).
DEFAULT_MAX_CLIENTS = 200
#: Kernel listen backlog (Apache's ListenBacklog default is 511).
DEFAULT_BACKLOG = 511
#: Access-log bytes buffered per request.
DEFAULT_ACCESS_LOG_BYTES = 300


class ApacheServer(FrontendTier):
    """One web server."""

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_clients: int = DEFAULT_MAX_CLIENTS,
                 backlog: int = DEFAULT_BACKLOG,
                 access_log_bytes: int = DEFAULT_ACCESS_LOG_BYTES) -> None:
        super().__init__(env, name, host, max_clients=max_clients,
                         backlog=backlog, access_log_bytes=access_log_bytes,
                         role="apache", cpu_source="apache_cpu")
