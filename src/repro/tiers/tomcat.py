"""Application tier: a Tomcat servlet container.

Each Tomcat has ``max_threads`` worker threads consuming a job queue.
A job carries a request and a reply event; processing burns app-tier
CPU, runs the request's database queries, and — crucially — appends to
the access/servlet/localhost logs.  Those buffered log writes are the
dirty pages whose flush produces the millibottleneck (§III-B).

The job queue itself is unbounded: the paper's drops happen at the web
tier, not here.  What bounds inflow to a Tomcat is the connection
(endpoint) pool on the Apache side plus the load balancer — which is
the whole subject of the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.osmodel.host import Host
from repro.sim.events import Event
from repro.sim.queues import Store
from repro.tiers.base import TierServer
from repro.tiers.mysql import MySqlServer
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Table III: Tomcat maxThreads (full-scale value; experiments scale it).
DEFAULT_MAX_THREADS = 210
#: Fraction of app-tier CPU spent before the database call.
PRE_DB_FRACTION = 0.6


class TomcatServer(TierServer):
    """One application server."""

    def __init__(self, env: "Environment", name: str, host: Host,
                 mysql: MySqlServer,
                 max_threads: int = DEFAULT_MAX_THREADS) -> None:
        super().__init__(env, name, host)
        if max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        self.mysql = mysql
        self.max_threads = max_threads
        self.jobs: Store = Store(env)
        self._busy_threads = 0
        self._threads = [env.process(self._worker())
                         for _ in range(max_threads)]

    # -- data path ---------------------------------------------------------
    def submit(self, request: Request, reply: Event) -> None:
        """Enqueue a request; ``reply`` triggers with the request when done.

        Non-blocking: the kernel buffers the message even when every
        worker thread is frozen by a millibottleneck.
        """
        tracer = self.env.tracer
        if tracer is not None:
            tracer.start_named(request.request_id, "tomcat.queue_wait",
                               server=self.name)
        self.jobs.put((request, reply))

    def _worker(self):
        while True:
            request, reply = yield self.jobs.get()
            self._busy_threads += 1
            tracer = self.env.tracer
            span = None
            if tracer is not None:
                tracer.finish_named(request.request_id,
                                    "tomcat.queue_wait")
                span = tracer.start(request.request_id, "tomcat.service",
                                    server=self.name)
            try:
                interaction = request.interaction
                yield from self.host.execute(
                    interaction.tomcat_cpu * PRE_DB_FRACTION)
                yield from self.mysql.query(request)
                yield from self.host.execute(
                    interaction.tomcat_cpu * (1.0 - PRE_DB_FRACTION))
                # Access + servlet + localhost logs: buffered writes that
                # dirty the page cache.
                self.host.write_file(interaction.log_bytes)
                self.requests_completed += 1
                self.bytes_served += interaction.traffic_bytes
                reply.succeed(request)
            finally:
                self._busy_threads -= 1
                if tracer is not None:
                    tracer.finish(span)

    # -- observability -------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Jobs waiting for a worker thread."""
        return len(self.jobs)

    @property
    def busy_threads(self) -> int:
        return self._busy_threads

    @property
    def in_server(self) -> int:
        """Waiting plus in-service requests (the paper's queue plots)."""
        return len(self.jobs) + self._busy_threads
