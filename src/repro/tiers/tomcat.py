"""Application tier: a Tomcat servlet container.

Each Tomcat has ``max_threads`` worker threads consuming a job queue.
A job carries a request and a reply event; processing burns app-tier
CPU, runs the request's database queries, and — crucially — appends to
the access/servlet/localhost logs.  Those buffered log writes are the
dirty pages whose flush produces the millibottleneck (§III-B).

The job queue itself is unbounded: the paper's drops happen at the web
tier, not here.  What bounds inflow to a Tomcat is the connection
(endpoint) pool on the Apache side plus the load balancer — which is
the whole subject of the paper.

``TomcatServer`` is the worker service model of
:mod:`repro.tiers.base` configured with Tomcat's Table III defaults
and the classic inline Tomcat→MySQL downstream call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.osmodel.host import Host
from repro.tiers.base import PRE_DB_FRACTION, InlineDownstream, WorkerTier
from repro.tiers.mysql import MySqlServer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = ["TomcatServer", "DEFAULT_MAX_THREADS", "PRE_DB_FRACTION"]

#: Table III: Tomcat maxThreads (full-scale value; experiments scale it).
DEFAULT_MAX_THREADS = 210


class TomcatServer(WorkerTier):
    """One application server."""

    def __init__(self, env: "Environment", name: str, host: Host,
                 mysql: MySqlServer,
                 max_threads: int = DEFAULT_MAX_THREADS) -> None:
        super().__init__(env, name, host, max_threads=max_threads,
                         downstream=InlineDownstream(mysql),
                         role="tomcat", cpu_source="tomcat_cpu",
                         pre_fraction=PRE_DB_FRACTION)
        self.mysql = mysql
