"""Cache-aside tier: hit-ratio-driven demand shedding in front of a DB.

A :class:`CacheTier` sits mid-chain (service model ``cache`` in a
declarative topology).  Reads hit with a TTL- and warm-up-dependent
probability and are answered locally for a fraction of the tier's CPU
demand; misses pay the full worker-shaped cost *plus* the downstream
call, traced under a ``cache.miss_penalty`` span so the critical-path
explainer can attribute tail latency to cold caches.  Writes always
invalidate and always go downstream (write-through invalidation).

The interesting failure mode is the *cold restart*: :meth:`recover`
resets the warm-up clock, so a cache that crashes and fails back over
serves at a collapsed hit ratio and forwards nearly everything — the
paper's question "does the instability just move one tier down?" made
measurable.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import NoCandidateError
from repro.osmodel.host import Host
from repro.tiers.base import WorkerTier

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class CacheTier(WorkerTier):
    """Worker-shaped tier whose reads may be served from cache.

    ``hit_ratio`` is the asymptotic warm-cache maximum; the effective
    ratio is scaled by TTL freshness ``ttl / (ttl + churn)`` (``churn``
    = mean entry re-reference interval, so longer TTLs keep more
    entries fresh — hit ratio is monotone in TTL) and a cold-start
    curve ``1 - exp(-(now - warm_start) / warmup)``.
    """

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_threads: int,
                 rng: np.random.Generator,
                 downstream: Optional[object] = None,
                 role: str = "cache",
                 cpu_source: str = "tomcat_cpu",
                 hit_ratio: float = 0.8,
                 ttl: float = 60.0,
                 churn: float = 30.0,
                 warmup: float = 5.0,
                 hit_cpu_fraction: float = 0.1) -> None:
        super().__init__(env, name, host, max_threads,
                         downstream=downstream, role=role,
                         cpu_source=cpu_source)
        self._rng = rng
        self.hit_ratio = hit_ratio
        self.ttl = ttl
        self.churn = churn
        self.warmup = warmup
        self.hit_cpu_fraction = hit_cpu_fraction
        #: When this instance last started filling from empty.
        self.warm_start = env.now
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidations = 0
        self.cold_restarts = 0

    # -- cache model ---------------------------------------------------------
    @property
    def freshness(self) -> float:
        """TTL-driven fraction of entries still fresh when re-read."""
        return self.ttl / (self.ttl + self.churn)

    def effective_hit_ratio(self, now: Optional[float] = None) -> float:
        """The hit probability at time ``now`` (default: current time)."""
        if now is None:
            now = self.env.now
        ratio = self.hit_ratio * self.freshness
        if self.warmup > 0.0:
            age = max(0.0, now - self.warm_start)
            ratio *= 1.0 - math.exp(-age / self.warmup)
        return ratio

    def recover(self) -> None:
        """A restarted cache process comes back *empty*."""
        super().recover()
        self.warm_start = self.env.now
        self.cold_restarts += 1

    # -- data path -----------------------------------------------------------
    def _worker(self):
        # Same skeleton as WorkerTier._worker, with the cache decision
        # spliced in between the queue wait and the downstream call.
        while True:
            request, reply = yield self.jobs.get()
            self._busy_threads += 1
            tracer = self.env.tracer
            span = None
            if tracer is not None:
                tracer.finish_named(request.request_id,
                                    self._span_queue_wait)
                span = tracer.start(request.request_id, self._span_service,
                                    server=self.name)
            try:
                yield from self._serve_cached(request, reply, tracer)
            finally:
                self._busy_threads -= 1
                if tracer is not None:
                    tracer.finish(span)

    def _serve_cached(self, request, reply, tracer):
        interaction = request.interaction
        demand = getattr(interaction, self.cpu_source)
        is_write = getattr(interaction, "is_write", False)
        if not is_write and float(self._rng.random()) \
                < self.effective_hit_ratio():
            # Hit: answered from memory, no downstream work.
            self.hits += 1
            yield from self.host.execute(demand * self.hit_cpu_fraction)
            self.requests_completed += 1
            self.bytes_served += interaction.traffic_bytes
            reply.succeed(request)
            return
        if is_write:
            self.writes += 1
            self.invalidations += 1
        else:
            self.misses += 1
        yield from self.host.execute(demand * self.pre_fraction)
        if self.downstream is not None:
            miss_span = (tracer.start(request.request_id,
                                      "cache.miss_penalty",
                                      server=self.name, write=is_write)
                         if tracer is not None else None)
            try:
                yield from self.downstream.call(request)
            except NoCandidateError:
                self.error_responses += 1
                if tracer is not None:
                    tracer.instant(request.request_id, self._span_error)
                reply.succeed(request)
                return
            finally:
                if tracer is not None:
                    tracer.finish(miss_span)
        yield from self.host.execute(demand * (1.0 - self.pre_fraction))
        self.host.write_file(interaction.log_bytes)
        self.requests_completed += 1
        self.bytes_served += interaction.traffic_bytes
        reply.succeed(request)
