"""Tier server models.

The three classic servers — Apache (web), Tomcat (app), MySQL
(database) — are thin configurations of the generic service models in
:mod:`repro.tiers.base` (:class:`FrontendTier`, :class:`WorkerTier`,
:class:`PooledTier`), which declarative topologies instantiate
directly for arbitrary tier chains.
"""

from repro.tiers.apache import (
    DEFAULT_ACCESS_LOG_BYTES,
    DEFAULT_BACKLOG,
    DEFAULT_MAX_CLIENTS,
    ApacheServer,
)
from repro.tiers.base import (
    PRE_DB_FRACTION,
    DispatchDownstream,
    Dispatcher,
    FrontendTier,
    InlineDownstream,
    PooledTier,
    TierServer,
    WorkerTier,
)
from repro.tiers.mysql import DEFAULT_MAX_CONNECTIONS, MySqlServer
from repro.tiers.tomcat import DEFAULT_MAX_THREADS, TomcatServer

__all__ = [
    "TierServer",
    "FrontendTier",
    "WorkerTier",
    "PooledTier",
    "InlineDownstream",
    "DispatchDownstream",
    "ApacheServer",
    "TomcatServer",
    "MySqlServer",
    "Dispatcher",
    "DEFAULT_MAX_CLIENTS",
    "DEFAULT_BACKLOG",
    "DEFAULT_ACCESS_LOG_BYTES",
    "DEFAULT_MAX_THREADS",
    "DEFAULT_MAX_CONNECTIONS",
    "PRE_DB_FRACTION",
]
