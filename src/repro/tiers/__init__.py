"""Tier server models: Apache (web), Tomcat (app), MySQL (database)."""

from repro.tiers.apache import (
    DEFAULT_ACCESS_LOG_BYTES,
    DEFAULT_BACKLOG,
    DEFAULT_MAX_CLIENTS,
    ApacheServer,
    Dispatcher,
)
from repro.tiers.base import TierServer
from repro.tiers.mysql import DEFAULT_MAX_CONNECTIONS, MySqlServer
from repro.tiers.tomcat import DEFAULT_MAX_THREADS, PRE_DB_FRACTION, TomcatServer

__all__ = [
    "TierServer",
    "ApacheServer",
    "TomcatServer",
    "MySqlServer",
    "Dispatcher",
    "DEFAULT_MAX_CLIENTS",
    "DEFAULT_BACKLOG",
    "DEFAULT_ACCESS_LOG_BYTES",
    "DEFAULT_MAX_THREADS",
    "DEFAULT_MAX_CONNECTIONS",
    "PRE_DB_FRACTION",
]
