"""Key-sharded fan-out over a pooled tier via consistent hashing.

A :class:`ShardRouter` replaces the balancer at a ``sharded`` boundary:
instead of *choosing* a replica, it *derives* one from the request's
key position on a consistent-hash ring (``virtual_nodes`` vnodes per
shard, stable BLAKE2b hashing — no RNG, no set iteration: the ring must
be bit-identical across runs and processes, which is what statan's
``SHARD001`` rule polices).  Key popularity is Zipf-skewed
(``skew=0`` is uniform), so a hot key concentrates load on one shard —
a *structural* imbalance no policy can route around.

Resharding is the consistent-hashing guarantee made testable: retiring
or joining a shard rebuilds the ring, and only ~1/N of the key space
changes owner.  Retired shards move to :attr:`retired_backends` and
their dispatch counts remain part of the totals, reusing the
retire-accounting discipline of the balancer layer.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.netmodel.sockets import Link
from repro.sim.events import Event
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


def _stable_hash(token: str) -> int:
    """Deterministic 64-bit ring position (never Python's salted hash)."""
    return int.from_bytes(blake2b(token.encode(), digest_size=8).digest(),
                          "big")


class ShardRouter:
    """Consistent-hash dispatcher over a sharded pooled tier."""

    def __init__(self, env: "Environment", name: str,
                 backends: Sequence[object],
                 rng: np.random.Generator,
                 virtual_nodes: int = 64,
                 key_space: int = 1024,
                 skew: float = 0.0,
                 link_factory: Optional[Callable[[object], Link]] = None,
                 link_latency: float = 0.0002) -> None:
        backends = list(backends)
        if not backends:
            raise ConfigurationError(
                "shard router needs at least one backend")
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        if key_space < 1:
            raise ConfigurationError("key_space must be >= 1")
        self.env = env
        self.name = name
        self.virtual_nodes = virtual_nodes
        self.key_space = key_space
        self.skew = skew
        self._rng = rng
        self._link_factory = link_factory
        self._link_latency = link_latency
        self.backends = backends
        self.links = [self._make_link(server) for server in backends]
        #: Shards removed by retire; counts stay part of the totals.
        self.retired_backends: list[object] = []
        self.dispatches = 0
        self.completions = 0
        self.inflight = 0
        #: Per-shard dispatch counts by name (retired shards included).
        self.dispatch_counts: dict[str, int] = {
            server.name: 0 for server in backends}
        # Zipf(skew) popularity over key ranks 1..key_space; rank i-1
        # maps to key i-1.  skew=0 degenerates to uniform.
        weights = np.arange(1, key_space + 1, dtype=float) ** -float(skew)
        self._key_cdf = np.cumsum(weights / weights.sum())
        self._ring: list[int] = []
        self._ring_owners: list[object] = []
        self._rebuild_ring()

    def _make_link(self, server) -> Link:
        if self._link_factory is not None:
            return self._link_factory(server)
        return Link(self.env, self._link_latency,
                    name="{}->{}".format(self.name, server.name))

    # -- ring ----------------------------------------------------------------
    def _rebuild_ring(self) -> None:
        """Derive the ring from the live backend list.

        Iteration is over the *ordered* backend list and positions come
        from a keyed stable hash — rebuild is a pure function of
        membership, so every process computes the same ring.
        """
        positions: list[tuple[int, object]] = []
        for server in self.backends:
            for vnode in range(self.virtual_nodes):
                token = "{}#{}".format(server.name, vnode)
                positions.append((_stable_hash(token), server))
        positions.sort(key=lambda entry: entry[0])
        self._ring = [position for position, _ in positions]
        self._ring_owners = [server for _, server in positions]

    def owner(self, key: int) -> object:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        point = _stable_hash("key:{}".format(key))
        index = bisect_right(self._ring, point)
        if index == len(self._ring):
            index = 0
        return self._ring_owners[index]

    def draw_key(self) -> int:
        """One Zipf-popular key from the key space."""
        return int(np.searchsorted(self._key_cdf, float(self._rng.random()),
                                   side="right"))

    # -- membership ----------------------------------------------------------
    def add_backend(self, server) -> None:
        """Join a shard; ~1/N of the key space reshards onto it."""
        self.backends.append(server)
        self.links.append(self._make_link(server))
        self.dispatch_counts.setdefault(server.name, 0)
        self._rebuild_ring()

    def remove_backend(self, server) -> None:
        """Retire a shard; its keys reshard onto the survivors."""
        if len(self.backends) == 1:
            raise ConfigurationError(
                "cannot remove the last shard of " + self.name)
        position = self.backends.index(server)
        self.backends.pop(position)
        self.links.pop(position)
        self.retired_backends.append(server)
        self._rebuild_ring()

    # -- dispatch ------------------------------------------------------------
    def dispatch(self, request: Request):
        """Process generator: route ``request`` to its key's owner shard."""
        key = self.draw_key()
        backend = self.owner(key)
        link = self.links[self.backends.index(backend)]
        self.dispatches += 1
        self.inflight += 1
        self.dispatch_counts[backend.name] += 1
        request.served_by = backend.name
        request.dispatched_at = self.env.now
        tracer = self.env.tracer
        span = (tracer.start(request.request_id, "balancer.send",
                             member=backend.name, shard_key=key)
                if tracer is not None else None)
        reply: Event = Event(self.env)
        try:
            if link.profile is None:
                yield link.delay()
                backend.submit(request, reply)
                yield reply
                yield link.delay()
            else:
                yield from link.transit(request)
                backend.submit(request, reply)
                yield reply
                yield from link.transit(request)
        finally:
            self.inflight -= 1
            if tracer is not None:
                tracer.finish(span)
        self.completions += 1
        return request  # statan: ignore[PROC003] -- process value

    def __repr__(self) -> str:
        return "<ShardRouter {} shards={} vnodes={}>".format(
            self.name, len(self.backends), self.virtual_nodes)
