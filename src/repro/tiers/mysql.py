"""Database tier: a MySQL server with a bounded connection pool.

In the paper's testbed the single MySQL node is deliberately
well-provisioned (Table III: 48 connections, 10 MB query cache) and is
never the bottleneck; it exists so that app-tier requests have a
realistic downstream dependency.  Queries burn CPU on the database
host; the connection pool bounds concurrency.

``MySqlServer`` is the pooled service model of :mod:`repro.tiers.base`
configured with MySQL's Table III defaults.  Behind a balancer (a
replicated database tier), it also accepts dispatched traffic via
``submit``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.osmodel.host import Host
from repro.tiers.base import PooledTier

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = ["MySqlServer", "DEFAULT_MAX_CONNECTIONS"]

#: Table III: total database connections.
DEFAULT_MAX_CONNECTIONS = 48


class MySqlServer(PooledTier):
    """The database tier."""

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_connections: int = DEFAULT_MAX_CONNECTIONS) -> None:
        super().__init__(env, name, host, max_connections=max_connections,
                         role="mysql", cpu_source="mysql_cpu")
