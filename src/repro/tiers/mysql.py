"""Database tier: a MySQL server with a bounded connection pool.

In the paper's testbed the single MySQL node is deliberately
well-provisioned (Table III: 48 connections, 10 MB query cache) and is
never the bottleneck; it exists so that app-tier requests have a
realistic downstream dependency.  Queries burn CPU on the database
host; the connection pool bounds concurrency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.osmodel.host import Host
from repro.sim.resources import Resource
from repro.tiers.base import TierServer
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Table III: total database connections.
DEFAULT_MAX_CONNECTIONS = 48


class MySqlServer(TierServer):
    """The database tier."""

    def __init__(self, env: "Environment", name: str, host: Host,
                 max_connections: int = DEFAULT_MAX_CONNECTIONS) -> None:
        super().__init__(env, name, host)
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self.connections = Resource(env, capacity=max_connections)
        self.queries_executed = 0

    def query(self, request: Request):
        """Process generator: run the request's queries on one connection.

        The caller (an app-tier thread) holds one pooled connection for
        all of the request's queries, mirroring a servlet that checks a
        connection out of its pool for the whole request.
        """
        interaction = request.interaction
        if interaction.db_queries == 0:
            return
        tracer = self.env.tracer
        pool_span = (tracer.start(request.request_id, "mysql.pool_wait",
                                  server=self.name)
                     if tracer is not None else None)
        service_span = None
        try:
            with self.connections.request() as connection:
                yield connection
                if tracer is not None:
                    tracer.finish(pool_span)
                    service_span = tracer.start(
                        request.request_id, "mysql.service",
                        server=self.name,
                        queries=interaction.db_queries)
                for _ in range(interaction.db_queries):
                    yield from self.host.execute(interaction.mysql_cpu)
                    self.queries_executed += 1
        finally:
            if tracer is not None:
                tracer.finish(pool_span)
                tracer.finish(service_span)
        self.requests_completed += 1
        self.bytes_served += interaction.traffic_bytes

    @property
    def queue_length(self) -> int:
        """Requests waiting for a free connection."""
        return self.connections.queue_length

    @property
    def in_server(self) -> int:
        """Waiting plus executing requests."""
        return self.connections.queue_length + self.connections.count
