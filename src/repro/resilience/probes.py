"""Active health probes, feeding member state out-of-band.

The paper's 3-state machine learns about backends only from request
traffic: a member's health is whatever the last endpoint probe said,
and an Error member waits out ``error_recovery`` before any request is
risked on it again.  Prequal's observation is that this couples health
discovery to user traffic exactly when traffic is the thing being
damaged.  :class:`HealthProber` decouples them: a per-member probe loop
periodically asks the backend for proof of life and updates the member
state (and its circuit breaker, when present) regardless of whether any
request happens to be in flight.

Consequences under the paper's fault taxonomy:

* a *crashed* member is marked Error after ``fail_threshold`` missed
  probes, without any worker having to block on it first;
* a *recovered* member is marked Available by the first successful
  probe — no ``error_recovery`` timer, no sacrificial user request;
* a *millibottlenecked* member fails probes only while the stall lasts
  (typically shorter than ``fail_threshold * interval``), so brief
  stalls don't eject it — and when they do, the very next successful
  probe undoes it.

Probe gaps are jittered from the injector's seeded RNG so the probe
processes of many members don't fire in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.states import MemberState
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.core.member import BalancerMember
    from repro.sim.core import Environment


@dataclass(frozen=True)
class ProbeConfig:
    """Health-probe tuning knobs.

    ``interval`` is the mean gap between probes of one member (each gap
    gets up to ``jitter`` extra seconds, RNG-drawn); ``timeout`` is how
    long an unanswered probe waits before counting as failed;
    ``fail_threshold`` consecutive failures mark the member Error.
    """

    interval: float = 0.25
    timeout: float = 0.1
    fail_threshold: int = 3
    jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        if self.timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if self.fail_threshold < 1:
            raise ConfigurationError("fail_threshold must be >= 1")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be >= 0")


class HealthProber:
    """Per-member probe loops for one balancer."""

    def __init__(self, env: "Environment",
                 members: Iterable["BalancerMember"],
                 config: ProbeConfig | None = None,
                 rng: "np.random.Generator | None" = None,
                 name: str = "prober") -> None:
        self.env = env
        self.config = config or ProbeConfig()
        self.name = name
        self.members = list(members)
        if rng is None:
            import numpy as np
            # SEED003 (baselined): seed 0 coincides with the build/fault
            # fallbacks; ``_wire_resilience`` always threads the build
            # rng here, so this path only runs in ad-hoc construction,
            # and reseeding it would perturb probe-jitter golden traces.
            rng = np.random.default_rng(0)
        self._rng = rng
        self.probes_sent = 0
        self.probes_failed = 0
        #: Members marked Error by probes / recovered by probes.
        self.ejections = 0
        self.recoveries = 0
        self.processes = [env.process(self._probe_loop(member))
                          for member in self.members]

    def _probe_loop(self, member: "BalancerMember"):
        config = self.config
        consecutive = 0
        while True:
            gap = config.interval
            if config.jitter:
                gap += float(self._rng.uniform(0.0, config.jitter))
            yield self.env.timeout(gap)
            self.probes_sent += 1
            yield member.link.delay()
            if member.server.responsive:
                yield member.link.delay()
                consecutive = 0
                if member.breaker is not None:
                    member.breaker.record_success()
                if member.state is not MemberState.AVAILABLE:
                    # Proof of life beats any recovery timer.
                    self.recoveries += 1
                    member.mark_available()
            else:
                # Crashed, or every core stuck in iowait: no answer
                # within the probe timeout.
                yield self.env.timeout(config.timeout)
                self.probes_failed += 1
                consecutive += 1
                if member.breaker is not None:
                    member.breaker.record_failure()
                if consecutive == config.fail_threshold:
                    self.ejections += 1
                    member.mark_error()

    def __repr__(self) -> str:
        return "<HealthProber {} members={} sent={} failed={}>".format(
            self.name, len(self.members), self.probes_sent,
            self.probes_failed)
