"""The remedy layer: what a deployment can do about transient faults.

The paper studies two remedies — the ``current_load`` policy and the
modified single-probe ``get_endpoint`` — both *balancer-internal*.
This package adds the remedies that live around the balancer in real
deployments, each wired in only when configured and strictly zero-cost
when absent:

* :class:`~repro.resilience.retry.RetryPolicy` — client-side
  per-request timeout + capped exponential backoff with jitter
  (wired into :class:`~repro.workload.client.Client`);
* :class:`~repro.resilience.hedge.HedgePolicy` /
  :class:`~repro.resilience.hedge.HedgingDispatcher` — web-tier
  duplicate-after-delay with first-wins cancellation (wrapping
  :class:`~repro.core.balancer.LoadBalancer`);
* :class:`~repro.resilience.breaker.BreakerConfig` /
  :class:`~repro.resilience.breaker.CircuitBreaker` — per-member
  closed/open/half-open admission control generalising the paper's
  OK/Busy/Error machine (consulted by ``LoadBalancer`` and fed by a
  mechanism wrapper in :mod:`repro.core.mechanism`);
* :class:`~repro.resilience.probes.ProbeConfig` /
  :class:`~repro.resilience.probes.HealthProber` — active health
  probes feeding member state independently of request traffic.

:class:`ResilienceConfig` bundles any subset; :data:`RESILIENCE_BUNDLES`
names the combinations the chaos suite crosses with fault scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.hedge import HedgePolicy, HedgingDispatcher
from repro.resilience.probes import HealthProber, ProbeConfig
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "HealthProber",
    "HedgePolicy",
    "HedgingDispatcher",
    "ProbeConfig",
    "RESILIENCE_BUNDLES",
    "ResilienceConfig",
    "RetryPolicy",
    "get_resilience",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Any subset of the remedy layer, as one picklable value object.

    ``None`` for a component leaves it out entirely — the wiring points
    check for presence, so an all-``None`` config (or no config at all)
    is event-for-event identical to the seed system.
    """

    retry: Optional[RetryPolicy] = None
    hedge: Optional[HedgePolicy] = None
    breaker: Optional[BreakerConfig] = None
    probes: Optional[ProbeConfig] = None

    @property
    def enabled(self) -> bool:
        return any(component is not None for component in
                   (self.retry, self.hedge, self.breaker, self.probes))


#: Named remedy bundles the chaos suite crosses with fault scenarios.
RESILIENCE_BUNDLES: dict[str, ResilienceConfig] = {
    "none": ResilienceConfig(),
    "retry": ResilienceConfig(retry=RetryPolicy()),
    "hedge": ResilienceConfig(hedge=HedgePolicy()),
    "breaker": ResilienceConfig(breaker=BreakerConfig()),
    "probes": ResilienceConfig(probes=ProbeConfig()),
    "breaker+probes": ResilienceConfig(breaker=BreakerConfig(),
                                       probes=ProbeConfig()),
    "full": ResilienceConfig(retry=RetryPolicy(), hedge=HedgePolicy(),
                             breaker=BreakerConfig(), probes=ProbeConfig()),
}


def get_resilience(key: str) -> ResilienceConfig:
    """Look up a named remedy bundle.

    The error message lists every valid chaos remedy key — including
    the control-plane bundles, which live in their own registry
    (:data:`repro.controlplane.CONTROLPLANE_BUNDLES`) and are resolved
    by :func:`repro.cluster.scenarios.resolve_remedy`.
    """
    try:
        return RESILIENCE_BUNDLES[key]
    except KeyError:
        from repro.controlplane import CONTROLPLANE_BUNDLES

        keys = sorted(set(RESILIENCE_BUNDLES) | set(CONTROLPLANE_BUNDLES))
        raise ConfigurationError(
            "unknown resilience bundle {!r}; valid remedy keys: {}".format(
                key, ", ".join(keys))) from None
