"""Client-side retry: per-attempt timeout + capped exponential backoff.

The paper's clients never retry above TCP — a dropped packet is retried
by the kernel's RTO, but a request that *reaches* a stalled server just
waits.  :class:`RetryPolicy` adds the application-level remedy every
production client has: bound each attempt with a deadline, then retry
with exponentially growing, jittered, capped backoff.

The caveat the chaos suite measures: retries multiply offered load
exactly when the system is least able to absorb it.  An abandoned
attempt keeps consuming a worker thread, a Tomcat thread and DB
connections until it completes — the retry only *adds* work.  The
``retry_amplification`` metric (attempts per logical request) makes
this visible per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request timeout and capped exponential backoff with jitter.

    Parameters
    ----------
    request_timeout:
        Deadline for one attempt, covering both the TCP send (including
        kernel retransmissions) and the wait for the response.
    max_attempts:
        Total attempts per logical request (1 = no retries).
    base_backoff:
        Backoff before the first retry, seconds.
    multiplier:
        Exponential growth factor per further retry.
    backoff_cap:
        Upper bound on any single backoff.
    jitter:
        Fraction of the backoff randomised away: the actual wait is
        uniform in ``[b * (1 - jitter), b * (1 + jitter)]``.  Jitter
        breaks the synchronized retry waves that turn one stall into a
        self-sustaining storm.
    """

    request_timeout: float = 1.5
    max_attempts: int = 3
    base_backoff: float = 0.05
    multiplier: float = 2.0
    backoff_cap: float = 0.5
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff < 0:
            raise ConfigurationError("base_backoff must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1.0")
        if self.backoff_cap < self.base_backoff:
            raise ConfigurationError("backoff_cap must be >= base_backoff")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def backoff_before(self, retry: int, rng: "np.random.Generator") -> float:
        """Backoff before the ``retry``-th retry (1-based), jittered."""
        if retry < 1:
            raise ConfigurationError("retry index must be >= 1")
        backoff = min(self.backoff_cap,
                      self.base_backoff * self.multiplier ** (retry - 1))
        if self.jitter and backoff > 0.0:
            backoff *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return backoff
