"""Hedged requests: duplicate-after-delay, first response wins.

The tail-tolerant alternative to waiting out a millibottleneck: if the
primary dispatch has not answered within ``delay``, send a duplicate
through the balancer (which, having marked the stalled member Busy, or
finding its breaker open, will usually route it elsewhere) and take
whichever copy finishes first.

Cancellation is *cooperative*, mirroring how mod_jk could actually
behave: a dispatch blocked inside ``get_endpoint`` or waiting on a
backend's reply cannot be revoked mid-flight without leaking policy
busyness accounting and endpoint slots, so losing attempts run to
completion (their work is the hedging cost the chaos suite's
``retry_amplification`` metric charges) but are told to stop *before*
their next scheduling round via ``request.cancelled``, which
``LoadBalancer.dispatch`` checks at the top of its retry loop.

Hedge copies are :class:`~repro.workload.request.Request` clones with
negative ids (``-id * 10 - n`` for the n-th hedge of request ``id``) so
traces distinguish them; the client only ever sees the original
request, onto which the winning copy's annotations are written back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.sim.events import AnyOf
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.balancer import LoadBalancer
    from repro.sim.core import Environment
    from repro.sim.process import Process


@dataclass(frozen=True)
class HedgePolicy:
    """Hedging knobs.

    ``delay`` should sit near the response-time tail knee (well above
    the median ~20 ms, well below the 1 s VLRT threshold): hedging the
    median request doubles load for nothing, hedging only VLRTs is too
    late to help them.
    """

    delay: float = 0.2
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ConfigurationError("delay must be positive")
        if self.max_hedges < 1:
            raise ConfigurationError("max_hedges must be >= 1")


class HedgingDispatcher:
    """Wraps a :class:`LoadBalancer` with duplicate-after-delay."""

    def __init__(self, env: "Environment", inner: "LoadBalancer",
                 policy: HedgePolicy | None = None) -> None:
        self.env = env
        self.inner = inner
        self.policy = policy or HedgePolicy()
        self.hedges_issued = 0
        #: Requests won by a hedge copy rather than the primary.
        self.hedge_wins = 0
        #: Losing attempts told to stop early.
        self.cancellations = 0

    @property
    def name(self) -> str:
        return self.inner.name + "+hedge"

    def dispatch(self, request: Request):
        """Process generator: race the primary against delayed hedges."""
        env = self.env
        policy = self.policy
        requests = [request]
        attempts = [self._spawn(request)]
        hedged = 0
        winner: Optional["Process"] = None
        try:
            while winner is None:
                if hedged < policy.max_hedges:
                    timer = env.timeout(policy.delay)
                    yield AnyOf(env, attempts + [timer])
                    winner = self._first_done(attempts)
                    if winner is None:
                        # The timer fired first: issue a hedge copy.
                        hedged += 1
                        self.hedges_issued += 1
                        clone = Request(
                            env, -request.request_id * 10 - hedged,
                            request.interaction, request.client_id)
                        tracer = env.tracer
                        if tracer is not None:
                            # The clone gets its own trace (it is its
                            # own dispatch); the primary's trace just
                            # marks the decision point.
                            tracer.begin(clone.request_id,
                                         interaction=(
                                             request.interaction.name),
                                         client=request.client_id,
                                         hedge_of=request.request_id)
                            tracer.instant(request.request_id,
                                           "hedge.issued",
                                           clone=clone.request_id)
                        requests.append(clone)
                        attempts.append(self._spawn(clone))
                else:
                    yield AnyOf(env, attempts)
                    winner = self._first_done(attempts)
        finally:
            # Whether we return a winner or propagate NoCandidateError,
            # tell still-running attempts to stop at their next
            # scheduling round.
            for attempt_request, attempt in zip(requests, attempts):
                if attempt.is_alive:
                    attempt_request.cancelled = True
                    self.cancellations += 1
        won = requests[attempts.index(winner)]
        if won is not request:
            self.hedge_wins += 1
            request.served_by = won.served_by
            request.dispatched_at = won.dispatched_at
            tracer = env.tracer
            if tracer is not None:
                tracer.instant(request.request_id, "hedge.win",
                               clone=won.request_id)
                tracer.end(won.request_id, status="ok",
                           served_by=won.served_by)
        return request  # statan: ignore[PROC003] -- process value

    def _spawn(self, request: Request) -> "Process":
        process = self.env.process(self.inner.dispatch(request))
        # Losing attempts have no waiter once the race is decided; any
        # late failure (e.g. NoCandidateError after the winner already
        # answered) must not crash the kernel.  Failures that happen
        # *during* the race still propagate through the AnyOf.
        process.defuse()
        return process

    def _first_done(self, attempts: list["Process"]) -> Optional["Process"]:
        for attempt in attempts:
            if attempt.triggered and attempt.ok:
                return attempt
        return None

    def __repr__(self) -> str:
        return "<HedgingDispatcher {} issued={} wins={}>".format(
            self.name, self.hedges_issued, self.hedge_wins)
