"""Per-member circuit breaker: closed / open / half-open.

The paper's 3-state machine (Available/Busy/Error) escalates on failed
endpoint probes and recovers on a timer.  A circuit breaker generalises
it: *closed* admits traffic and counts consecutive failures; *open*
rejects instantly for ``open_duration`` (no worker ever blocks on a
member known to be failing); *half-open* admits a bounded number of
trial requests whose outcomes decide between closing and re-opening.

Two differences from Busy/Error matter under millibottlenecks:

* the open window (default 0.5 s) is sized for transient stalls, not
  the 10 s ``error_recovery`` quarantine — a millibottlenecked member
  comes back after one short window instead of being ejected;
* recovery is evidence-driven (trial outcomes, or health-probe results
  feeding :meth:`CircuitBreaker.record_success`) rather than purely
  timer-driven.

The breaker never takes the whole cluster out: candidate selection
falls back to ignoring breakers when every member's breaker is open
(see ``LoadBalancer._pick``), and an open breaker re-admits trials
whenever ``open_duration`` has elapsed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Breaker tuning knobs.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    open_duration:
        Seconds an open breaker rejects before admitting trials.
    half_open_trials:
        Trial admissions per half-open episode; when all their outcomes
        are lost (e.g. a worker hung on a crashed member), a fresh
        trial batch is admitted after another ``open_duration``.
    close_after:
        Successful trials needed to close from half-open.  A single
        failure re-opens regardless.
    """

    failure_threshold: int = 3
    open_duration: float = 0.5
    half_open_trials: int = 2
    close_after: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.open_duration <= 0:
            raise ConfigurationError("open_duration must be positive")
        if self.half_open_trials < 1:
            raise ConfigurationError("half_open_trials must be >= 1")
        if not 1 <= self.close_after <= self.half_open_trials:
            raise ConfigurationError(
                "close_after must be in [1, half_open_trials]")


class CircuitBreaker:
    """One member's breaker, fed by endpoint probes and health probes."""

    __slots__ = ("env", "config", "state", "failures", "opened_at",
                 "_half_open_since", "_trials_admitted", "_trial_successes",
                 "opens", "closes", "rejections")

    def __init__(self, env: "Environment",
                 config: BreakerConfig | None = None) -> None:
        self.env = env
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        #: Consecutive failures observed while closed.
        self.failures = 0
        self.opened_at = 0.0
        self._half_open_since = 0.0
        self._trials_admitted = 0
        self._trial_successes = 0
        #: Lifetime transition / rejection counters for reports.
        self.opens = 0
        self.closes = 0
        self.rejections = 0

    # -- read-only view (no transitions, used by candidate ranking) -------
    def admits(self, now: float) -> bool:
        """Whether a request arriving ``now`` could be admitted.

        Side-effect free: the actual OPEN -> HALF_OPEN transition (and
        rejection accounting) happens in :meth:`allow` on the dispatch
        path, but the ranking filter must already see a cooled-down
        breaker as pickable or it would never receive its trial.
        """
        if self.state is BreakerState.OPEN:
            return now - self.opened_at >= self.config.open_duration
        if self.state is BreakerState.HALF_OPEN:
            return self._trial_available(now)
        return True

    # -- admission gate ----------------------------------------------------
    def allow(self) -> bool:
        """Admission decision for one request (transitions included)."""
        if self.state is BreakerState.CLOSED:
            return True
        now = self.env.now
        if self.state is BreakerState.OPEN:
            if now - self.opened_at < self.config.open_duration:
                self.rejections += 1
                return False
            self._enter_half_open(now)
        if not self._trial_available(now):
            self.rejections += 1
            return False
        self._trials_admitted += 1
        return True

    def _trial_available(self, now: float) -> bool:
        if self._trials_admitted < self.config.half_open_trials:
            return True
        # Every trial of this batch was admitted but no verdict arrived
        # (outcomes can be lost when a worker hangs on a dead member):
        # admit a fresh batch after another open_duration.
        return now - self._half_open_since >= self.config.open_duration

    def _enter_half_open(self, now: float) -> None:
        self.state = BreakerState.HALF_OPEN
        self._half_open_since = now
        self._trials_admitted = 0
        self._trial_successes = 0

    # -- outcome feed ------------------------------------------------------
    def record_success(self) -> None:
        """A request (or health probe) against the member succeeded."""
        if self.state is BreakerState.HALF_OPEN:
            self._trial_successes += 1
            if self._trial_successes >= self.config.close_after:
                self.state = BreakerState.CLOSED
                self.failures = 0
                self.closes += 1
        elif self.state is BreakerState.CLOSED:
            self.failures = 0
        # Success while OPEN (a stale in-flight request): no evidence
        # about the member *now*; ignored.

    def record_failure(self) -> None:
        """A request (or health probe) against the member failed."""
        if self.state is BreakerState.HALF_OPEN:
            self._open()
        elif self.state is BreakerState.CLOSED:
            self.failures += 1
            if self.failures >= self.config.failure_threshold:
                self._open()
        # Failure while OPEN: already open, nothing to escalate.

    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = self.env.now
        self.failures = 0
        self.opens += 1

    def __repr__(self) -> str:
        return "<CircuitBreaker {} failures={} opens={}>".format(
            self.state.value, self.failures, self.opens)
