"""Wiring a :class:`~repro.controlplane.ControlPlaneConfig` onto a
built system.

This is the chaos-suite/bundle entry point, the control-plane analogue
of ``install_resilience``-style wiring in the runner: frontend-scoped
mechanisms (admission, leveling, bulkhead) go onto every frontend, and
the autoscaler attaches to the first worker-service tier of the
topology spec — for the classic RUBBoS topology that is the Tomcat
tier, the one behind the load balancer where the paper's replica
arithmetic happens.

Spec-driven topologies place mechanisms per tier/boundary instead (see
:mod:`repro.cluster.spec`); this installer exists so a plain
:class:`~repro.cluster.runner.ExperimentConfig` can carry one frozen
config and stay picklable for the parallel driver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controlplane import ControlPlaneConfig
from repro.controlplane.admission import TokenBucketAdmission
from repro.controlplane.autoscaler import ReactiveAutoscaler
from repro.controlplane.bulkhead import Bulkhead
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import NTierSystem
    from repro.sim.core import Environment

__all__ = ["autoscaled_tier_name", "install_controlplane"]


def autoscaled_tier_name(system: "NTierSystem") -> str:
    """The tier a bundle-level autoscaler controls: the first
    worker-service tier of the spec."""
    if system.spec is None:
        raise ConfigurationError(
            "autoscaling requires a spec-built system (the replica "
            "factory lives in the topology spec)")
    for tier in system.spec.tiers:
        if tier.service == "worker":
            return tier.name
    raise ConfigurationError(
        "topology {!r} has no worker tier to autoscale".format(
            system.spec.name))


def install_controlplane(env: "Environment", system: "NTierSystem",
                         config: ControlPlaneConfig) -> None:
    """Attach every configured mechanism of ``config`` to ``system``.

    Call once, after the system is built and before the run starts.
    An all-``None`` config installs nothing and schedules nothing.
    """
    if config.admission is not None:
        for frontend in system.frontends:
            controller = TokenBucketAdmission(
                env, config.admission, name=frontend.name + ".admission")
            frontend.install_admission(controller)
            system.admissions.append(controller)
    if config.bulkhead is not None:
        for frontend in system.frontends:
            bulkhead = Bulkhead(env, config.bulkhead,
                                name=frontend.name + ".bulkhead")
            frontend.install_bulkhead(bulkhead)
            system.bulkheads.append(bulkhead)
    if config.leveling is not None:
        for frontend in system.frontends:
            leveler = frontend.install_leveling(config.leveling)
            system.levelers.append(leveler)
    if config.autoscaler is not None:
        tier_name = autoscaled_tier_name(system)
        system.autoscalers.append(ReactiveAutoscaler(
            env, system, tier_name, config.autoscaler))
