"""The control plane: capacity management around the data path.

PR 3's resilience layer holds the *data-plane* remedies (retries,
hedging, breakers, probes).  This package holds the mechanisms a real
deployment's control plane adds on top, each opt-in and zero-event
when unconfigured:

* :class:`~repro.controlplane.autoscaler.ReactiveAutoscaler` — samples
  per-tier CPU/queue depth and adds/removes replicas with provisioning
  lag; new replicas join every upstream balancer cold;
* :class:`~repro.controlplane.admission.TokenBucketAdmission` —
  capacity/refill-rate/lease token bucket at the frontend, shed or
  queue on empty;
* :class:`~repro.controlplane.leveling.LevelingQueue` — bounded FIFO
  in front of a balancer boundary that frees frontend workers so the
  accept queue never overflows (no drops, no TCP retransmission);
* :class:`~repro.controlplane.bulkhead.Bulkhead` — read/write
  partitioning of a tier's capacity.

:class:`ControlPlaneConfig` bundles any subset, mirroring
:class:`~repro.resilience.ResilienceConfig`; the named
:data:`CONTROLPLANE_BUNDLES` extend the chaos suite's remedy axis
alongside :data:`~repro.resilience.RESILIENCE_BUNDLES`.  The headline
result they exist to pin: the autoscaler's control loop — at any
plausible sampling interval — cannot catch a 50–200 ms
millibottleneck, while admission + leveling eliminate the
retransmission-driven VLRTs without touching the balancer policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.controlplane.admission import (
    AdmissionConfig,
    AdmissionRecord,
    TokenBucketAdmission,
)
from repro.controlplane.autoscaler import (
    AutoscalerConfig,
    ReactiveAutoscaler,
    ScaleEvent,
)
from repro.controlplane.bulkhead import Bulkhead, BulkheadConfig
from repro.controlplane.leveling import (
    LevelingConfig,
    LevelingDispatcher,
    LevelingQueue,
)
from repro.errors import ConfigurationError

__all__ = [
    "AdmissionConfig",
    "AdmissionRecord",
    "AutoscalerConfig",
    "Bulkhead",
    "BulkheadConfig",
    "CONTROLPLANE_BUNDLES",
    "ControlPlaneConfig",
    "LevelingConfig",
    "LevelingDispatcher",
    "LevelingQueue",
    "ReactiveAutoscaler",
    "ScaleEvent",
    "TokenBucketAdmission",
    "get_controlplane",
]


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Any subset of the control plane, as one picklable value object.

    ``None`` for a mechanism leaves it out entirely — the wiring points
    check for presence, so an all-``None`` config (or no config at all)
    is event-for-event identical to the seed system.
    """

    autoscaler: Optional[AutoscalerConfig] = None
    admission: Optional[AdmissionConfig] = None
    leveling: Optional[LevelingConfig] = None
    bulkhead: Optional[BulkheadConfig] = None

    @property
    def enabled(self) -> bool:
        return any(component is not None for component in
                   (self.autoscaler, self.admission, self.leveling,
                    self.bulkhead))


#: Named control-plane bundles the chaos suite accepts on its remedy
#: axis alongside the resilience bundles.  ``autoscale`` is a sensible
#: production loop (1 s sampling, 2 s boot); ``autoscale_fast`` is the
#: fastest plausible reactive loop (250 ms sampling, 500 ms boot) — the
#: point of the headline cells is that even *that* misses a sub-second
#: millibottleneck.
CONTROLPLANE_BUNDLES: dict[str, ControlPlaneConfig] = {
    "autoscale": ControlPlaneConfig(autoscaler=AutoscalerConfig()),
    "autoscale_fast": ControlPlaneConfig(autoscaler=AutoscalerConfig(
        interval=0.25, warmup=0.5, cooldown=0.5)),
    "admission": ControlPlaneConfig(admission=AdmissionConfig()),
    "leveling": ControlPlaneConfig(leveling=LevelingConfig()),
    "admission+leveling": ControlPlaneConfig(
        admission=AdmissionConfig(), leveling=LevelingConfig()),
    "bulkhead": ControlPlaneConfig(bulkhead=BulkheadConfig()),
}


def get_controlplane(key: str) -> ControlPlaneConfig:
    """Look up a named control-plane bundle."""
    try:
        return CONTROLPLANE_BUNDLES[key]
    except KeyError:
        raise ConfigurationError(
            "unknown control-plane bundle {!r} (have: {})".format(
                key, ", ".join(sorted(CONTROLPLANE_BUNDLES)))) from None
