"""Bulkhead partitioning of a tier's capacity across request classes.

The RUBBoS workload splits naturally into read and write interactions
(:attr:`~repro.workload.interactions.Interaction.is_write`); a bulkhead
caps how many slots of a tier's capacity each class may hold at once,
so a pile-up of slow writes behind a millibottleneck cannot starve the
read traffic of the whole tier (and vice versa).

Implemented as one semaphore per class consulted on entry:

* ``shed`` — a request whose class is at its limit is answered fast
  (frontend) or degrades via the no-candidate path (pooled tier);
* ``wait`` — the request queues FIFO for a class slot, which bounds
  the class's concurrency without turning excess into errors.

Zero-cost when absent: unconfigured tiers never consult a bulkhead,
and a bulkhead itself schedules no events — only waiters do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.workload.request import Request

#: What happens to a request whose class partition is full.
BULKHEAD_MODES = ("shed", "wait")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class BulkheadConfig:
    """Read/write capacity partition (frozen, JSON-roundtrippable)."""

    #: Concurrent slots the read class may hold.
    read_slots: int = 6
    #: Concurrent slots the write class may hold.
    write_slots: int = 2
    #: ``shed`` rejects over-limit requests; ``wait`` queues them.
    mode: str = "shed"

    def __post_init__(self) -> None:
        _require(self.read_slots >= 1, "bulkhead read_slots must be >= 1")
        _require(self.write_slots >= 1, "bulkhead write_slots must be >= 1")
        _require(self.mode in BULKHEAD_MODES,
                 "unknown bulkhead mode {!r} (one of {})".format(
                     self.mode, ", ".join(BULKHEAD_MODES)))


class Bulkhead:
    """Runtime per-class semaphores guarding one tier server."""

    def __init__(self, env: "Environment", config: BulkheadConfig,
                 name: str = "bulkhead") -> None:
        self.env = env
        self.config = config
        self.name = name
        self._partitions = {
            "read": Resource(env, capacity=config.read_slots),
            "write": Resource(env, capacity=config.write_slots),
        }
        self.admitted = {"read": 0, "write": 0}
        self.shed = {"read": 0, "write": 0}

    @staticmethod
    def request_class(request: "Request") -> str:
        """The partition a request belongs to."""
        return "write" if request.interaction.is_write else "read"

    def partition(self, cls: str) -> Resource:
        return self._partitions[cls]

    def acquire(self, request: "Request"):
        """Process generator; returns a held slot, or ``None`` (shed).

        The caller must ``release()`` a returned slot when the request
        leaves the tier.
        """
        cls = self.request_class(request)
        partition = self._partitions[cls]
        if self.config.mode == "shed":
            if partition.available <= 0:
                self.shed[cls] += 1
                return None
            slot = partition.request()
            self.admitted[cls] += 1
            return slot
        slot = partition.request()
        if not slot.triggered:
            tracer = self.env.tracer
            if tracer is None:
                yield slot
            else:
                span = tracer.start(request.request_id,
                                    "bulkhead.queue_wait",
                                    partition=cls)
                yield slot
                tracer.finish(span)
        self.admitted[cls] += 1
        return slot

    def sheds(self) -> int:
        return sum(self.shed.values())

    def __repr__(self) -> str:
        return "<Bulkhead {} read={}/{} write={}/{}>".format(
            self.name,
            self._partitions["read"].count, self.config.read_slots,
            self._partitions["write"].count, self.config.write_slots)
