"""Token-bucket admission control at the frontend.

The bucket holds up to ``capacity`` tokens and refills continuously at
``refill_rate`` tokens per second; every admitted request consumes a
``lease`` of tokens.  Refill is computed lazily from elapsed time, so
an idle (or absent) controller schedules **zero** events — the
zero-cost-when-off discipline every control-plane mechanism follows.

Two modes mirror the classic pattern split:

* ``shed`` — a request that finds the bucket empty is rejected
  immediately with a fast (useless) response, freeing the worker slot.
* ``queue`` — the request *reserves* its lease (the balance may go
  negative, which is what serialises concurrent waiters) and sleeps
  until the refill covers it; reservations whose wait would exceed
  ``max_wait`` are shed instead of queued.

Every decision is appended to :attr:`TokenBucketAdmission.records`
(bounded by ``record_limit``), so an experiment can audit exactly when
the controller started shedding relative to a millibottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.workload.request import Request

#: Admission decision outcomes.
ADMISSION_MODES = ("shed", "queue")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class AdmissionConfig:
    """Token-bucket admission knobs (frozen, JSON-roundtrippable)."""

    #: Bucket size in tokens — the burst the frontend absorbs unshed.
    capacity: float = 50.0
    #: Continuous refill in tokens per second — the sustained admit rate.
    #: The default sits above any one frontend's steady arrival rate at
    #: either built-in profile, so the bucket only drains — and sheds —
    #: while a stall holds arrivals back and then releases them as a
    #: burst.  Admission is stall protection here, not throttling.
    refill_rate: float = 500.0
    #: Tokens one admitted request consumes.
    lease: float = 1.0
    #: ``shed`` rejects on empty; ``queue`` waits up to ``max_wait``.
    mode: str = "shed"
    #: Longest a queued request may wait for its lease (queue mode).
    max_wait: float = 0.5
    #: Cap on retained per-request admission records.
    record_limit: int = 20000

    def __post_init__(self) -> None:
        _require(self.capacity > 0, "admission capacity must be positive")
        _require(self.refill_rate > 0,
                 "admission refill_rate must be positive")
        _require(self.lease > 0, "admission lease must be positive")
        _require(self.lease <= self.capacity,
                 "admission lease cannot exceed capacity")
        _require(self.mode in ADMISSION_MODES,
                 "unknown admission mode {!r} (one of {})".format(
                     self.mode, ", ".join(ADMISSION_MODES)))
        _require(self.max_wait > 0, "admission max_wait must be positive")
        _require(self.record_limit >= 0,
                 "admission record_limit must be >= 0")


@dataclass(frozen=True)
class AdmissionRecord:
    """One admission decision, for post-run auditing."""

    at: float
    request_id: int
    outcome: str  # "admitted" | "queued" | "shed"
    wait: float
    tokens_after: float


class TokenBucketAdmission:
    """Runtime token bucket guarding one frontend server."""

    def __init__(self, env: "Environment", config: AdmissionConfig,
                 name: str = "admission") -> None:
        self.env = env
        self.config = config
        self.name = name
        self._tokens = config.capacity
        self._updated_at = env.now
        self.admitted = 0
        self.queued = 0
        self.shed = 0
        self.records: list[AdmissionRecord] = []

    # -- bucket accounting ---------------------------------------------------
    def _refill(self) -> None:
        now = self.env.now
        elapsed = now - self._updated_at
        if elapsed > 0:
            self._tokens = min(
                self.config.capacity,
                self._tokens + elapsed * self.config.refill_rate)
            self._updated_at = now

    @property
    def tokens(self) -> float:
        """Current balance (refilled to now); may be negative in queue
        mode while waiters hold reservations."""
        self._refill()
        return self._tokens

    def _record(self, request: "Request", outcome: str, wait: float) -> None:
        if len(self.records) < self.config.record_limit:
            self.records.append(AdmissionRecord(
                at=self.env.now, request_id=request.request_id,
                outcome=outcome, wait=wait, tokens_after=self._tokens))

    # -- decisions -----------------------------------------------------------
    def admit(self, request: "Request"):
        """Process generator; returns ``True`` when admitted.

        In shed mode this never yields; in queue mode it may sleep for
        the lease's refill deficit.  Either way the caller simply
        ``yield from``\\ s it.
        """
        config = self.config
        self._refill()
        if self._tokens >= config.lease:
            self._tokens -= config.lease
            self.admitted += 1
            self._record(request, "admitted", 0.0)
            return True
        if config.mode == "shed":
            self.shed += 1
            self._record(request, "shed", 0.0)
            return False
        # Queue mode: reserve the lease up front (the balance going
        # negative is the reservation) and sleep out the deficit.
        wait = (config.lease - self._tokens) / config.refill_rate
        if wait > config.max_wait:
            self.shed += 1
            self._record(request, "shed", wait)
            return False
        self._tokens -= config.lease
        self.queued += 1
        tracer = self.env.tracer
        if tracer is None:
            yield self.env.timeout(wait)
        else:
            span = tracer.start(request.request_id, "admission.queue_wait",
                                controller=self.name)
            yield self.env.timeout(wait)
            tracer.finish(span)
        self.admitted += 1
        self._record(request, "queued", wait)
        return True

    def __repr__(self) -> str:
        return "<TokenBucketAdmission {} tokens={:.1f} shed={}>".format(
            self.name, self._tokens, self.shed)
