"""Reactive autoscaling of one tier, with realistic provisioning lag.

The control loop the paper argues is structurally too slow: sample a
per-tier load signal every ``interval`` seconds, compare against
watermarks, and add or remove replicas.  A scale-up is not instant —
``warmup`` models image boot plus service start, and the new replica
joins every upstream balancer **cold** (no established AJP
connections, ``preconnect=False``), so its first requests pay the
connection-handshake probe like a real freshly-started backend.

A 50–200 ms millibottleneck is invisible at any plausible ``interval``
(the stall is over before the next sample) and irrelevant to capacity
(average utilisation stays modest), which is exactly what the chaos
cells demonstrate: the autoscaler reacts to *sustained* load, never to
the sub-second transients that cause VLRTs.

Zero-cost when absent: the sampling process exists only when a tier
configures an autoscaler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import NTierSystem
    from repro.sim.core import Environment

#: Load signals the control loop can sample.
AUTOSCALER_METRICS = ("queue", "cpu")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive control-loop knobs (frozen, JSON-roundtrippable)."""

    #: Sampling period of the control loop — its reaction-time floor.
    interval: float = 1.0
    #: Provisioning + boot lag before a new replica can serve.
    warmup: float = 2.0
    #: Scale up when the mean per-replica signal exceeds this.
    high_watermark: float = 6.0
    #: Scale down when the mean per-replica signal falls below this.
    low_watermark: float = 0.5
    min_replicas: int = 1
    max_replicas: int = 8
    #: Minimum time between scaling decisions.
    cooldown: float = 2.0
    #: ``queue`` samples mean in-server requests per replica; ``cpu``
    #: samples mean host utilisation over the last interval (0..1).
    metric: str = "queue"

    def __post_init__(self) -> None:
        _require(self.interval > 0, "autoscaler interval must be positive")
        _require(self.warmup >= 0, "autoscaler warmup must be >= 0")
        _require(self.cooldown >= 0, "autoscaler cooldown must be >= 0")
        _require(self.min_replicas >= 1,
                 "autoscaler min_replicas must be >= 1")
        _require(self.max_replicas >= self.min_replicas,
                 "autoscaler max_replicas must be >= min_replicas")
        _require(self.low_watermark >= 0,
                 "autoscaler low_watermark must be >= 0")
        _require(self.high_watermark > self.low_watermark,
                 "autoscaler high_watermark must exceed low_watermark")
        _require(self.metric in AUTOSCALER_METRICS,
                 "unknown autoscaler metric {!r} (one of {})".format(
                     self.metric, ", ".join(AUTOSCALER_METRICS)))


@dataclass(frozen=True)
class ScaleEvent:
    """One control-loop action, for post-run auditing."""

    at: float
    action: str  # "scale_up" | "up_complete" | "scale_down"
    replica: str
    metric: float
    replicas: int


class ReactiveAutoscaler:
    """Samples one tier's load signal and adds/removes replicas."""

    def __init__(self, env: "Environment", system: "NTierSystem",
                 tier_name: str, config: AutoscalerConfig,
                 name: Optional[str] = None) -> None:
        from repro.cluster.topology import replica_factory_for

        self.env = env
        self.system = system
        self.tier_name = tier_name
        self.config = config
        self.name = name or tier_name + ".autoscaler"
        # Resolved eagerly so misconfiguration fails at build time, not
        # mid-run inside the control loop.
        self._factory = replica_factory_for(system, tier_name)
        #: Replicas ever created (live + warming + retired) — keeps
        #: host/replica names unique across churn.
        self._created = len(system.tiers[tier_name])
        self._warming = 0
        self._last_action = -float("inf")
        self.events: list[ScaleEvent] = []
        self.samples: list[tuple[float, float]] = []
        self._process = env.process(self._run())

    # -- observability -------------------------------------------------------
    @property
    def replicas(self) -> int:
        """Live replicas of the controlled tier."""
        return len(self.system.tiers[self.tier_name])

    @property
    def warming(self) -> int:
        """Replicas provisioned but still inside their warm-up lag."""
        return self._warming

    @property
    def scale_ups(self) -> int:
        """Completed scale-ups (the replica finished warming)."""
        return sum(1 for event in self.events
                   if event.action == "up_complete")

    @property
    def scale_downs(self) -> int:
        return sum(1 for event in self.events
                   if event.action == "scale_down")

    # -- control loop --------------------------------------------------------
    def _metric(self) -> float:
        servers = self.system.tiers[self.tier_name]
        if not servers:
            return 0.0
        if self.config.metric == "queue":
            total = sum(server.in_server for server in servers)
            return total / len(servers)
        now = self.env.now
        start = max(0.0, now - self.config.interval)
        if now <= start:
            return 0.0
        total = sum(server.host.cpu.utilization(start, now)
                    for server in servers)
        return total / len(servers)

    def _run(self):
        config = self.config
        # Not a retry loop: a control loop sampling once per interval,
        # bounded by the experiment horizon like every sim process.
        while True:  # statan: ignore[RETRY001] -- periodic control loop, no failed operation being retried
            yield self.env.timeout(config.interval)
            value = self._metric()
            self.samples.append((self.env.now, value))
            now = self.env.now
            if now - self._last_action < config.cooldown:
                continue
            planned = self.replicas + self._warming
            if (value > config.high_watermark
                    and planned < config.max_replicas):
                self._last_action = now
                self._warming += 1
                self.events.append(ScaleEvent(
                    at=now, action="scale_up", replica="(warming)",
                    metric=value, replicas=self.replicas))
                self.env.process(self._provision())
            elif (value < config.low_watermark
                  and self.replicas > config.min_replicas
                  and self._warming == 0):
                self._last_action = now
                self._scale_down(value)

    def _provision(self):
        """Warm-up lag, then build the replica and join it cold."""
        yield self.env.timeout(self.config.warmup)
        index = self._created
        self._created += 1
        self._warming -= 1
        server = self._factory(index)
        self.events.append(ScaleEvent(
            at=self.env.now, action="up_complete", replica=server.name,
            metric=self._metric(), replicas=self.replicas))

    def _scale_down(self, value: float) -> None:
        from repro.cluster.topology import retire_replica

        servers = self.system.tiers[self.tier_name]
        server = servers[-1]
        retire_replica(self.system, self.tier_name, server)
        self.events.append(ScaleEvent(
            at=self.env.now, action="scale_down", replica=server.name,
            metric=value, replicas=self.replicas))

    def __repr__(self) -> str:
        return "<ReactiveAutoscaler {} replicas={} warming={}>".format(
            self.name, self.replicas, self._warming)
