"""Queue-based load leveling in front of a balancer boundary.

The paper's VLRT mechanism needs every frontend worker to be stuck in
the dispatcher before the accept queue can overflow.  A leveling queue
breaks that chain: the worker parks the request in a **bounded** FIFO
and returns to the accept loop immediately, while a fixed set of drain
processes forwards queued requests through the boundary's dispatcher.
The kernel backlog then never fills behind a millibottleneck — TCP
retransmission (and its RTO-multiple VLRTs) never triggers — at the
price of explicit, fast overflow decisions once the FIFO is full:

* ``reject`` — refuse the arriving request (it gets a fast shed
  response);
* ``drop_oldest`` — evict the head of the queue to admit the arrival
  (the evicted request gets the shed response instead).

The queue itself schedules no events; only the drain processes do, and
they exist only when a leveling queue is configured.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.sim.events import _PENDING, Event
from repro.sim.queues import StoreGet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.workload.request import Request

#: What to do with a full leveling queue.
OVERFLOW_POLICIES = ("reject", "drop_oldest")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class LevelingConfig:
    """Bounded-FIFO load-leveling knobs (frozen, JSON-roundtrippable)."""

    #: Maximum queued requests — the burst the boundary absorbs.  Sized
    #: to ride out a full flush stall at the paper's scale without
    #: shedding the whole release burst.
    capacity: int = 128
    #: Concurrent drain processes forwarding into the dispatcher.
    drain_concurrency: int = 8
    #: Overflow policy once the FIFO is full.
    overflow: str = "reject"

    def __post_init__(self) -> None:
        _require(self.capacity >= 1, "leveling capacity must be >= 1")
        _require(self.drain_concurrency >= 1,
                 "leveling drain_concurrency must be >= 1")
        _require(self.overflow in OVERFLOW_POLICIES,
                 "unknown leveling overflow policy {!r} (one of {})".format(
                     self.overflow, ", ".join(OVERFLOW_POLICIES)))


class LevelingQueue:
    """Bounded FIFO + drain pool decoupling a tier from its boundary.

    ``drain`` is a callable ``request -> process generator`` that runs
    the boundary crossing (dispatch, post-work, completion); ``on_shed``
    is called with every rejected or evicted request so the owner can
    answer it fast and keep its conservation identities exact.
    """

    def __init__(self, env: "Environment", config: LevelingConfig,
                 drain: Callable, on_shed: Callable,
                 name: str = "leveling") -> None:
        self.env = env
        self.config = config
        self.name = name
        self._drain = drain
        self._on_shed = on_shed
        # Bounded by offer() below, never by the deque itself —
        # drop_oldest must run the eviction callback, which maxlen's
        # silent eviction cannot.
        self._items: deque = deque()  # statan: ignore[QUEUE001] -- offer() enforces config.capacity
        self._getters: deque[StoreGet] = deque()  # statan: ignore[QUEUE001] -- one waiter per drain process
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.evicted = 0
        self.drained = 0
        self.peak_length = 0
        self._drains = [env.process(self._drain_loop())
                        for _ in range(config.drain_concurrency)]

    def __len__(self) -> int:
        return len(self._items)

    @property
    def sheds(self) -> int:
        """Requests answered by overflow policy instead of the boundary."""
        return self.rejected + self.evicted

    # -- producer side -------------------------------------------------------
    def offer(self, request: "Request") -> bool:
        """Park ``request`` without blocking; ``False`` means rejected.

        ``drop_oldest`` always accepts the arrival but evicts (and
        sheds, via ``on_shed``) the queue head to make room.
        """
        self.offered += 1
        tracer = self.env.tracer
        if self._getters:
            # A drain process is idle: hand the request over directly.
            self.accepted += 1
            get = self._getters.popleft()
            get._value = request
            self.env._trigger_now(get)
            return True
        if len(self._items) >= self.config.capacity:
            if self.config.overflow == "reject":
                self.rejected += 1
                return False
            victim = self._items.popleft()
            self.evicted += 1
            if tracer is not None:
                tracer.finish_named(victim.request_id,
                                    self.name + ".queue_wait")
            self._on_shed(victim)
        self.accepted += 1
        if tracer is not None:
            tracer.start_named(request.request_id,
                               self.name + ".queue_wait", queue=self.name)
        self._items.append(request)
        if len(self._items) > self.peak_length:
            self.peak_length = len(self._items)
        return True

    # -- consumer side -------------------------------------------------------
    def _get(self) -> StoreGet:
        event = StoreGet.__new__(StoreGet)
        event.env = self.env
        event.callbacks = []
        event._ok = True
        event._defused = False
        event._store = self
        if self._items:
            request = self._items.popleft()
            tracer = self.env.tracer
            if tracer is not None:
                tracer.finish_named(request.request_id,
                                    self.name + ".queue_wait")
            event._value = request
            self.env._trigger_now(event)
        else:
            event._value = _PENDING
            self._getters.append(event)
        return event

    # StoreGet.cancel expects the owning store to expose ``_get_queue``.
    @property
    def _get_queue(self) -> deque:
        return self._getters

    def _drain_loop(self):
        while True:
            request = yield self._get()
            self.drained += 1
            yield from self._drain(request)

    def __repr__(self) -> str:
        return "<LevelingQueue {} {}/{} sheds={}>".format(
            self.name, len(self._items), self.config.capacity, self.sheds)


class LevelingDispatcher:
    """Drop-in dispatcher wrapper levelling a mid-tier boundary.

    Frontends integrate :class:`LevelingQueue` natively (the worker
    answers the client while drains dispatch); deeper boundaries keep
    request/reply semantics, so this wrapper parks the caller on a
    per-request reply event instead: callers never block *inside* the
    inner dispatcher, only on the bounded queue.  Overflow surfaces as
    :class:`~repro.errors.NoCandidateError`, which upstream tiers
    already translate into fast degraded responses.
    """

    def __init__(self, env: "Environment", inner, config: LevelingConfig,
                 name: str = "leveling") -> None:
        from repro.errors import NoCandidateError

        self.env = env
        self.inner = inner
        self.name = name
        self._no_candidate = NoCandidateError
        self._replies: dict[int, Event] = {}
        self.queue = LevelingQueue(env, config, drain=self._drain_one,
                                   on_shed=self._shed, name=name)

    def dispatch(self, request: "Request"):
        reply = Event(self.env)
        self._replies[request.request_id] = reply
        if not self.queue.offer(request):
            del self._replies[request.request_id]
            raise self._no_candidate(
                self.name + ": leveling queue full")
        result = yield reply
        return result

    def _drain_one(self, request: "Request"):
        reply = self._replies.pop(request.request_id)
        try:
            yield from self.inner.dispatch(request)
        except self._no_candidate as error:
            reply.fail(error)
            return
        reply.succeed(request)

    def _shed(self, victim: "Request") -> None:
        reply = self._replies.pop(victim.request_id)
        reply.fail(self._no_candidate(
            self.name + ": evicted from leveling queue"))

    def __getattr__(self, attribute: str):
        # Accounting attributes (dispatches, completed, members...) read
        # through to the wrapped dispatcher.
        return getattr(self.inner, attribute)
