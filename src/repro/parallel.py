"""Parallel experiment fan-out.

Independent experiment configurations (different seeds, policies, or
profile ablations) share no state — each run owns its environment, its
RNG, and its metrics — so they parallelise embarrassingly well across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Full :class:`~repro.cluster.runner.ExperimentResult` objects cannot
cross a process boundary (they hold live simulation objects: generator
coroutines, event heaps, open samplers).  Workers therefore reduce each
result to a picklable :class:`ExperimentSummary` before returning it.
The summary duck-types the reporting surface of ``ExperimentResult``
(``config``, ``stats()``, ``table1_row()``, ``dropped_packets()``,
``summary()``), so everything in :mod:`repro.analysis.report` accepts
either.

Determinism contract: each run is seeded solely by its config's
``seed``, so the same config produces bit-identical statistics whether
it runs serially, in a pool, or interleaved with other runs — results
are merged back in submission order, keyed by index, never by
completion order.

Usage::

    from repro.parallel import replicate, run_experiments

    summaries = run_experiments(configs, workers=4)
    rep = replicate(config, seeds=range(8), workers=4)
    print(rep.aggregate()["avg_rt_ms_mean"])
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.cluster.runner import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
)
from repro.errors import ConfigurationError
from repro.metrics.stats import ResponseTimeStats
from repro.metrics.timeseries import TimeSeries
from repro.workload.mix import WorkloadMix

__all__ = [
    "ExperimentSummary",
    "Replication",
    "replicate",
    "run_experiments",
    "summarize",
]


@dataclass(frozen=True)
class ExperimentSummary:
    """Picklable reduction of an :class:`ExperimentResult`.

    Carries the per-run numbers every report needs while remaining a
    plain value object: config, response-time statistics, drop and
    millibottleneck counts, and the sampled queue/dirty-page timelines.
    """

    config: ExperimentConfig
    duration: float
    response_stats: ResponseTimeStats
    dropped: int
    millibottlenecks: int
    queue_series: dict[str, TimeSeries]
    dirty_series: dict[str, TimeSeries]
    #: Chaos-suite counters (all zero for a fault-free, remedy-free run;
    #: defaults keep summaries pickled by older code readable).
    error_responses_count: int = 0
    abandoned: int = 0
    attempts: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    fault_count: int = 0
    #: Requests answered fast by a control-plane gate (admission,
    #: bulkhead or leveling overflow) instead of being served.
    sheds_count: int = 0
    #: VLRT count per sample window (time-to-recover input); ``None``
    #: on summaries pickled by older code.
    vlrt_series: Optional[TimeSeries] = None
    #: Modern-policy counters (zero unless the run's balancers probe
    #: or pin sessions).
    probe_messages_count: int = 0
    sticky_violations_count: int = 0

    # -- ExperimentResult reporting surface (duck-typed) -----------------
    def stats(self) -> ResponseTimeStats:
        """Table-I style summary statistics."""
        return self.response_stats

    def table1_row(self) -> dict[str, float]:
        """One row of Table I for this run."""
        row = {"policy": self.config.bundle().description}
        row.update(self.response_stats.row())
        return row

    def dropped_packets(self) -> int:
        """Client packets lost to web-tier accept-queue overflow."""
        return self.dropped

    # -- chaos metrics (mirror ExperimentResult's formulas) --------------
    def error_responses(self) -> int:
        """Fast 503s returned because every backend was in Error."""
        return self.error_responses_count

    def hedges_issued(self) -> int:
        return self.hedges

    def sheds(self) -> int:
        """Requests answered fast by a control-plane gate."""
        return self.sheds_count

    def vlrt_windows(self) -> TimeSeries:
        """VLRT count per sample window (empty for legacy summaries)."""
        if self.vlrt_series is None:
            return TimeSeries.from_arrays([], [], name="vlrt")
        return self.vlrt_series

    def probe_messages(self) -> int:
        """Probe messages sent by probing policies (Prequal's pool)."""
        return self.probe_messages_count

    def sticky_violations(self) -> int:
        """Broken affinity promises recorded by sticky-session policies."""
        return self.sticky_violations_count

    def availability(self) -> float:
        """Successful client-visible outcomes / all client-visible outcomes."""
        total = self.response_stats.count + self.abandoned
        if total == 0:
            return 1.0
        return (self.response_stats.count - self.error_responses_count
                - self.sheds_count) / total

    def retry_amplification(self) -> float:
        """System-side attempts per logical client request."""
        logical = self.response_stats.count + self.abandoned
        if logical == 0:
            return 1.0
        return (self.attempts + self.hedges) / logical

    def goodput(self) -> float:
        """Useful responses (no 503, not shed, under the VLRT
        threshold) per second."""
        stats = self.response_stats
        useful = (stats.count - self.error_responses_count
                  - self.sheds_count
                  - stats.vlrt_fraction * stats.count)
        return max(0.0, useful) / self.duration

    def summary(self) -> str:
        """A one-paragraph human-readable summary."""
        stats = self.response_stats
        return (
            "{}: {} requests, avg RT {:.2f} ms, VLRT {:.2f}%, "
            "normal {:.2f}%, drops {}, millibottlenecks {}".format(
                self.config.bundle_key,
                stats.count,
                stats.mean_ms,
                100 * stats.vlrt_fraction,
                100 * stats.normal_fraction,
                self.dropped,
                self.millibottlenecks,
            )
        )


def summarize(result: ExperimentResult) -> ExperimentSummary:
    """Reduce a full result to its picklable summary."""
    injector = result.fault_injector
    fault_count = 0
    if injector is not None:
        fault_count = (len(injector.records) + len(injector.slow_records)
                       + len(injector.net_records))
    return ExperimentSummary(
        config=result.config,
        duration=result.duration,
        response_stats=result.stats(),
        dropped=result.dropped_packets(),
        millibottlenecks=len(result.system.millibottleneck_records()),
        queue_series=result.queue_series,
        dirty_series=result.dirty_series,
        error_responses_count=result.error_responses(),
        abandoned=result.population.requests_abandoned,
        attempts=result.population.attempts_issued,
        hedges=result.hedges_issued(),
        hedge_wins=sum(h.hedge_wins for h in result.system.hedgers),
        fault_count=fault_count,
        sheds_count=result.sheds(),
        vlrt_series=result.vlrt_windows(),
        probe_messages_count=result.probe_messages(),
        sticky_violations_count=result.sticky_violations(),
    )


def _run_one(task: tuple[int, ExperimentConfig, Optional[WorkloadMix],
                         Callable[[ExperimentResult], Any]]
             ) -> tuple[int, Any]:
    """Pool worker: run one config and post-process in the child.

    Module-level so it pickles under every multiprocessing start method
    (spawn included).  Returns ``(index, value)`` so the parent can
    merge results in submission order regardless of completion order.
    """
    index, config, mix, postprocess = task
    result = ExperimentRunner(config, mix=mix).run()
    return index, postprocess(result)


def run_experiments(configs: Iterable[ExperimentConfig],
                    workers: Optional[int] = 1,
                    mix: Optional[WorkloadMix] = None,
                    postprocess: Optional[
                        Callable[[ExperimentResult], Any]] = None,
                    ) -> list[Any]:
    """Run independent configs, optionally across a process pool.

    ``workers=1`` runs serially in this process (no pool, no pickling);
    ``workers=None`` uses one worker per CPU; ``workers=N`` caps the
    pool at N.  ``postprocess`` maps each full result to the value
    returned (default :func:`summarize`); with a pool it runs inside
    the worker, so it must be a picklable (module-level) callable.

    Results come back in the order of ``configs`` — merging is keyed by
    submission index, never completion order — and a given config's
    values are identical whether it ran serially or in a pool.
    """
    configs = list(configs)
    post = summarize if postprocess is None else postprocess
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(
            "workers must be a positive int or None, got {!r}".format(
                workers))
    if workers == 1 or len(configs) <= 1:
        return [post(ExperimentRunner(config, mix=mix).run())
                for config in configs]

    tasks = [(i, config, mix, post) for i, config in enumerate(configs)]
    merged: list[Any] = [None] * len(tasks)
    try:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(
                max_workers=min(workers, len(tasks))) as pool:
            for index, value in pool.map(_run_one, tasks):
                merged[index] = value
    except (ImportError, OSError, PermissionError):
        # No usable multiprocessing primitives (restricted sandboxes,
        # missing /dev/shm): fall back to the serial path.
        return [post(ExperimentRunner(config, mix=mix).run())
                for config in configs]
    return merged


@dataclass(frozen=True)
class Replication:
    """Multi-seed replications of one configuration, keyed by seed."""

    summaries: tuple[ExperimentSummary, ...]

    def __post_init__(self) -> None:
        seeds = [summary.config.seed for summary in self.summaries]
        if len(set(seeds)) != len(seeds):
            raise ConfigurationError("duplicate seeds in replication")

    @property
    def seeds(self) -> tuple[int, ...]:
        return tuple(summary.config.seed for summary in self.summaries)

    def by_seed(self) -> dict[int, ExperimentSummary]:
        return {summary.config.seed: summary for summary in self.summaries}

    def aggregate(self) -> dict[str, float]:
        """Across-seed mean and population std of the headline numbers."""
        import numpy as np

        if not self.summaries:
            raise ConfigurationError("no replications to aggregate")
        rows = {
            "avg_rt_ms": np.array([s.response_stats.mean_ms
                                   for s in self.summaries]),
            "vlrt_pct": np.array([100 * s.response_stats.vlrt_fraction
                                  for s in self.summaries]),
            "normal_pct": np.array([100 * s.response_stats.normal_fraction
                                    for s in self.summaries]),
            "drops": np.array([float(s.dropped) for s in self.summaries]),
        }
        out: dict[str, float] = {"runs": float(len(self.summaries))}
        for name, values in rows.items():
            out[name + "_mean"] = float(values.mean())
            out[name + "_std"] = float(values.std())
        return out


def replicate(config: ExperimentConfig, seeds: Iterable[int],
              workers: Optional[int] = 1,
              mix: Optional[WorkloadMix] = None) -> Replication:
    """Run ``config`` once per seed and collect the replications.

    The paper's Table I numbers come from single runs; replications put
    across-seed error bars on them.  Seeds must be unique — they key
    the merged results.
    """
    seeds = list(seeds)
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError("seeds must be unique")
    configs = [replace(config, seed=seed) for seed in seeds]
    summaries = run_experiments(configs, workers=workers, mix=mix)
    return Replication(summaries=tuple(summaries))
