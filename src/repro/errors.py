"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class StopSimulation(Exception):
    """Internal control-flow signal used to stop :meth:`Environment.run`.

    Not a :class:`ReproError`: user code should never catch it.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class ConfigurationError(ReproError):
    """An experiment, topology, or component was configured inconsistently."""


class WorkloadError(ReproError):
    """The workload generator was asked for something it cannot produce."""


class BalancerError(ReproError):
    """The load balancer could not dispatch a request."""


class NoCandidateError(BalancerError):
    """Every backend worker is in the Error state; nothing can be picked."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot interpret."""
