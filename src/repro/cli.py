"""Command-line interface: ``repro-lb``.

Subcommands::

    repro-lb list                         # available scenarios
    repro-lb run table1/current_load      # run one scenario
    repro-lb run --topology spec.json     # run a declarative topology
    repro-lb topology validate spec.json  # check a topology spec
    repro-lb topology show replicated_db  # render a topology spec
    repro-lb table1 [--workers 4]         # the full Table I comparison
    repro-lb replicate table1/current_load --runs 8 --workers 4
    repro-lb statan src/repro             # simulation lint (see DESIGN.md)
    repro-lb chaos --faults crash,slow --remedies none,full
    repro-lb controlplane --remedy admission+leveling --millibottleneck
    repro-lb trace run/original_total_request --slowest 3
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import table1, table1_with_paper
from repro.cluster.runner import ExperimentRunner, compare_policies
from repro.cluster.scenarios import Scenario
from repro.core.remedies import TABLE1_BUNDLES


def _cmd_list(_args: argparse.Namespace) -> int:
    for key in Scenario.keys():
        print(key)
    return 0


def _load_topology(ref: str):
    import os

    from repro.cluster.spec import BUILTIN_TOPOLOGIES, TopologySpec, get_topology
    from repro.errors import ConfigurationError

    if ref in BUILTIN_TOPOLOGIES:
        return get_topology(ref)
    if os.path.exists(ref):
        return TopologySpec.load(ref)
    raise ConfigurationError(
        "no topology spec file {!r} (and not a builtin: {})".format(
            ref, ", ".join(sorted(BUILTIN_TOPOLOGIES))))


def _cmd_run(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.errors import ConfigurationError

    if args.topology is not None:
        if args.scenario is not None:
            raise ConfigurationError(
                "give either a scenario key or --topology, not both")
        from repro.cluster.runner import ExperimentConfig

        spec = _load_topology(args.topology)
        config = ExperimentConfig(
            profile=spec.scale_profile(), topology=spec,
            duration=args.duration if args.duration is not None else 10.0)
    else:
        if args.scenario is None:
            raise ConfigurationError(
                "give a scenario key (see 'list') or --topology SPEC")
        config = Scenario.named(args.scenario)
        if args.duration is not None:
            config = replace(config, duration=args.duration)
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    result = ExperimentRunner(config).run()
    print(result.summary())
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    for ref in args.specs:
        spec = _load_topology(ref)
        if args.action == "show":
            print(spec.describe())
        else:
            print("OK {} ({} tiers, {} boundaries)".format(
                spec.name, len(spec.tiers), len(spec.boundaries)))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    if args.policies is not None:
        from repro.cluster.config import ScaleProfile
        from repro.cluster.scenarios import PolicyRematch

        extra = _split(args.policies) or []
        suite = PolicyRematch(
            bundle_keys=[b.key for b in TABLE1_BUNDLES] + extra,
            fault_keys=_split(args.faults),
            duration=(args.duration if args.duration is not None
                      else 12.0),
            seed=args.seed,
            profile=(ScaleProfile() if args.full_scale
                     else ScaleProfile.smoke()),
        )
        report = suite.run(workers=args.workers)
        print(report.render())
        return 0
    results = compare_policies(
        [bundle.key for bundle in TABLE1_BUNDLES],
        duration=args.duration if args.duration is not None else 20.0,
        seed=args.seed, workers=args.workers)
    print(table1(results))
    print()
    print(table1_with_paper(results))
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.parallel import replicate

    config = Scenario.named(args.scenario)
    if args.duration is not None:
        config = replace(config, duration=args.duration)
    seeds = range(args.base_seed, args.base_seed + args.runs)
    rep = replicate(config, seeds=seeds, workers=args.workers)
    for summary in rep.summaries:
        print("seed {:>4d}  {}".format(summary.config.seed,
                                       summary.summary()))
    aggregate = rep.aggregate()
    print("across {} seeds: avg RT {:.2f} +/- {:.2f} ms, "
          "VLRT {:.2f} +/- {:.2f} %".format(
              int(aggregate["runs"]),
              aggregate["avg_rt_ms_mean"], aggregate["avg_rt_ms_std"],
              aggregate["vlrt_pct_mean"], aggregate["vlrt_pct_std"]))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.analysis.export import export_result

    config = Scenario.named(args.scenario)
    if args.duration is not None:
        config = replace(config, duration=args.duration)
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    if "fig2" not in args.scenario:
        config = replace(config, sample_dirty_pages=True)
    result = ExperimentRunner(config).run()
    out = export_result(result, args.out)
    print(result.summary())
    print("exported CSV/JSON to {}".format(out))
    return 0


def _split(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.cluster.config import ScaleProfile
    from repro.cluster.scenarios import ChaosSuite

    suite = ChaosSuite(
        fault_keys=_split(args.faults),
        remedy_keys=_split(args.remedies),
        bundle_keys=_split(args.bundles),
        duration=args.duration,
        seed=args.seed,
        profile=ScaleProfile() if args.full_scale else ScaleProfile.smoke(),
        topology=(_load_topology(args.topology)
                  if args.topology else None),
    )
    report = suite.run(workers=args.workers)
    print(report.render())
    return 0


def _cmd_geo(args: argparse.Namespace) -> int:
    from repro.cluster.geo import GeoSuite

    suite = GeoSuite(
        fault_keys=_split(args.faults) if args.faults else None,
        duration=args.duration,
        seed=args.seed,
        clients=args.clients,
    )
    report = suite.run()
    print(report.render())
    return 0


def _cmd_controlplane(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.cluster.config import ScaleProfile
    from repro.cluster.runner import ExperimentConfig
    from repro.cluster.scenarios import fault_specs, time_to_recover
    from repro.controlplane import get_controlplane

    remedy = get_controlplane(args.remedy)
    profile = ScaleProfile() if args.full_scale else ScaleProfile.smoke()
    if args.millibottleneck:
        profile = replace(profile, tomcat_disk_bandwidth=4e6)
    config = ExperimentConfig(
        bundle_key=args.bundle,
        profile=profile,
        duration=args.duration,
        seed=args.seed,
        trace_lb_values=False,
        trace_dispatches=False,
        faults=fault_specs(args.fault, args.duration),
    )
    baseline = ExperimentRunner(config).run()
    remedied = ExperimentRunner(
        replace(config, controlplane=remedy)).run()

    def _line(tag, result):
        stats = result.stats()
        ttr = time_to_recover(result)
        print("{:<9s} vlrt {:6.3f}%  drops {:5d}  sheds {:5d}  "
              "goodput {:7.1f}/s  avail {:6.2f}%  ttr {}".format(
                  tag, 100 * stats.vlrt_fraction,
                  result.dropped_packets(), result.sheds(),
                  result.goodput(), 100 * result.availability(),
                  "-" if ttr is None else
                  ("never" if ttr == float("inf")
                   else "{:.2f}s".format(ttr))))

    print("fault={} remedy={} bundle={} duration={}s seed={}".format(
        args.fault, args.remedy, args.bundle, args.duration, args.seed))
    _line("baseline", baseline)
    _line("remedied", remedied)

    system = remedied.system
    for admission in system.admissions:
        print("\n{}: admitted={} queued={} shed={}".format(
            admission.name, admission.admitted, admission.queued,
            admission.shed))
        sheds = [r for r in admission.records if r.outcome == "shed"]
        if sheds:
            print("  first sheds at: " + ", ".join(
                "t={:.3f}".format(r.at) for r in sheds[:args.events]))
    for leveler in system.levelers:
        print("\n{}: offered={} accepted={} rejected={} evicted={} "
              "drained={} peak={}".format(
                  leveler.name, leveler.offered, leveler.accepted,
                  leveler.rejected, leveler.evicted, leveler.drained,
                  leveler.peak_length))
    for bulkhead in system.bulkheads:
        print("\n{}: read admitted={} shed={}; write admitted={} "
              "shed={}".format(
                  bulkhead.name,
                  bulkhead.admitted["read"], bulkhead.shed["read"],
                  bulkhead.admitted["write"], bulkhead.shed["write"]))
    for autoscaler in system.autoscalers:
        print("\n{}: replicas={} scale_ups={} scale_downs={} "
              "samples={}".format(
                  autoscaler.name, autoscaler.replicas,
                  autoscaler.scale_ups, autoscaler.scale_downs,
                  len(autoscaler.samples)))
        for event in autoscaler.events[:args.events]:
            print("  t={:7.3f} {:<12s} {:<10s} metric={:6.2f} "
                  "replicas={}".format(
                      event.at, event.action, event.replica,
                      event.metric, event.replicas))
    return 0


def _cmd_statan(args: argparse.Namespace) -> int:
    from repro.statan import (
        StatanError,
        Severity,
        check_paths,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )
    from repro.statan.sarif import load_baseline

    try:
        baseline = None
        if args.baseline is not None:
            try:
                baseline = load_baseline(args.baseline)
            except (OSError, ValueError) as exc:
                raise StatanError(
                    "cannot load baseline: {}".format(exc)) from exc
        result = check_paths(
            args.paths,
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None,
            min_severity=Severity.from_label(args.min_severity),
            program_rules=None if args.no_program else "default",
            baseline=baseline,
        )
        if args.write_baseline is not None:
            write_baseline(args.write_baseline, result.findings)
            print("statan: wrote {} finding(s) to {}".format(
                len(result.findings), args.write_baseline),
                file=sys.stderr)
    except StatanError as exc:
        print("statan: error: {}".format(exc), file=sys.stderr)
        return 2
    except Exception as exc:  # internal failure must not masquerade
        print("statan: internal error: {!r}".format(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result.findings))
    else:
        print(render_text(result))
    return 1 if result.findings else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from dataclasses import replace

    from repro.tracing import trace_report, write_chrome_trace

    config = Scenario.named(args.scenario)
    if args.duration is not None:
        config = replace(config, duration=args.duration)
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    config = replace(config, trace_requests=True)
    result = ExperimentRunner(config).run()
    print(result.summary())
    explanation = result.explain_vlrt()
    print()
    print(explanation.render())
    if args.chrome is not None:
        path = write_chrome_trace(result.traces(), args.chrome)
        print("chrome trace written to {}".format(path))
    if args.json:
        print(json.dumps(explanation.to_dict(), indent=2))
    slowest = result.slowest_traces(args.slowest)
    for trace in slowest:
        print()
        print(trace_report(trace))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Reproduce the ICDCS 2017 millibottleneck "
                    "load-balancing study.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenario keys").set_defaults(
        func=_cmd_list)

    run = sub.add_parser("run", help="run one scenario or topology")
    run.add_argument("scenario", nargs="?", default=None,
                     help="scenario key (see 'list')")
    run.add_argument("--topology", default=None, metavar="SPEC",
                     help="run a declarative topology instead: a spec "
                          "JSON path or a builtin name "
                          "(classic, replicated_db, four_tier)")
    run.add_argument("--duration", type=float, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.set_defaults(func=_cmd_run)

    topo = sub.add_parser(
        "topology",
        help="validate or render declarative topology specs",
        description="Load each spec (JSON path or builtin name), run "
                    "its validation, and either confirm it (validate) "
                    "or render its tier/boundary chain (show).")
    topo.add_argument("action", choices=("validate", "show"))
    topo.add_argument("specs", nargs="+", metavar="SPEC",
                      help="spec JSON paths or builtin names")
    topo.set_defaults(func=_cmd_topology)

    t1 = sub.add_parser(
        "table1",
        help="run the Table I comparison (or its modern-policy rematch)",
        description="Without --policies: the paper's six-bundle Table I "
                    "comparison.  With --policies: the rematch report — "
                    "Table-I bundles plus the named modern bundles, "
                    "crossed with a chaos fault axis, with probe-"
                    "overhead and goodput columns.")
    t1.add_argument("--duration", type=float, default=None,
                    help="run length per cell (default: 20s for the "
                         "classic table, 12s for the rematch)")
    t1.add_argument("--seed", type=int, default=42)
    t1.add_argument("--workers", type=int, default=1,
                    help="process-pool size; 1 runs serially (default)")
    t1.add_argument("--policies", default=None, metavar="KEYS",
                    help="comma-separated modern bundles to rematch "
                         "against the Table-I rows (e.g. "
                         "prequal,jsq_d,jiq,weighted_least_conn,sticky)")
    t1.add_argument("--faults", default=None, metavar="KEYS",
                    help="rematch fault axis (default: "
                         "none,slow,packet_loss; only with --policies)")
    t1.add_argument("--full-scale", action="store_true",
                    help="rematch at the paper-scale profile instead of "
                         "the fast smoke profile (only with --policies)")
    t1.set_defaults(func=_cmd_table1)

    rep = sub.add_parser(
        "replicate", help="run one scenario across several seeds")
    rep.add_argument("scenario", help="scenario key (see 'list')")
    rep.add_argument("--runs", type=int, default=5,
                     help="number of seeds (default 5)")
    rep.add_argument("--base-seed", type=int, default=42,
                     help="first seed; runs use base..base+runs-1")
    rep.add_argument("--duration", type=float, default=None)
    rep.add_argument("--workers", type=int, default=1,
                     help="process-pool size; 1 runs serially (default)")
    rep.set_defaults(func=_cmd_replicate)

    export = sub.add_parser(
        "export", help="run a scenario and dump its series as CSV/JSON")
    export.add_argument("scenario", help="scenario key (see 'list')")
    export.add_argument("--out", required=True,
                        help="output directory for the CSV/JSON files")
    export.add_argument("--duration", type=float, default=None)
    export.add_argument("--seed", type=int, default=None)
    export.set_defaults(func=_cmd_export)

    chaos = sub.add_parser(
        "chaos",
        help="run the fault x remedy x policy chaos grid",
        description="Cross the fault zoo with the resilience bundles "
                    "and the Table-I policy bundles; report "
                    "availability, %VLRT, retry amplification and "
                    "goodput per cell.")
    chaos.add_argument("--faults", default="crash,slow,packet_loss",
                       metavar="KEYS",
                       help="comma-separated fault scenarios "
                            "(default: crash,slow,packet_loss)")
    chaos.add_argument("--remedies", default="none,full", metavar="KEYS",
                       help="comma-separated remedy bundles, resilience "
                            "or control-plane (e.g. none,full,"
                            "admission+leveling; default: none,full)")
    chaos.add_argument("--bundles",
                       default="original_total_request,"
                               "current_load_modified",
                       metavar="KEYS",
                       help="comma-separated policy bundles")
    chaos.add_argument("--duration", type=float, default=12.0)
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--workers", type=int, default=1,
                       help="process-pool size; 1 runs serially (default)")
    chaos.add_argument("--full-scale", action="store_true",
                       help="use the paper-scale profile instead of the "
                            "fast smoke profile")
    chaos.add_argument("--topology", default=None, metavar="REF",
                       help="builtin name or spec file to run the cells "
                            "against (required for zone faults; default: "
                            "the classic 3-tier build)")
    chaos.set_defaults(func=_cmd_chaos)

    geo = sub.add_parser(
        "geo",
        help="run the geo headline grid: {hierarchy, flat} x zone faults",
        description="Cross the two-zone geo topologies (zone-local "
                    "balancer hierarchy vs one flat global balancer) "
                    "with zone outage, WAN degradation and cache "
                    "failover; report %VLRT, drops, spillovers, WAN "
                    "retransmits and cache hit ratio per cell.")
    geo.add_argument("--faults", default=None, metavar="KEYS",
                     help="comma-separated geo fault keys (default: all)")
    geo.add_argument("--duration", type=float, default=12.0)
    geo.add_argument("--seed", type=int, default=42)
    geo.add_argument("--clients", type=int, default=160)
    geo.set_defaults(func=_cmd_geo)

    cp = sub.add_parser(
        "controlplane",
        help="run one fault cell with and without a control-plane "
             "remedy and audit the mechanisms",
        description="Run the same fault twice — bare, then with a "
                    "control-plane bundle — and report the headline "
                    "metrics side by side plus each mechanism's "
                    "internals: admission decisions, leveling queue "
                    "counters, bulkhead partitions, autoscaler scale "
                    "events.")
    cp.add_argument("--remedy", default="admission+leveling",
                    metavar="KEY",
                    help="control-plane bundle (default: "
                         "admission+leveling; see also autoscale, "
                         "autoscale_fast, admission, leveling, "
                         "bulkhead)")
    cp.add_argument("--fault", default="packet_loss", metavar="KEY",
                    help="fault scenario (default: packet_loss)")
    cp.add_argument("--bundle", default="original_total_request",
                    metavar="KEY", help="policy bundle")
    cp.add_argument("--duration", type=float, default=12.0)
    cp.add_argument("--seed", type=int, default=42)
    cp.add_argument("--events", type=int, default=10, metavar="N",
                    help="show at most N per-mechanism events "
                         "(default 10)")
    cp.add_argument("--full-scale", action="store_true",
                    help="use the paper-scale profile instead of the "
                         "fast smoke profile")
    cp.add_argument("--millibottleneck", action="store_true",
                    help="tighten the app tier's disk bandwidth so "
                         "flush stalls produce VLRTs (the headline "
                         "demo cell)")
    cp.set_defaults(func=_cmd_controlplane)

    statan = sub.add_parser(
        "statan",
        help="simulation lint: determinism, process discipline, "
             "resource safety",
        description="AST-based static analysis for simulation code. "
                    "Exit codes: 0 clean, 1 findings, 2 internal error. "
                    "Suppress one line with '# statan: ignore[rule-id]'.")
    statan.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    statan.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    statan.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids or finding codes "
                             "to run exclusively")
    statan.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids or finding codes "
                             "to skip")
    statan.add_argument("--min-severity", default="info",
                        choices=("info", "warning", "error"),
                        help="report findings at or above this severity")
    statan.add_argument("--baseline", default=None, metavar="PATH",
                        help="suppress findings whose fingerprints are "
                             "recorded in this baseline file; only new "
                             "findings fail the run")
    statan.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write the run's findings to a baseline "
                             "file (after --baseline filtering, if any)")
    statan.add_argument("--no-program", action="store_true",
                        help="skip the whole-program passes (seed "
                             "provenance, yield atomicity, resource "
                             "escape); per-file rules only")
    statan.set_defaults(func=_cmd_statan)

    trace = sub.add_parser(
        "trace",
        help="run a scenario with request tracing and explain VLRTs",
        description="Record one span tree per request, decompose the "
                    "critical path of each, group VLRT requests by "
                    "dominant cause, and print reports for the "
                    "slowest requests.")
    trace.add_argument("scenario", help="scenario key (see 'list')")
    trace.add_argument("--duration", type=float, default=None)
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--slowest", type=int, default=5, metavar="N",
                       help="print span trees of the N slowest "
                            "requests (default 5)")
    trace.add_argument("--chrome", default=None, metavar="PATH",
                       help="also write a Chrome trace-event JSON file "
                            "(open in chrome://tracing or Perfetto)")
    trace.add_argument("--json", action="store_true",
                       help="also dump the VLRT explanation as JSON")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ConfigurationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print("repro-lb: error: {}".format(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
