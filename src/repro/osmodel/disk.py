"""Bandwidth-limited write-back storage device.

One write stream at a time (a single 7200 RPM SATA spindle, as in the
paper's Table II); a write of *n* bytes occupies the device for
``n / write_bandwidth`` seconds.  The device tracks cumulative bytes
written for observability.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Sequential write-back bandwidth of the simulated spindle, bytes/sec.
#: ~100 MB/s matches a 7200 RPM SATA disk's sequential throughput.
DEFAULT_WRITE_BANDWIDTH = 100e6


class Disk:
    """A single-spindle disk with a serialised write channel."""

    def __init__(self, env: "Environment",
                 write_bandwidth: float = DEFAULT_WRITE_BANDWIDTH,
                 name: str = "disk") -> None:
        if write_bandwidth <= 0:
            raise ValueError("write_bandwidth must be positive")
        self.env = env
        self.name = name
        self.write_bandwidth = write_bandwidth
        self._channel = Resource(env, capacity=1)
        #: Cumulative bytes written back.
        self.bytes_written = 0.0
        #: Number of write bursts completed.
        self.writes_completed = 0

    def write_duration(self, nbytes: float) -> float:
        """Seconds the device needs to write ``nbytes``."""
        if nbytes < 0:
            raise ValueError("cannot write a negative byte count")
        return nbytes / self.write_bandwidth

    def write(self, nbytes: float):
        """Process generator: occupy the device while writing ``nbytes``."""
        with self._channel.request() as grant:
            yield grant
            yield self.env.timeout(self.write_duration(nbytes))
            self.bytes_written += nbytes
            self.writes_completed += 1

    @property
    def busy(self) -> bool:
        """``True`` while a write burst is in progress."""
        return self._channel.count > 0

    def __repr__(self) -> str:
        return "<Disk {} {:.0f} MB/s written={:.1f} MB>".format(
            self.name, self.write_bandwidth / 1e6, self.bytes_written / 1e6)
