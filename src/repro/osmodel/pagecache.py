"""Dirty-page accounting for buffered file writes.

Application writes (Tomcat's access / servlet / localhost logs in the
paper) land in the page cache instantly and *dirty* pages accumulate
until the flush daemon writes them back.  The abrupt drops of the dirty
set visible in Fig. 2(e) are produced by :meth:`take_all` during a
flush.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class PageCache:
    """Tracks the dirty byte set of one host."""

    def __init__(self, env: "Environment", name: str = "pagecache") -> None:
        self.env = env
        self.name = name
        self._dirty_bytes = 0.0
        #: Cumulative bytes ever written (monotone).
        self.total_written = 0.0
        #: Cumulative bytes ever flushed (monotone).
        self.total_flushed = 0.0

    @property
    def dirty_bytes(self) -> float:
        """Bytes currently dirty (what Fig. 2(e) plots)."""
        return self._dirty_bytes

    def write(self, nbytes: float) -> None:
        """Buffered write: returns immediately, pages become dirty.

        This is the asynchrony that makes millibottlenecks surprising —
        the write itself never blocks the application, yet the deferred
        flush will.
        """
        if nbytes < 0:
            raise ValueError("cannot write a negative byte count")
        self._dirty_bytes += nbytes
        self.total_written += nbytes

    def take_all(self) -> float:
        """Atomically claim every dirty byte for write-back."""
        amount = self._dirty_bytes
        self._dirty_bytes = 0.0
        self.total_flushed += amount
        return amount

    def take(self, nbytes: float) -> float:
        """Claim up to ``nbytes`` dirty bytes for write-back."""
        if nbytes < 0:
            raise ValueError("cannot take a negative byte count")
        amount = min(nbytes, self._dirty_bytes)
        self._dirty_bytes -= amount
        self.total_flushed += amount
        return amount

    def __repr__(self) -> str:
        return "<PageCache {} dirty={:.1f} MB>".format(
            self.name, self._dirty_bytes / 1e6)
