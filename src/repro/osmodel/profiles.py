"""Millibottleneck profiles — when and how hard dirty-page flushing bites.

The paper manipulates exactly two knobs to turn millibottlenecks on and
off (§II-B): the size of the memory allowed to hold dirty pages and the
flush interval ("we enlarged the memory that holds the dirty pages to
4.8 GB and lengthened the flushing interval to 600 seconds").  A
:class:`MillibottleneckProfile` captures those knobs per host.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MillibottleneckProfile:
    """Flush-daemon configuration for one host.

    Parameters
    ----------
    flush_interval:
        Seconds between pdflush wake-ups.
    dirty_threshold_bytes:
        Minimum dirty set that triggers a write-back burst at wake-up;
        models the "memory that holds the dirty pages".
    phase:
        Offset of the first wake-up, used to stagger hosts so that (as
        in the paper's zoom-ins) one Tomcat at a time has its
        millibottleneck.
    enabled:
        When ``False`` the flush daemon never runs — the idealised
        millibottleneck-free environment of Fig. 1.
    """

    flush_interval: float = 4.0
    dirty_threshold_bytes: float = 1e6
    phase: float = 0.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.flush_interval <= 0:
            raise ConfigurationError("flush_interval must be positive")
        if self.dirty_threshold_bytes < 0:
            raise ConfigurationError("dirty_threshold_bytes must be >= 0")
        if self.phase < 0:
            raise ConfigurationError("phase must be >= 0")

    @classmethod
    def disabled(cls) -> "MillibottleneckProfile":
        """The paper's remedy configuration: no flush within a run.

        Mirrors §III-C's 4.8 GB dirty memory and 600 s flush interval,
        which guarantee zero write-back bursts during the experiment.
        """
        return cls(flush_interval=600.0, dirty_threshold_bytes=4.8e9,
                   enabled=False)

    def with_phase(self, phase: float) -> "MillibottleneckProfile":
        """Copy of this profile with a different first-wake-up offset."""
        return replace(self, phase=phase)
