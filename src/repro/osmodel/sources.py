"""Alternative millibottleneck sources beyond dirty-page flushing.

The paper's §III-A lists several known causes of millibottlenecks:
dirty-page flushing (modelled mechanistically by
:mod:`repro.osmodel.pdflush`), Java garbage collection, CPU DVFS
control latency, VM consolidation, and bursty workloads.  Its
conclusion argues the remedies generalise: "Other load balancers …
can take advantage of our remedies to shorten the latency tail caused
by scheduling instability when facing millibottlenecks caused by
other resource shortage."

This module provides those other sources as stall injectors, so the
generalisation claim can be tested (see the ablation benchmarks).
Each injector records ground truth into ``host.millibottlenecks`` just
like the flush daemon, keeping every detector and analysis usable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.osmodel.pdflush import MillibottleneckRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.osmodel.host import Host


class TransientStallInjector:
    """Injects full-CPU stalls with configurable timing.

    Parameters
    ----------
    host:
        Host to stall.
    interval:
        Zero-argument callable returning seconds until the next stall.
    duration:
        Zero-argument callable returning the stall length in seconds.
    label:
        Recorded on the ground-truth records (e.g. ``"gc"``).
    """

    def __init__(self, host: "Host",
                 interval: Callable[[], float],
                 duration: Callable[[], float],
                 label: str = "injected") -> None:
        self.host = host
        self.interval = interval
        self.duration = duration
        self.label = label
        self.stalls_injected = 0
        self._process = host.env.process(self._run())

    def _run(self):
        env = self.host.env
        while True:
            yield env.timeout(max(1e-6, float(self.interval())))
            length = max(1e-6, float(self.duration()))
            started_at = env.now
            yield from self.host.cpu.stall(length)
            self.stalls_injected += 1
            self.host.millibottlenecks.append(MillibottleneckRecord(
                host=self.host.name,
                started_at=started_at,
                ended_at=env.now,
                bytes_flushed=0.0,
            ))


class GarbageCollectionSource(TransientStallInjector):
    """Stop-the-world JVM garbage collection pauses.

    Pause frequency follows allocation pressure (one major collection
    per ``period`` seconds on average, exponentially distributed);
    pause length is log-normal around ``mean_pause`` — the classic
    shape of CMS/parallel-collector major pauses on mid-2010s heaps.
    """

    def __init__(self, host: "Host", rng: np.random.Generator,
                 period: float = 5.0, mean_pause: float = 0.15,
                 pause_sigma: float = 0.35) -> None:
        if period <= 0 or mean_pause <= 0:
            raise ConfigurationError("period and mean_pause must be positive")
        mu = float(np.log(mean_pause) - pause_sigma ** 2 / 2)
        super().__init__(
            host,
            interval=lambda: float(rng.exponential(period)),
            duration=lambda: float(rng.lognormal(mu, pause_sigma)),
            label="gc",
        )


class DvfsSource(TransientStallInjector):
    """CPU frequency-scaling transition stalls.

    DVFS governors of the paper's era (§III-A cites the TRIOS'13 DVFS
    study) could freeze a core cluster for tens of milliseconds while
    ramping; transitions happen often under oscillating load.  Modelled
    as frequent, short, fixed-length stalls.
    """

    def __init__(self, host: "Host", rng: np.random.Generator,
                 period: float = 2.0, transition: float = 0.05) -> None:
        if period <= 0 or transition <= 0:
            raise ConfigurationError("period and transition must be positive")
        super().__init__(
            host,
            interval=lambda: float(rng.exponential(period)),
            duration=lambda: transition,
            label="dvfs",
        )
