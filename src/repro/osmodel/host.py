"""A simulated machine: cores, page cache, disk, and the flush daemon.

Each tier server in :mod:`repro.tiers` owns one :class:`Host`.  The
host is where the substrate layers meet: request processing burns CPU
via :meth:`execute`, log writes dirty the page cache via
:meth:`write_file`, and the flush daemon periodically turns those dirty
pages into a millibottleneck.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.metrics.timeseries import TimeSeries
from repro.osmodel.cpu import Cpu
from repro.osmodel.disk import DEFAULT_WRITE_BANDWIDTH, Disk
from repro.osmodel.pagecache import PageCache
from repro.osmodel.pdflush import FlushDaemon, MillibottleneckRecord
from repro.osmodel.profiles import MillibottleneckProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Core count of the paper's Emulab d710 nodes (Xeon E5530 quad-core).
DEFAULT_CORES = 4


class Host:
    """One machine of the testbed.

    Parameters
    ----------
    env:
        Owning simulation environment.
    name:
        Host name used in metrics and reports (e.g. ``"tomcat1"``).
    cores:
        CPU core count.
    disk_bandwidth:
        Write-back bandwidth in bytes/second.
    flush_profile:
        Millibottleneck behaviour; ``None`` disables the flush daemon
        entirely (equivalent to ``MillibottleneckProfile.disabled()``).
    """

    def __init__(self, env: "Environment", name: str,
                 cores: int = DEFAULT_CORES,
                 disk_bandwidth: float = DEFAULT_WRITE_BANDWIDTH,
                 flush_profile: Optional[MillibottleneckProfile] = None) -> None:
        self.env = env
        self.name = name
        self.cpu = Cpu(env, cores, name + ".cpu")
        self.disk = Disk(env, disk_bandwidth, name + ".disk")
        self.pagecache = PageCache(env, name + ".pagecache")
        #: Ground-truth stall records appended by the flush daemon.
        self.millibottlenecks: list[MillibottleneckRecord] = []
        self.flush_profile = flush_profile or MillibottleneckProfile.disabled()
        self.flush_daemon = FlushDaemon(self, self.flush_profile)
        #: Optional dirty-byte timeline, filled by observers (Fig. 2(e)).
        self.dirty_series = TimeSeries(name + ".dirty")
        #: Service-rate degradation multiplier (fail-slow fault
        #: injection): every CPU demand is stretched by this factor.
        #: ``1.0`` is bit-exact identity, so the hook is free when off.
        self.slowdown = 1.0

    def execute(self, cpu_seconds: float):
        """Process generator: run foreground work for ``cpu_seconds``."""
        return self.cpu.execute(cpu_seconds * self.slowdown)

    def write_file(self, nbytes: float) -> None:
        """Buffered file write (returns immediately; dirties pages)."""
        self.pagecache.write(nbytes)

    def record_dirty_sample(self) -> None:
        """Append the current dirty-set size to :attr:`dirty_series`."""
        self.dirty_series.append(self.env.now, self.pagecache.dirty_bytes)

    def stalled_during(self, start: float, end: float) -> bool:
        """Whether a millibottleneck overlapped ``[start, end)``."""
        return any(record.started_at < end and record.ended_at > start
                   for record in self.millibottlenecks)

    def __repr__(self) -> str:
        return "<Host {} cores={} millibottlenecks={}>".format(
            self.name, self.cpu.cores, len(self.millibottlenecks))
