"""The flush daemon (pdflush) — root cause of the paper's millibottlenecks.

Every ``flush_interval`` seconds the daemon checks the host's dirty
set; if it exceeds the threshold, it claims the disk's write channel
*and every CPU core* (iowait) for the duration of the write-back burst.
That burst — tens to hundreds of milliseconds — is the millibottleneck:
the host is technically "up" and its TCP stack still accepts
connections, but no request makes progress until the flush completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.osmodel.profiles import MillibottleneckProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.osmodel.host import Host


@dataclass(frozen=True)
class MillibottleneckRecord:
    """Ground truth about one flush-induced stall (for validating detectors)."""

    host: str
    started_at: float
    ended_at: float
    bytes_flushed: float

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at


class FlushDaemon:
    """Periodic write-back daemon attached to one :class:`Host`."""

    def __init__(self, host: "Host", profile: MillibottleneckProfile) -> None:
        self.host = host
        self.profile = profile
        self.flushes = 0
        self._process = None
        if profile.enabled:
            self._process = host.env.process(self._run())

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def _run(self):
        env = self.host.env
        if self.profile.phase > 0:
            yield env.timeout(self.profile.phase)
        while True:
            yield env.timeout(self.profile.flush_interval)
            if (self.host.pagecache.dirty_bytes
                    >= self.profile.dirty_threshold_bytes):
                yield from self._flush()

    def _flush(self):
        """One write-back burst: stall all cores while the disk writes."""
        env = self.host.env
        amount = self.host.pagecache.take_all()
        if amount <= 0:
            return
        duration = self.host.disk.write_duration(amount)
        started_at = env.now
        # The disk writes while the cores sit in iowait; both last for
        # the write-back duration.
        write_process = env.process(self.host.disk.write(amount))
        yield from self.host.cpu.stall(duration)
        yield write_process
        self.flushes += 1
        self.host.millibottlenecks.append(MillibottleneckRecord(
            host=self.host.name,
            started_at=started_at,
            ended_at=env.now,
            bytes_flushed=amount,
        ))
