"""CPU model with user-time and iowait accounting.

Foreground work runs through :meth:`Cpu.execute`.  The flush daemon
uses :meth:`Cpu.stall` to occupy **every** core in iowait for the
duration of a write-back burst — the paper's central (and "unexpected")
observation is that flushing dirty pages, though nominally
asynchronous, saturates the CPU with iowait and freezes foreground
request processing (§III-B, Figs. 2(c)/2(d)).

Utilisation is integrated exactly with :class:`~repro.metrics.windows.
BusyTracker`, so fine-grained (50 ms) utilisation plots are free of
sampling noise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.windows import BusyTracker
from repro.metrics.timeseries import TimeSeries
from repro.sim.resources import PriorityResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Queue priority for flush-induced stalls (wins over foreground work).
STALL_PRIORITY = 0
#: Queue priority for ordinary request processing.
FOREGROUND_PRIORITY = 10


class Cpu:
    """``cores`` identical cores shared by foreground work and stalls."""

    def __init__(self, env: "Environment", cores: int = 4,
                 name: str = "cpu") -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.env = env
        self.name = name
        self.cores = cores
        self._slots = PriorityResource(env, capacity=cores)
        self.user = BusyTracker(cores, name + ".user")
        self.iowait = BusyTracker(cores, name + ".iowait")

    def execute(self, cpu_seconds: float):
        """Process generator: burn ``cpu_seconds`` of one core.

        Queues behind other foreground work and behind any in-progress
        stall; during a millibottleneck this is exactly where requests
        pile up.
        """
        if cpu_seconds < 0:
            raise ValueError("negative CPU demand")
        with self._slots.request(priority=FOREGROUND_PRIORITY) as grant:
            yield grant
            self.user.acquire(self.env.now)
            try:
                yield self.env.timeout(cpu_seconds)
            finally:
                self.user.release(self.env.now)

    def stall(self, duration: float):
        """Process generator: hold *all* cores in iowait for ``duration``.

        Cores are claimed at :data:`STALL_PRIORITY`, so the stall starts
        as soon as currently-running slices finish and pre-empts every
        queued foreground task.
        """
        if duration < 0:
            raise ValueError("negative stall duration")
        grants = [self._slots.request(priority=STALL_PRIORITY)
                  for _ in range(self.cores)]
        try:
            yield self.env.all_of(grants)
            self.iowait.acquire(self.env.now, self.cores)
            try:
                yield self.env.timeout(duration)
            finally:
                self.iowait.release(self.env.now, self.cores)
        finally:
            for grant in grants:
                grant.cancel_or_release()

    # -- observability ---------------------------------------------------
    @property
    def busy_cores(self) -> int:
        """Cores currently granted (user work or stall)."""
        return self._slots.count

    @property
    def run_queue_length(self) -> int:
        """Tasks waiting for a core."""
        return self._slots.queue_length

    def utilization(self, start: float, end: float) -> float:
        """Total utilisation (user + iowait), the paper's "CPU usage"."""
        return (self.user.utilization(start, end)
                + self.iowait.utilization(start, end))

    def utilization_series(self, window: float, until: float) -> TimeSeries:
        """Fine-grained total utilisation (Figs. 2(c)/6(b)/7(b))."""
        user = self.user.utilization_series(window, until)
        iowait = self.iowait.utilization_series(window, until)
        out = TimeSeries(self.name + ".util")
        for (time, u), (_, w) in zip(user, iowait):
            out.append(time, u + w)
        return out

    def iowait_series(self, window: float, until: float) -> TimeSeries:
        """Fine-grained iowait utilisation (Fig. 2(d))."""
        return self.iowait.utilization_series(window, until)

    def __repr__(self) -> str:
        return "<Cpu {} cores={} busy={}>".format(
            self.name, self.cores, self.busy_cores)
