"""OS-level substrate: hosts, CPUs, disks, page cache, flush daemon.

This is where millibottlenecks come from.  Buffered log writes dirty
the page cache; the flush daemon periodically writes them back, and
during the write-back burst every core sits in iowait — a transient,
sub-second, full saturation of the host that the paper names a
*millibottleneck*.
"""

from repro.osmodel.cpu import FOREGROUND_PRIORITY, STALL_PRIORITY, Cpu
from repro.osmodel.disk import DEFAULT_WRITE_BANDWIDTH, Disk
from repro.osmodel.host import DEFAULT_CORES, Host
from repro.osmodel.pagecache import PageCache
from repro.osmodel.pdflush import FlushDaemon, MillibottleneckRecord
from repro.osmodel.profiles import MillibottleneckProfile
from repro.osmodel.sources import (
    DvfsSource,
    GarbageCollectionSource,
    TransientStallInjector,
)

__all__ = [
    "Host",
    "Cpu",
    "Disk",
    "PageCache",
    "FlushDaemon",
    "MillibottleneckRecord",
    "MillibottleneckProfile",
    "TransientStallInjector",
    "GarbageCollectionSource",
    "DvfsSource",
    "DEFAULT_CORES",
    "DEFAULT_WRITE_BANDWIDTH",
    "STALL_PRIORITY",
    "FOREGROUND_PRIORITY",
]
