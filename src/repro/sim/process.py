"""Generator-based simulation processes.

A *process* wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` instances; when a yielded event
triggers, the process resumes with the event's value (or, for failed
events, the event's exception is thrown into the generator).

A process is itself an event: it triggers when its generator returns,
with the generator's return value.  This lets processes wait for each
other simply by yielding them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import URGENT, Event, Initialize, Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Drives a generator, resuming it each time a yielded event fires."""

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                "Process requires a generator, got {!r}".format(generator))
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (``None`` while
        #: the process is being resumed or after it finished).
        self._target: Optional[Event] = None
        Initialize(env, self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", repr(self._generator))
        return "<Process {} {}>".format(
            name, "done" if self.triggered else "active")

    @property
    def target(self) -> Optional[Event]:
        """The event the process is waiting for, if any."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously via an urgent event, so
        the caller continues first.  Interrupting a finished process is an
        error; interrupting yourself is too (a process cannot pre-empt
        itself).
        """
        if self.triggered:
            raise SimulationError(
                "cannot interrupt finished process {!r}".format(self))
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._deliver_interrupt)
        self.env.schedule(interrupt_event, priority=URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        """Deliver an interrupt unless the process finished in the meantime.

        Interrupts are delivered asynchronously, so the target process may
        legitimately terminate between :meth:`interrupt` and delivery; such
        late interrupts are dropped, matching real signal semantics.
        """
        if not self.triggered:
            self._resume(event)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        self.env._active_process = self

        while True:
            # Detach from the previous target: if we were interrupted
            # while waiting, the old target may fire later and must not
            # resume us again.
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None

            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed; re-raise inside the generator.
                    event.defuse()
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._outcome_ok(exc.value)
                break
            except BaseException as exc:
                self._outcome_fail(exc)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    "process yielded a non-event: {!r}".format(next_event))
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._outcome_ok(stop.value)
                except BaseException as err:
                    self._outcome_fail(err)
                break

            if next_event.callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break

            # Already processed: feed its outcome straight back in.
            event = next_event

        self.env._active_process = None

    def _outcome_ok(self, value: Any) -> None:
        self._ok = True
        self._value = value
        self.env.schedule(self)

    def _outcome_fail(self, exc: BaseException) -> None:
        self._ok = False
        self._value = exc
        self.env.schedule(self)
