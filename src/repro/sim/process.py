"""Generator-based simulation processes.

A *process* wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` instances; when a yielded event
triggers, the process resumes with the event's value (or, for failed
events, the event's exception is thrown into the generator).

A process is itself an event: it triggers when its generator returns,
with the generator's return value.  This lets processes wait for each
other simply by yielding them.

``_resume`` is the single hottest function of the kernel — it runs once
per event per waiting process — so it binds the generator's ``send`` /
``throw`` and its own resume callback once at construction instead of
rebuilding the bound methods on every event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event, Initialize, Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Drives a generator, resuming it each time a yielded event fires."""

    __slots__ = ("_generator", "_target", "_send", "_throw", "_resume_cb")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        try:
            self._send: Callable[[Any], Event] = generator.send
            self._throw: Callable[[BaseException], Event] = generator.throw
        except AttributeError:
            raise TypeError(
                "Process requires a generator, got {!r}".format(
                    generator)) from None
        # Event.__init__ inlined — one process is spawned per client
        # request, so construction is on the experiment hot path.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        #: The event this process is currently waiting on (``None`` while
        #: the process is being resumed or after it finished).
        self._target: Optional[Event] = None
        self._resume_cb: Callable[[Event], None] = self._resume
        # Initialize(env, self) with the constructor chain inlined —
        # experiments spawn one process per client request.
        init = Initialize.__new__(Initialize)
        init.env = env
        init.callbacks = [self._resume_cb]
        init._value = None
        init._ok = True
        init._defused = False
        env._trigger_urgent_now(init)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", repr(self._generator))
        return "<Process {} {}>".format(
            name, "done" if self.triggered else "active")

    @property
    def target(self) -> Optional[Event]:
        """The event the process is waiting for, if any."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously via an urgent event, so
        the caller continues first.  Interrupting a finished process is an
        error; interrupting yourself is too (a process cannot pre-empt
        itself).
        """
        if self.triggered:
            raise SimulationError(
                "cannot interrupt finished process {!r}".format(self))
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._deliver_interrupt)
        self.env._trigger_urgent_now(interrupt_event)

    def _deliver_interrupt(self, event: Event) -> None:
        """Deliver an interrupt unless the process finished in the meantime.

        Interrupts are delivered asynchronously, so the target process may
        legitimately terminate between :meth:`interrupt` and delivery; such
        late interrupts are dropped, matching real signal semantics.
        """
        if not self.triggered:
            self._resume(event)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        send = self._send
        resume_cb = self._resume_cb

        while True:
            # Detach from the previous target: if we were interrupted
            # while waiting, the old target may fire later and must not
            # resume us again.  The dominant resume is by the target
            # itself (already processed, callbacks gone), so that case
            # skips straight to clearing the reference.
            target = self._target
            if target is not None:
                if target is not event:
                    callbacks = target.callbacks
                    if callbacks is not None:
                        try:
                            callbacks.remove(resume_cb)
                        except ValueError:
                            pass
                self._target = None

            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The event failed; re-raise inside the generator.
                    event._defused = True
                    next_event = self._throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env._trigger_now(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._trigger_now(self)
                break

            # Duck-typed instead of isinstance(next_event, Event): only
            # events carry ``callbacks``, and the per-yield isinstance
            # check is measurable on this, the kernel's hottest loop.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                exc = SimulationError(
                    "process yielded a non-event: {!r}".format(next_event))
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self._outcome_ok(stop.value)
                except BaseException as err:
                    self._outcome_fail(err)
                break
            if callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                self._target = next_event
                callbacks.append(resume_cb)
                break

            # Already processed: feed its outcome straight back in.
            event = next_event

        env._active_process = None

    def _outcome_ok(self, value: Any) -> None:
        self._ok = True
        self._value = value
        self.env._trigger_now(self)

    def _outcome_fail(self, exc: BaseException) -> None:
        self._ok = False
        self._value = exc
        self.env._trigger_now(self)
