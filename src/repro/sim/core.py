"""The discrete-event simulation environment.

:class:`Environment` owns the simulation clock and the pending-event
schedule.  Time is a ``float`` in **seconds**; the models in this
package operate at sub-millisecond resolution, which is the whole point
of studying millibottlenecks.

Typical usage::

    env = Environment()

    def hello(env):
        yield env.timeout(1.0)
        return "done"

    proc = env.process(hello(env))
    env.run(until=10.0)
    assert proc.value == "done"

Performance notes
-----------------
The event loop is the hot path of every experiment, so :meth:`run`
inlines the dispatch loop instead of calling :meth:`step` per event.
The schedule is a :class:`~repro.sim.calendar.CalendarQueue` — O(1)
insert and pop for the clustered event-time distributions a DES
produces, against O(log n) heap sifts — and :meth:`run` inlines the
queue's pop fast path (an index bump on the current bucket) so the
per-event cost is a handful of attribute operations plus the callback
calls.  Entries are ``(time, key, event)`` 3-tuples where ``key``
packs ``(priority, sequence)`` into one integer, so tie-breaking costs
a single int comparison, the event itself is never compared, and pop
order is byte-identical to the binary-heap kernel this replaced (the
golden-trace tests pin that contract).

The second lever is allocation churn: :class:`Timeout` and plain
:class:`Event` objects are recycled through per-environment free
lists.  After an event's callbacks have run, the dispatch loop
recycles it *only* when ``sys.getrefcount`` proves the loop holds the
sole remaining reference — an event still referenced by a process,
condition, or user variable is simply left to the garbage collector.
See ``DESIGN.md §12`` for the full lifecycle.

:attr:`Environment.trace`, when set to a callable, is invoked as
``trace(time, event)`` for every event popped off the schedule.  It
costs nothing when unset: :meth:`run` selects a loop variant without
the hook at entry.  The golden-trace determinism tests are built on it.
"""

from __future__ import annotations

from bisect import insort
from sys import getrefcount
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError, StopSimulation
from repro.sim.calendar import CalendarQueue
from repro.sim.events import (
    NORMAL,
    POOL_MAX,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
    _PENDING,
)
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Environment", "NORMAL", "URGENT"]

_INF = float("inf")

#: Bits reserved for the event sequence number inside a schedule key.
#: A simulation would need ~100 years of wall-clock at current kernel
#: throughput to overflow 2**53 events, and Python ints widen anyway —
#: ordering stays correct either way.
_KEY_SHIFT = 53
_NORMAL_KEY = NORMAL << _KEY_SHIFT


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Clock value at the start of the simulation (seconds).
    """

    __slots__ = ("_now", "_sched", "_eid", "_active_process",
                 "_timeout_pool", "_event_pool", "trace", "tracer")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._sched = CalendarQueue(self._now)
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Free lists for recycled events (see module docstring).
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        #: Optional probe called as ``trace(time, event)`` for every
        #: event processed.  ``None`` (the default) is zero-cost.
        self.trace: Optional[Callable[[float, Event], None]] = None
        #: Optional per-request span tracer (see :mod:`repro.tracing`).
        #: The kernel never reads it — model components check it with a
        #: single ``is not None`` guard, so ``None`` (the default) is
        #: zero-cost and the tracer itself schedules no events.
        self.tracer: Optional[Any] = None

    # -- introspection ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._sched.peek_time()

    def __len__(self) -> int:
        return len(self._sched)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0, _inf=_INF) -> None:
        """Put a triggered event on the schedule ``delay`` seconds out.

        ``delay`` must be finite and non-negative: a ``NaN`` or ``inf``
        delay would silently corrupt the schedule's ordering invariant
        (``NaN`` compares false against everything, and the calendar's
        slot arithmetic turns ``inf`` into nonsense indices) and is
        rejected with :class:`SimulationError`.
        """
        if not 0.0 <= delay < _inf:
            raise SimulationError(
                "delay must be finite and non-negative, got {!r}".format(
                    delay))
        self._eid = eid = self._eid + 1
        self._sched.push(
            (self._now + delay, (priority << _KEY_SHIFT) | eid, event))

    def _trigger_now(self, event: Event, _key=_NORMAL_KEY,
                     _insort=insort) -> None:
        """Internal: schedule an already-triggered event at the current
        time.

        Fast path used by the resource/queue layers after they set the
        event's ``_value`` directly — equivalent to ``schedule(event)``
        without the delay validation (there is no delay) and without an
        extra call frame from ``succeed``.  The calendar insert
        collapses to one binary insertion: an entry at the current
        clock can never map past the current slot (the slot mapping is
        monotone and the clock equals the last popped entry's time), so
        it always belongs in the current slot's undrained suffix —
        every other pending entry is strictly later or, at the same
        time, key-ordered by the insort.  Sequence numbers are
        monotone, so the entry usually sorts after the whole suffix:
        one tuple comparison against the tail replaces the bisection
        (and its O(log n) equal-time tuple compares) in that case —
        ``insort`` right-biases ties, so the append lands on the
        identical position.
        """
        self._eid = eid = self._eid + 1
        sched = self._sched
        sched._count += 1
        ready = sched._ready
        entry = (self._now, _key | eid, event)
        if len(ready) == sched._ready_idx or entry >= ready[-1]:
            ready.append(entry)
        else:
            _insort(ready, entry, sched._ready_idx)

    def _trigger_urgent_now(self, event: Event, _insort=insort) -> None:
        """Internal: :meth:`_trigger_now` at ``URGENT`` priority.

        ``URGENT << _KEY_SHIFT`` is zero, so the packed key is the bare
        sequence number — byte-identical to what ``schedule(event,
        URGENT)`` would produce.  Used for process initialisation and
        interrupt delivery.
        """
        self._eid = eid = self._eid + 1
        sched = self._sched
        sched._count += 1
        ready = sched._ready
        entry = (self._now, eid, event)
        if len(ready) == sched._ready_idx or entry >= ready[-1]:
            ready.append(entry)
        else:
            _insort(ready, entry, sched._ready_idx)

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event (drawn from the free list)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = _PENDING
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None, _new=Timeout.__new__,
                _cls=Timeout, _inf=_INF, _key=_NORMAL_KEY,
                _insort=insort) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now.

        This is the kernel's dominant allocation, so it draws from the
        :class:`Timeout` free list when possible (recycled instances
        arrive pre-reset) and otherwise builds the instance directly —
        already triggered, skipping the ``Timeout.__init__``/
        ``Event.__init__``/``schedule`` call chain.  The calendar
        insert is inlined for the same reason.
        """
        if not 0.0 <= delay < _inf:
            raise ValueError("invalid delay: {!r}".format(delay))
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            event._value = value
            event._delay = delay
        else:
            event = _new(_cls)
            event.env = self
            event.callbacks = []
            event._value = value
            event._ok = True
            event._defused = False
            event._delay = delay
        self._eid = eid = self._eid + 1
        t = self._now + delay
        sched = self._sched
        entry = (t, _key | eid, event)
        sched._count += 1
        if t >= sched._horizon:
            sched.push_overflow(entry)
            return event
        idx = int((t - sched._base) * sched._inv_width)
        if idx >= sched._nbuckets:
            idx = sched._nbuckets - 1
        if idx > sched._cur_slot:
            sched._buckets[idx].append(entry)
        else:
            ready = sched._ready
            if len(ready) == sched._ready_idx or entry >= ready[-1]:
                ready.append(entry)
            else:
                _insort(ready, entry, sched._ready_idx)
        # Growth check amortised to every 256th event: the sequence
        # counter is already in hand, and resize points remain a pure
        # function of the event sequence (determinism holds — resizing
        # never changes pop order anyway).
        if not eid & 255 and sched._count > sched._grow_at:
            sched._resize(sched._nbuckets * 2)
        return event

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that triggers once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that triggers once any event in ``events`` has."""
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        :meth:`run` does not call this — it inlines the same logic —
        but it remains the single-step API for tests and debuggers.
        Events dispatched through :meth:`step` are never recycled, so
        debugger sessions can hold on to them freely.

        Raises
        ------
        SimulationError
            If the schedule is empty.
        """
        entry = self._sched.pop()
        if entry is None:
            raise SimulationError("no scheduled events")
        when, _, event = entry

        self._now = when
        if self.trace is not None:
            self.trace(when, event)

        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure that nobody handled: surface it loudly.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(_stop_callback)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    "until ({}) is before current time ({})".format(
                        deadline, self._now))
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(_stop_callback)
            self.schedule(stop_event, priority=URGENT,
                          delay=deadline - self._now)

        # The dispatch loop.  Everything the per-event path touches is
        # a local; the traced variant is split out so the common case
        # pays nothing for the hook.  The calendar pop fast path is
        # inlined: consume the next cell of the current (sorted)
        # bucket, nulling it out so the entry tuple dies immediately —
        # a precondition for the refcount check below.  An event whose
        # only remaining reference is the loop's local is invisible to
        # the rest of the simulation, so it is reset and recycled onto
        # the free list instead of being left for the collector.
        sched = self._sched
        advance = sched._advance
        trace = self.trace
        tpool = self._timeout_pool
        epool = self._event_pool
        refcount = getrefcount
        pool_max = POOL_MAX
        pending = _PENDING
        timeout_cls = Timeout
        event_cls = Event
        try:
            if trace is None:
                while True:
                    ridx = sched._ready_idx
                    ready = sched._ready
                    try:
                        # IndexError <=> the current slot is drained.
                        when, _, event = ready[ridx]
                        ready[ridx] = None
                        sched._ready_idx = ridx + 1
                    except IndexError:
                        # Probe the next slot inline (the dominant
                        # slow-path case for sparse wheels) before
                        # falling back to the generic advance; this
                        # mirrors _advance's one-step bookkeeping.
                        nxt = sched._cur_slot + 1
                        bucket = (sched._buckets[nxt]
                                  if nxt < sched._nbuckets else None)
                        if bucket:
                            sched._count -= ridx
                            del ready[:]
                            if len(bucket) > 1:
                                bucket.sort()
                            sched._cur_slot = nxt
                            sched._ready = bucket
                            sched._ready_idx = 1
                            when, _, event = bucket[0]
                            bucket[0] = None
                        else:
                            entry = advance()
                            if entry is None:
                                break
                            when, _, event = entry
                            del entry
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        # Dominant case: exactly one waiter.
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    cls = event.__class__
                    if cls is timeout_cls:
                        if refcount(event) == 2 and len(tpool) < pool_max:
                            del callbacks[:]
                            event.callbacks = callbacks
                            event._value = None
                            event._defused = False
                            tpool.append(event)
                    elif cls is event_cls:
                        if refcount(event) == 2 and len(epool) < pool_max:
                            del callbacks[:]
                            event.callbacks = callbacks
                            event._value = pending
                            event._ok = True
                            event._defused = False
                            epool.append(event)
            else:
                while True:
                    ridx = sched._ready_idx
                    ready = sched._ready
                    try:
                        # IndexError <=> the current slot is drained.
                        when, _, event = ready[ridx]
                        ready[ridx] = None
                        sched._ready_idx = ridx + 1
                    except IndexError:
                        # Probe the next slot inline (the dominant
                        # slow-path case for sparse wheels) before
                        # falling back to the generic advance; this
                        # mirrors _advance's one-step bookkeeping.
                        nxt = sched._cur_slot + 1
                        bucket = (sched._buckets[nxt]
                                  if nxt < sched._nbuckets else None)
                        if bucket:
                            sched._count -= ridx
                            del ready[:]
                            if len(bucket) > 1:
                                bucket.sort()
                            sched._cur_slot = nxt
                            sched._ready = bucket
                            sched._ready_idx = 1
                            when, _, event = bucket[0]
                            bucket[0] = None
                        else:
                            entry = advance()
                            if entry is None:
                                break
                            when, _, event = entry
                            del entry
                    self._now = when
                    trace(when, event)
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    cls = event.__class__
                    if cls is timeout_cls:
                        if refcount(event) == 2 and len(tpool) < pool_max:
                            del callbacks[:]
                            event.callbacks = callbacks
                            event._value = None
                            event._defused = False
                            tpool.append(event)
                    elif cls is event_cls:
                        if refcount(event) == 2 and len(epool) < pool_max:
                            del callbacks[:]
                            event.callbacks = callbacks
                            event._value = pending
                            event._ok = True
                            event._defused = False
                            epool.append(event)
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and isinstance(until, Event):
            raise SimulationError(
                "simulation ran out of events before {!r} triggered".format(
                    until))
        return None


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event.defuse()
    raise event._value
