"""The discrete-event simulation environment.

:class:`Environment` owns the simulation clock and the pending-event
heap.  Time is a ``float`` in **seconds**; the models in this package
operate at sub-millisecond resolution, which is the whole point of
studying millibottlenecks.

Typical usage::

    env = Environment()

    def hello(env):
        yield env.timeout(1.0)
        return "done"

    proc = env.process(hello(env))
    env.run(until=10.0)
    assert proc.value == "done"
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Optional

from repro.errors import SimulationError, StopSimulation
from repro.sim.events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Environment", "NORMAL", "URGENT"]


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Clock value at the start of the simulation (seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- introspection ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Put a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority,
                                     self._eid, event))

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that triggers once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that triggers once any event in ``events`` has."""
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        SimulationError
            If the event heap is empty.
        """
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None

        if when < self._now:  # pragma: no cover - heap guarantees order
            raise SimulationError("time ran backwards")
        self._now = when

        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure that nobody handled: surface it loudly.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(_stop_callback)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    "until ({}) is before current time ({})".format(
                        deadline, self._now))
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(_stop_callback)
            self.schedule(stop_event, priority=URGENT,
                          delay=deadline - self._now)

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and isinstance(until, Event):
            raise SimulationError(
                "simulation ran out of events before {!r} triggered".format(
                    until))
        return None


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event.defuse()
    raise event._value
