"""The discrete-event simulation environment.

:class:`Environment` owns the simulation clock and the pending-event
heap.  Time is a ``float`` in **seconds**; the models in this package
operate at sub-millisecond resolution, which is the whole point of
studying millibottlenecks.

Typical usage::

    env = Environment()

    def hello(env):
        yield env.timeout(1.0)
        return "done"

    proc = env.process(hello(env))
    env.run(until=10.0)
    assert proc.value == "done"

Performance notes
-----------------
The event loop is the hot path of every experiment, so :meth:`run`
inlines the dispatch loop instead of calling :meth:`step` per event:
the heap, ``heappop`` and the clock are bound to locals, and the
per-event work is four attribute operations plus the callback calls.
Heap entries are ``(time, key, event)`` 3-tuples where ``key`` packs
``(priority, sequence)`` into one integer, so tie-breaking costs a
single int comparison and the event itself is never compared.

:attr:`Environment.trace`, when set to a callable, is invoked as
``trace(time, event)`` for every event popped off the heap.  It costs
nothing when unset: :meth:`run` selects a loop variant without the
hook at entry.  The golden-trace determinism tests are built on it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError, StopSimulation
from repro.sim.events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Environment", "NORMAL", "URGENT"]

_INF = float("inf")

#: Bits reserved for the event sequence number inside a heap key.  A
#: simulation would need ~100 years of wall-clock at current kernel
#: throughput to overflow 2**53 events, and Python ints widen anyway —
#: ordering stays correct either way.
_KEY_SHIFT = 53
_NORMAL_KEY = NORMAL << _KEY_SHIFT


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Clock value at the start of the simulation (seconds).
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "trace",
                 "tracer")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Optional probe called as ``trace(time, event)`` for every
        #: event processed.  ``None`` (the default) is zero-cost.
        self.trace: Optional[Callable[[float, Event], None]] = None
        #: Optional per-request span tracer (see :mod:`repro.tracing`).
        #: The kernel never reads it — model components check it with a
        #: single ``is not None`` guard, so ``None`` (the default) is
        #: zero-cost and the tracer itself schedules no events.
        self.tracer: Optional[Any] = None

    # -- introspection ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else _INF

    def __len__(self) -> int:
        return len(self._queue)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0, _push=heappush, _inf=_INF) -> None:
        """Put a triggered event on the heap ``delay`` seconds from now.

        ``delay`` must be finite and non-negative: a ``NaN`` or ``inf``
        delay would silently corrupt the heap invariant (``NaN``
        compares false against everything, breaking sift ordering) and
        is rejected with :class:`SimulationError`.
        """
        if not 0.0 <= delay < _inf:
            raise SimulationError(
                "delay must be finite and non-negative, got {!r}".format(
                    delay))
        self._eid = eid = self._eid + 1
        _push(self._queue,
              (self._now + delay, (priority << _KEY_SHIFT) | eid, event))

    def _trigger_now(self, event: Event, _push=heappush,
                     _key=_NORMAL_KEY) -> None:
        """Internal: push an already-triggered event at the current time.

        Fast path used by the resource/queue layers after they set the
        event's ``_value`` directly — equivalent to
        ``schedule(event)`` without the delay validation (there is no
        delay) and without an extra call frame from ``succeed``.
        """
        self._eid = eid = self._eid + 1
        _push(self._queue, (self._now, _key | eid, event))

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, _push=heappush,
                _new=Timeout.__new__, _cls=Timeout, _inf=_INF,
                _key=_NORMAL_KEY) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now.

        This is the kernel's dominant allocation, so it builds the
        :class:`Timeout` directly — already triggered, skipping the
        ``Timeout.__init__``/``Event.__init__``/``schedule`` call chain.
        """
        if not 0.0 <= delay < _inf:
            raise ValueError("invalid delay: {!r}".format(delay))
        event = _new(_cls)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._delay = delay
        self._eid = eid = self._eid + 1
        _push(self._queue, (self._now + delay, _key | eid, event))
        return event

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that triggers once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that triggers once any event in ``events`` has."""
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        :meth:`run` does not call this — it inlines the same logic —
        but it remains the single-step API for tests and debuggers.

        Raises
        ------
        SimulationError
            If the event heap is empty.
        """
        try:
            when, _, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None

        self._now = when
        if self.trace is not None:
            self.trace(when, event)

        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure that nobody handled: surface it loudly.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(_stop_callback)
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    "until ({}) is before current time ({})".format(
                        deadline, self._now))
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(_stop_callback)
            self.schedule(stop_event, priority=URGENT,
                          delay=deadline - self._now)

        # The dispatch loop.  Everything the per-event path touches is
        # a local; the traced variant is split out so the common case
        # pays nothing for the hook.
        queue = self._queue
        pop = heappop
        trace = self.trace
        try:
            if trace is None:
                while queue:
                    when, _, event = pop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    if len(callbacks) == 1:
                        # Dominant case: exactly one waiter.
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
            else:
                while queue:
                    when, _, event = pop(queue)
                    self._now = when
                    trace(when, event)
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and isinstance(until, Event):
            raise SimulationError(
                "simulation ran out of events before {!r} triggered".format(
                    until))
        return None


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event.defuse()
    raise event._value
