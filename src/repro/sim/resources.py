"""Shared resources with waiting queues.

:class:`Resource` models a fixed number of identical slots (threads,
connections, CPU cores) that processes acquire and release.  Requests
that cannot be served immediately queue in FIFO order.

Requests support the context-manager protocol so a typical usage is::

    with resource.request() as req:
        yield req            # wait until a slot is free
        yield env.timeout(service_time)
    # slot released automatically

A pending request can also be *cancelled* — this is essential for
"wait with timeout" patterns such as mod_jk's ``cache_acquire_timeout``::

    req = pool.request()
    outcome = yield req | env.timeout(0.3)
    if req not in outcome:
        req.cancel()         # give up on the slot
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource", "priority", "issued_at")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        # Event.__init__ inlined: a request is allocated per served
        # request per tier, one of the kernel's dominant allocations.
        # (``Resource.request`` builds instances via ``__new__`` with
        # the same field layout; keep the two in sync.)
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.priority = priority
        #: Time the request was issued (used for queue-wait metrics).
        self.issued_at = env._now
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        # cancel_or_release() inlined — one __exit__ per served request.
        if self._value is not _PENDING:
            self.resource.release(self)
        else:
            self.resource._withdraw(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        if self.triggered:
            raise SimulationError(
                "cannot cancel a granted request; release it instead")
        self.resource._withdraw(self)

    def cancel_or_release(self) -> None:
        """Withdraw if still pending, release if already granted."""
        if self.triggered:
            self.resource.release(self)
        else:
            self.resource._withdraw(self)


class Resource:
    """``capacity`` interchangeable slots with a FIFO wait queue."""

    __slots__ = ("env", "_capacity", "_users", "_waiting")

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got {}".format(capacity))
        self.env = env
        self._capacity = int(capacity)
        self._users: list[Request] = []
        self._waiting: deque[Request] = deque()

    def __repr__(self) -> str:
        return "<{} capacity={} in_use={} queued={}>".format(
            type(self).__name__, self._capacity, self.count, len(self._waiting))

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self._capacity - len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: float = 0.0, _new=Request.__new__,
                _cls=Request) -> Request:
        """Claim one slot; the returned event triggers when granted."""
        event = _new(_cls)
        env = self.env
        event.env = env
        event.callbacks = []
        event._ok = True
        event._defused = False
        event.resource = self
        event.priority = priority
        event.issued_at = env._now
        users = self._users
        if len(users) < self._capacity and not self._waiting:
            users.append(event)
            # Fresh request: trigger directly, skipping succeed().
            event._value = event
            env._trigger_now(event)
        else:
            event._value = _PENDING
            self._insert_waiting(event)
        return event

    def release(self, request: Request) -> None:
        """Return a granted slot to the pool and admit the next waiter."""
        users = self._users
        try:
            users.remove(request)
        except ValueError:
            raise SimulationError(
                "release of a request that does not hold a slot") from None
        # _grant_next() inlined — this runs once per served request.
        waiting = self._waiting
        if waiting:
            env = self.env
            capacity = self._capacity
            while waiting and len(users) < capacity:
                nxt = waiting.popleft()
                users.append(nxt)
                nxt._value = nxt
                env._trigger_now(nxt)

    # -- internal ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self._users) < self._capacity and not self._waiting:
            self._users.append(request)
            # Fresh request: trigger directly, skipping succeed().
            request._value = request
            self.env._trigger_now(request)
        else:
            self._insert_waiting(request)

    def _insert_waiting(self, request: Request) -> None:
        self._waiting.append(request)

    def _withdraw(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            raise SimulationError(
                "cancel of a request that is not waiting") from None

    def _grant_next(self) -> None:
        env = self.env
        while self._waiting and len(self._users) < self._capacity:
            request = self._waiting.popleft()
            self._users.append(request)
            request._value = request
            env._trigger_now(request)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority.

    Lower ``priority`` values are served first; ties break FIFO.
    """

    __slots__ = ()

    def _insert_waiting(self, request: Request) -> None:
        index = len(self._waiting)
        for i, waiting in enumerate(self._waiting):
            if waiting.priority > request.priority:
                index = i
                break
        self._waiting.insert(index, request)


class Container:
    """A homogeneous quantity (bytes, tokens) with put/get semantics.

    Unlike :class:`Resource`, amounts are divisible: a ``get`` for 5 can
    be satisfied by two earlier ``put`` calls of 3 and 2.  Used for the
    dirty-page byte pool in :mod:`repro.osmodel.pagecache`.
    """

    __slots__ = ("env", "_capacity", "_level", "_getters", "_putters")

    def __init__(self, env: "Environment", capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """The amount currently stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers when there is room for all of it."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers when that much is available."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        env = self.env
        while True:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self._capacity:
                    self._level += amount
                    self._putters.pop(0)
                    event._value = amount
                    env._trigger_now(event)
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    event._value = amount
                    env._trigger_now(event)
                    progressed = True
            if not progressed:
                return
